"""Why random fault injection is not enough (the §V-C comparison).

Runs several random-fault-injection campaigns of increasing size on the
three LULESH coordinate arrays and contrasts the (unstable) RFI rankings
with the deterministic aDVF ranking.

Run with:  python examples/rfi_vs_advf.py
"""

from __future__ import annotations

from repro.campaigns.stats import wilson_interval
from repro.core.advf import AdvfEngine, AnalysisConfig
from repro.core.patterns import SingleBitModel
from repro.core.rfi import RandomFaultInjection, required_sample_size
from repro.core.sites import enumerate_fault_sites
from repro.reporting import format_table
from repro.workloads.lulesh import LuleshWorkload

OBJECTS = ["m_x", "m_y", "m_z"]
TEST_COUNTS = [40, 80, 120, 160]


def main() -> None:
    workload = LuleshWorkload()
    trace = workload.traced_run().trace

    population = len(enumerate_fault_sites(trace, "m_x"))
    print(
        f"fault-site population for m_x: {population}; statistically significant "
        f"sample at 95%/5%: {required_sample_size(population)} tests"
    )

    rows = []
    rankings = set()
    rfi_by_object = {}
    for index, name in enumerate(OBJECTS):
        rfi = RandomFaultInjection(workload, seed=100 + index)
        rfi_by_object[name] = rfi.sweep(trace, name, TEST_COUNTS)
    for i, tests in enumerate(TEST_COUNTS):
        row = [tests]
        for name in OBJECTS:
            result = rfi_by_object[name][i]
            # Wilson score CI: well-behaved even at extreme success rates,
            # unlike the Wald margin the seed printed.
            low, high = wilson_interval(result.successes, result.tests)
            row.append(f"{result.success_rate:.3f} CI[{low:.3f},{high:.3f}]")
        rows.append(row)
        rankings.add(
            tuple(sorted(OBJECTS, key=lambda n: rfi_by_object[n][i].success_rate, reverse=True))
        )
    print()
    print(format_table(["tests"] + OBJECTS, rows))
    print(f"\ndistinct RFI rankings across sweep: {len(rankings)} -> {rankings}")

    config = AnalysisConfig(
        max_injections=40,
        error_model=SingleBitModel(bit_stride=8),
        equivalence_samples=1,
        injection_samples_per_class=1,
    )
    engine = AdvfEngine(workload, config)
    advf = {name: engine.analyze_object(name).result.value for name in OBJECTS}
    print("\naDVF (deterministic):", {k: round(v, 3) for k, v in advf.items()})
    print("aDVF ranking        :", sorted(OBJECTS, key=advf.get, reverse=True))


if __name__ == "__main__":
    main()
