"""Model-driven protection decisions (the paper's motivating use case).

Given a fault-tolerance budget that can protect only some data objects
(e.g. with checksums or selective replication), use aDVF to decide *which*
objects are worth protecting: low-aDVF objects are the vulnerable ones.

The script analyses the CG benchmark's data objects, validates the ranking
against a small exhaustive fault-injection campaign, and prints the
protection recommendation.

Run with:  python examples/protect_data_objects.py
"""

from __future__ import annotations

from repro.core.advf import AdvfEngine, AnalysisConfig
from repro.core.exhaustive import ExhaustiveCampaign, rank_by_success_rate
from repro.core.patterns import SingleBitModel
from repro.reporting import format_table
from repro.workloads.cg import CGWorkload

OBJECTS = ["r", "p", "q", "a", "colidx", "rowstr"]


def main() -> None:
    workload = CGWorkload(n=12, cgitmax=2)
    config = AnalysisConfig(
        max_injections=60,
        error_model=SingleBitModel(bit_stride=8),
        equivalence_samples=1,
        injection_samples_per_class=1,
    )

    print("computing aDVF for CG data objects ...")
    engine = AdvfEngine(workload, config)
    advf = {name: engine.analyze_object(name).result for name in OBJECTS}

    print("validating the ranking with a strided exhaustive injection campaign ...")
    trace = workload.traced_run().trace
    campaign = ExhaustiveCampaign(workload, bit_stride=16, max_injections=40)
    exhaustive = campaign.run_many(trace, OBJECTS)

    rows = [
        [
            name,
            f"{advf[name].value:.3f}",
            f"{exhaustive[name].success_rate:.3f}",
            f"{exhaustive[name].crash_rate:.3f}",
        ]
        for name in OBJECTS
    ]
    print()
    print(format_table(["data object", "aDVF", "FI success rate", "FI crash rate"], rows))

    advf_ranking = sorted(OBJECTS, key=lambda n: advf[n].value)
    fi_ranking = list(reversed(rank_by_success_rate(exhaustive)))
    print()
    print("most vulnerable first (aDVF)      :", advf_ranking)
    print("most vulnerable first (exhaustive):", fi_ranking)

    budget = 2
    print()
    print(
        f"with a budget to protect {budget} data objects, protect: "
        f"{advf_ranking[:budget]} (lowest aDVF = least inherent masking)"
    )


if __name__ == "__main__":
    main()
