"""Model-driven protection decisions (the paper's motivating use case).

Given a fault-tolerance budget, use aDVF to decide *which* data objects
are worth protecting and *how* — then close the loop: apply the chosen
protection and validate by injection campaign that the protected program
really is less vulnerable.

The script walks the full advisor pipeline on the CG benchmark:

1. measure — aDVF reports for CG's data objects (plus a small exhaustive
   campaign as the classic ranking cross-check);
2. plan — the budgeted advisor picks protection schemes per object under a
   2x runtime-overhead budget;
3. apply — the protected workload variant is instantiated (generic
   duplicate-and-compare synthesised at the IR level) and its measured
   overhead checked against the cost model;
4. validate — the same injection campaign runs against baseline and
   protected programs; the corrected/benign fraction must move up.

Run with:  python examples/protect_data_objects.py
"""

from __future__ import annotations

from repro.core.advf import AdvfEngine, AnalysisConfig
from repro.core.exhaustive import ExhaustiveCampaign, rank_by_success_rate
from repro.core.patterns import SingleBitModel
from repro.protection import (
    ProtectionAdvisor,
    apply_plan,
    measure_overhead,
    validate_plan,
)
from repro.reporting import (
    format_protection_plan_table,
    format_table,
    format_validation_table,
)
from repro.workloads.cg import CGWorkload

OBJECTS = ["r", "p", "q", "a", "colidx", "rowstr"]
KWARGS = {"n": 12, "cgitmax": 2}
BUDGET = 2.0


def main() -> None:
    workload = CGWorkload(**KWARGS)
    config = AnalysisConfig(
        max_injections=60,
        error_model=SingleBitModel(bit_stride=8),
        equivalence_samples=1,
        injection_samples_per_class=1,
    )

    print("computing aDVF for CG data objects ...")
    engine = AdvfEngine(workload, config)
    reports = {name: engine.analyze_object(name) for name in OBJECTS}
    advf = {name: reports[name].result for name in OBJECTS}

    print("validating the ranking with a strided exhaustive injection campaign ...")
    trace = workload.traced_run().trace
    campaign = ExhaustiveCampaign(workload, bit_stride=16, max_injections=40)
    exhaustive = campaign.run_many(trace, OBJECTS)

    rows = [
        [
            name,
            f"{advf[name].value:.3f}",
            f"{exhaustive[name].success_rate:.3f}",
            f"{exhaustive[name].crash_rate:.3f}",
        ]
        for name in OBJECTS
    ]
    print()
    print(format_table(["data object", "aDVF", "FI success rate", "FI crash rate"], rows))

    advf_ranking = sorted(OBJECTS, key=lambda n: advf[n].value)
    fi_ranking = list(reversed(rank_by_success_rate(exhaustive)))
    print()
    print("most vulnerable first (aDVF)      :", advf_ranking)
    print("most vulnerable first (exhaustive):", fi_ranking)

    print()
    print(f"asking the advisor for a plan under a {BUDGET:g}x overhead budget ...")
    advisor = ProtectionAdvisor(workload, engine.trace, workload_kwargs=KWARGS)
    plan = advisor.advise(reports, budget=BUDGET)
    print()
    print(format_protection_plan_table(plan.to_dict()))

    print()
    print("applying the plan ...")
    protected = apply_plan(plan)
    measured = measure_overhead(workload, protected)
    print(
        f"protected variant {protected.name!r}: measured {measured['extra_ops']} "
        f"extra ops ({measured['overhead_ratio']:.2f}x), predicted "
        f"{plan.predicted_extra_ops} ({plan.predicted_overhead:.2f}x); "
        f"golden outputs identical: {measured['outputs_identical']}"
    )

    print()
    print("closing the loop: injection campaigns on baseline vs protected ...")
    report = validate_plan(plan, bit_stride=16, max_tests=30)
    print()
    print(
        format_validation_table(
            [
                {
                    "object": outcome.object_name,
                    "scheme": outcome.scheme,
                    "variant": outcome.variant,
                    "tests": outcome.tests,
                    "successes": outcome.successes,
                }
                for outcome in report.outcomes
            ]
        )
    )
    for name in plan.protected_objects():
        print(f"{name}: corrected/benign fraction moved {report.improvement(name):+.3f}")


if __name__ == "__main__":
    main()
