"""Quickstart: compute aDVF for the data objects of your own kernel.

Write a kernel in the restricted Python dialect, wrap it in a tiny Workload
subclass, and ask the aDVF engine how resilient each data object is to
single-bit transient faults.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.core.advf import AdvfEngine, AnalysisConfig
from repro.core.patterns import SingleBitModel
from repro.ir.types import F64, I64
from repro.reporting import bar_chart
from repro.vm.memory import Memory
from repro.workloads.base import Workload


# 1. A kernel in the restricted dialect: typed parameters, range loops,
#    flat 1-D indexing, math intrinsics.
def smooth(signal: "double*", weights: "double*", out: "double*", n: "i64") -> "void":
    for i in range(1, n - 1):
        out[i] = (
            weights[0] * signal[i - 1]
            + weights[1] * signal[i]
            + weights[2] * signal[i + 1]
        )
    out[0] = signal[0]
    out[n - 1] = signal[n - 1]


# 2. A workload: how to set up the data objects and what "acceptable" means.
class SmoothingWorkload(Workload):
    name = "smooth"
    description = "3-point weighted smoothing of a 1-D signal"
    code_segment = "the smooth kernel"
    target_objects = ("signal", "weights")
    output_objects = ("out",)
    entry = "smooth"

    def __init__(self, n: int = 32, seed: int = 7) -> None:
        super().__init__(seed=seed)
        self.n = n

    def kernels(self):
        return (smooth,)

    def setup(self, memory: Memory):
        rng = self.rng()
        signal = memory.allocate("signal", F64, self.n, initial=rng.standard_normal(self.n))
        weights = memory.allocate("weights", F64, 3, initial=[0.25, 0.5, 0.25])
        out = memory.allocate("out", F64, self.n)
        return {"signal": signal, "weights": weights, "out": out, "n": self.n}


def main() -> None:
    workload = SmoothingWorkload()

    # 3. Run the aDVF analysis (operation level + propagation + deterministic
    #    injection for the unresolved cases).
    config = AnalysisConfig(
        max_injections=60, error_model=SingleBitModel(bit_stride=4)
    )
    engine = AdvfEngine(workload, config)
    report = engine.analyze()

    print("dynamic trace events:", report.trace_events)
    print()
    print("aDVF per data object (higher = more error masking = more resilient):")
    print(bar_chart({name: obj.value for name, obj in report.advf.items()}))
    print()
    for name, obj_report in report.objects.items():
        result = obj_report.result
        print(
            f"{name}: aDVF={result.value:.3f} over {result.participations} "
            f"participations ({obj_report.injections} deterministic injections, "
            f"{obj_report.analyses_reused} results reused via error equivalence)"
        )
    print()
    print("ranking (most resilient first):", report.ranking())


if __name__ == "__main__":
    main()
