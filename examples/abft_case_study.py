"""§VI case study: is ABFT worth it for a given data object?

Compares the aDVF of the GEMM product matrix ``C`` and of the Particle
Filter's estimate vector ``xe`` with and without algorithm-based fault
tolerance, reproducing the decision the paper walks through: ABFT pays off
for ``C`` but adds little for ``xe`` because the particle filter already
tolerates (or masks) most of the errors ABFT would correct.

Run with:  python examples/abft_case_study.py
"""

from __future__ import annotations

from repro.core.advf import AdvfEngine, AnalysisConfig
from repro.core.masking import MaskingLevel
from repro.core.patterns import SingleBitModel
from repro.reporting import format_table
from repro.workloads.matmul import MatmulWorkload
from repro.workloads.particle_filter import ParticleFilterWorkload


def analyze(workload, target):
    config = AnalysisConfig(
        max_injections=60,
        error_model=SingleBitModel(bit_stride=8),
        equivalence_samples=1,
        injection_samples_per_class=1,
    )
    return AdvfEngine(workload, config).analyze_object(target).result


def main() -> None:
    cases = {
        "[C]      (GEMM, no ABFT)": analyze(MatmulWorkload(abft=False), "C"),
        "ABFT_[C] (GEMM, ABFT)": analyze(MatmulWorkload(abft=True), "C"),
        "[xe]      (PF, no ABFT)": analyze(ParticleFilterWorkload(abft=False), "xe"),
        "ABFT_[xe] (PF, ABFT)": analyze(ParticleFilterWorkload(abft=True), "xe"),
    }
    rows = [
        [
            label,
            f"{result.value:.3f}",
            f"{result.level_fraction(MaskingLevel.OPERATION):.3f}",
            f"{result.level_fraction(MaskingLevel.PROPAGATION):.3f}",
            f"{result.level_fraction(MaskingLevel.ALGORITHM):.3f}",
        ]
        for label, result in cases.items()
    ]
    print(format_table(["variant", "aDVF", "operation", "propagation", "algorithm"], rows))
    print()
    gemm_gain = cases["ABFT_[C] (GEMM, ABFT)"].value - cases["[C]      (GEMM, no ABFT)"].value
    pf_gain = cases["ABFT_[xe] (PF, ABFT)"].value - cases["[xe]      (PF, no ABFT)"].value
    print(f"ABFT gain on GEMM C : {gemm_gain:+.3f}")
    print(f"ABFT gain on PF xe  : {pf_gain:+.3f}")
    print()
    print(
        "decision: apply ABFT where the aDVF gain is large (GEMM's C); skip it "
        "where operation-level masking and the algorithm already tolerate the "
        "errors (PF's xe)."
    )


if __name__ == "__main__":
    main()
