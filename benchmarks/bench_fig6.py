"""E-F6 — Figure 6: model validation against exhaustive fault injection.

For the CG ``conj_grad`` data objects (rowstr, colidx, a, p, q) and the
LULESH coordinate arrays (m_x, m_y, m_z), compare the aDVF value with the
success rate of a (strided) exhaustive fault-injection campaign over the
same fault space.  The validation criterion, as in the paper, is that both
methods rank the data objects in the same order.
"""

from conftest import bench_config, print_header

from repro.core.advf import AdvfEngine
from repro.core.exhaustive import ExhaustiveCampaign, rank_by_success_rate
from repro.reporting.tables import format_table
from repro.workloads.registry import get_workload

CG_OBJECTS = ["rowstr", "colidx", "a", "p", "q"]
LULESH_OBJECTS = ["m_x", "m_y", "m_z"]


def _validate(workload_name, objects, max_injections_per_object=50):
    workload = get_workload(workload_name)
    trace = workload.traced_run().trace
    engine = AdvfEngine(workload, bench_config())
    advf = {name: engine.analyze_object(name).result.value for name in objects}
    campaign = ExhaustiveCampaign(
        workload, bit_stride=16, max_injections=max_injections_per_object
    )
    exhaustive = campaign.run_many(trace, objects)
    return advf, exhaustive


def _run_both():
    return _validate("cg", CG_OBJECTS), _validate("lulesh", LULESH_OBJECTS)


def test_fig6_validation_against_exhaustive(once):
    (cg_advf, cg_exh), (lul_advf, lul_exh) = once(_run_both)
    print_header("Figure 6: aDVF vs exhaustive fault-injection success rate")
    for label, advf, exhaustive in (
        ("CG conj_grad", cg_advf, cg_exh),
        ("LULESH CalcMonotonicQRegionForElems", lul_advf, lul_exh),
    ):
        rows = [
            [name, f"{advf[name]:.3f}", f"{exhaustive[name].success_rate:.3f}",
             exhaustive[name].sites_injected]
            for name in advf
        ]
        print(f"\n{label}")
        print(format_table(["data object", "aDVF", "FI success rate", "injections"], rows))
        advf_rank = sorted(advf, key=advf.get, reverse=True)
        fi_rank = rank_by_success_rate(exhaustive)
        agreement = "MATCH" if advf_rank == fi_rank else "DIFFERS"
        print(f"ranking by aDVF      : {advf_rank}")
        print(f"ranking by exhaustive: {fi_rank}   -> {agreement}")
