"""PROT — protection-scheme overhead benchmark: cost model vs measured ops.

For matmul and cg, every applicable protection scheme is applied and its
golden-run overhead measured (dynamic ops through a
:class:`~repro.tracing.sinks.CountingSink`) and timed (wall clock), then
checked against the scheme's trace-derived cost-model prediction:

* replication schemes (duplication / reexec / detect) must predict the
  measured extra ops within ``TOLERANCE`` (the dominant term — one extra
  entry execution per replica — is read straight off the golden trace);
* the bespoke ABFT cost model is exact by construction (it traces the
  protected variant), asserted to machine precision.

Results land in pytest-benchmark ``extra_info`` (or ``BENCH_protection.json``
when run standalone), starting the perf trajectory for the protection
subsystem:

    python benchmarks/bench_protection.py
"""

from __future__ import annotations

import json
import os
import sys
import time

try:
    import repro  # noqa: F401  (installed package or PYTHONPATH=src)
except ModuleNotFoundError:  # standalone script run from a source checkout
    sys.path.insert(
        0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    )

from repro.obs.log import provenance
from repro.protection.advisor import ProtectionPlan, Selection
from repro.protection.apply import apply_plan, measure_overhead
from repro.protection.schemes import WorkloadCostInputs, applicable_schemes
from repro.workloads.registry import get_workload

#: (workload, kwargs, object) cases; sizes keep a laptop run in seconds.
CASES = [
    ("matmul", {"n": 5}, "C"),
    ("cg", {"n": 10, "cgitmax": 2}, "r"),
]
#: Max relative error of predicted vs measured extra ops (replication
#: schemes; ABFT is exact).
TOLERANCE = 0.10
OUTPUT = os.environ.get("REPRO_BENCH_PROTECTION_JSON", "BENCH_protection.json")


def _timed_golden(workload) -> float:
    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        workload.golden_run()
        best = min(best, time.perf_counter() - start)
    return best


def measure_schemes(workload_name: str, kwargs, object_name: str):
    """Predicted vs measured overhead of every applicable scheme."""
    workload = get_workload(workload_name, **kwargs)
    trace = workload.traced_run(columnar=True).trace
    inputs = WorkloadCostInputs.from_workload(workload, trace)
    base_wall = _timed_golden(workload)

    rows = []
    for scheme in applicable_schemes(workload_name, object_name):
        cost = scheme.cost(workload, inputs, object_name)
        plan = ProtectionPlan(
            workload=workload_name,
            workload_kwargs=dict(kwargs),
            budget=4.0,
            base_ops=inputs.base_ops,
            selections=[
                Selection(
                    object_name=object_name,
                    scheme=scheme.name,
                    predicted_extra_ops=cost.extra_ops,
                    predicted_extra_bytes=cost.extra_bytes,
                    predicted_reduction=0.0,
                    vulnerability=0.0,
                    advf=0.0,
                )
            ],
            predicted_extra_ops=cost.extra_ops,
            predicted_extra_bytes=cost.extra_bytes,
            method="exact",
        )
        protected = apply_plan(plan)
        measured = measure_overhead(workload, protected)
        assert measured["outputs_identical"], (
            f"{scheme.name} perturbed the golden outputs of {workload_name}"
        )
        relative_error = (
            abs(measured["extra_ops"] - cost.extra_ops) / measured["extra_ops"]
            if measured["extra_ops"]
            else 0.0
        )
        rows.append(
            {
                "workload": workload_name,
                "object": object_name,
                "scheme": scheme.name,
                "base_ops": measured["base_ops"],
                "predicted_extra_ops": cost.extra_ops,
                "measured_extra_ops": measured["extra_ops"],
                "relative_error": relative_error,
                "overhead_ratio": measured["overhead_ratio"],
                "extra_bytes": cost.extra_bytes,
                "base_wall_s": base_wall,
                "protected_wall_s": _timed_golden(protected),
            }
        )
    return rows


def check(rows) -> None:
    for row in rows:
        bar = 1e-9 if row["scheme"] == "abft_checksum" else TOLERANCE
        assert row["relative_error"] <= bar, (
            f"{row['workload']}/{row['scheme']}: cost model off by "
            f"{row['relative_error']:.1%} (predicted {row['predicted_extra_ops']}, "
            f"measured {row['measured_extra_ops']})"
        )


# --------------------------------------------------------------------- #
# pytest-benchmark entry point
# --------------------------------------------------------------------- #
def test_bench_protection_overhead(once, benchmark):
    from conftest import print_header

    first, rest = CASES[0], CASES[1:]
    rows = once(measure_schemes, *first)
    for case in rest:
        rows.extend(measure_schemes(*case))
    check(rows)
    benchmark.extra_info["schemes"] = rows
    print_header("Protection schemes: predicted vs measured overhead")
    print(json.dumps(rows, indent=2))


def main() -> None:
    rows = []
    for case in CASES:
        rows.extend(measure_schemes(*case))
    check(rows)
    print(json.dumps(rows, indent=2))
    with open(OUTPUT, "w", encoding="utf-8") as fh:
        json.dump(
            {"protection_overhead": rows, "provenance": provenance()},
            fh,
            indent=2,
        )
    print(f"\nwrote {OUTPUT}")


if __name__ == "__main__":
    main()
