"""B-MIR — fused superinstruction backend vs the per-op dispatch loop.

Golden-run comparison on every registered workload:

* **op**: the classic engine loop — one dispatch, one bounds-checked
  execution per dynamic instruction;
* **block**: the MIR backend — loop-free straight-line segments compiled
  into exec-specialized superinstructions, dispatched whole whenever no
  fault, pause boundary or step limit falls inside the window.

Bit-identity is verified **before** any timing is trusted: outputs (as raw
bytes), return values and step counts must match the op loop on all
workloads, with a sink-free run, a counting sink and a full columnar trace.

Acceptance bar: **≥ 3× geometric-mean speedup** on sink-free golden runs
(target from the issue: ≥ 5×).  Results land in pytest-benchmark
``extra_info`` (or ``BENCH_mir.json`` when run standalone)::

    python benchmarks/bench_mir.py
"""

from __future__ import annotations

import json
import math
import os
import sys
import time

try:
    import repro  # noqa: F401  (installed package or PYTHONPATH=src)
except ModuleNotFoundError:  # standalone script run from a source checkout
    sys.path.insert(
        0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    )

import numpy as np

from repro.obs.log import provenance
from repro.tracing.columnar import ColumnarTrace
from repro.tracing.sinks import CountingSink
from repro.vm.engine import Engine
from repro.workloads.registry import get_workload, workload_names

#: Scale factor for timing repeats (1 = quick laptop/CI run).
SCALE = max(1, int(os.environ.get("REPRO_BENCH_SCALE", "1")))
#: Timing repeats per backend (best-of).
REPEATS = max(3, int(os.environ.get("REPRO_BENCH_MIR_REPEATS", "3"))) * SCALE
#: The geomean speedup the backend must deliver on golden runs.
SPEEDUP_BAR = 3.0
OUTPUT = os.environ.get("REPRO_BENCH_MIR_JSON", "BENCH_mir.json")


def _golden(workload, backend, sink=None):
    instance = workload.fresh_instance()
    engine = Engine(
        instance.module,
        instance.memory,
        sink=sink,
        max_steps=workload.max_steps,
        backend=backend,
    )
    result = engine.run(workload.entry, instance.args)
    outputs = {
        name: instance.memory.object(name).values()
        for name in workload.output_objects
    }
    return outputs, result.return_value, result.steps


def _assert_identical(name, mode, op, block):
    where = f"{name} ({mode})"
    assert op[2] == block[2], f"{where}: steps {op[2]} vs {block[2]}"
    assert op[1] == block[1] or (
        isinstance(op[1], float)
        and isinstance(block[1], float)
        and math.isnan(op[1])
        and math.isnan(block[1])
    ), f"{where}: return {op[1]!r} vs {block[1]!r}"
    for obj in op[0]:
        assert np.array_equal(
            op[0][obj].view(np.uint8), block[0][obj].view(np.uint8)
        ), f"{where}: output {obj!r} differs"


def verify_workload(name):
    """Bit-identity op vs block under all three sink fast paths."""
    workload = get_workload(name)
    _assert_identical(name, "sink-free", _golden(workload, "op"), _golden(workload, "block"))

    op_count, block_count = CountingSink(), CountingSink()
    op = _golden(workload, "op", sink=op_count)
    block = _golden(workload, "block", sink=block_count)
    _assert_identical(name, "counting", op, block)
    assert op_count.total == block_count.total, name
    assert op_count.by_opcode == block_count.by_opcode, name

    op_trace, block_trace = ColumnarTrace(), ColumnarTrace()
    op = _golden(workload, "op", sink=op_trace)
    block = _golden(workload, "block", sink=block_trace)
    _assert_identical(name, "traced", op, block)
    assert len(op_trace) == len(block_trace), name
    for column in ("opcodes", "values", "producers", "addresses"):
        a = getattr(op_trace, column, None)
        b = getattr(block_trace, column, None)
        if callable(a):
            a, b = a(), b()
        if a is not None:
            assert np.array_equal(np.asarray(a), np.asarray(b)), f"{name}: {column}"
    return workload


def _best_time(workload, backend):
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        _golden(workload, backend)
        best = min(best, time.perf_counter() - start)
    return best


def measure_workload(name):
    workload = verify_workload(name)  # also warms module + MIR caches
    op_s = _best_time(workload, "op")
    block_s = _best_time(workload, "block")
    steps = _golden(workload, "block")[2]
    return {
        "workload": name,
        "steps": steps,
        "op_s": op_s,
        "block_s": block_s,
        "op_mops": steps / op_s / 1e6 if op_s else 0.0,
        "block_mops": steps / block_s / 1e6 if block_s else 0.0,
        "speedup": op_s / block_s if block_s else float("inf"),
    }


def measure_all():
    rows = [measure_workload(name) for name in workload_names()]
    speedups = [row["speedup"] for row in rows]
    geomean = math.exp(sum(math.log(s) for s in speedups) / len(speedups))
    return {
        "workloads": {row["workload"]: row for row in rows},
        "geomean_speedup": geomean,
        "min_speedup": min(speedups),
        "max_speedup": max(speedups),
        "speedup_bar": SPEEDUP_BAR,
    }


def _check(results):
    assert results["geomean_speedup"] >= SPEEDUP_BAR, (
        f"MIR backend geomean speedup {results['geomean_speedup']:.2f}x is "
        f"below the {SPEEDUP_BAR}x acceptance bar"
    )


# --------------------------------------------------------------------- #
# pytest-benchmark entry point
# --------------------------------------------------------------------- #
def test_bench_mir(once, benchmark):
    from conftest import print_header

    results = once(measure_all)
    benchmark.extra_info["geomean_speedup"] = results["geomean_speedup"]
    for name, row in results["workloads"].items():
        benchmark.extra_info[name] = {k: v for k, v in row.items() if k != "workload"}
    print_header(
        f"MIR superinstruction backend vs op loop "
        f"(bar >= {SPEEDUP_BAR}x geomean over {len(results['workloads'])} workloads)"
    )
    print(json.dumps(results, indent=2))
    _check(results)


def main() -> None:
    results = measure_all()
    results["provenance"] = provenance()
    print(json.dumps(results, indent=2))
    with open(OUTPUT, "w", encoding="utf-8") as fh:
        json.dump(results, fh, indent=2)
    print(f"wrote {OUTPUT}", file=sys.stderr)
    _check(results)


if __name__ == "__main__":
    main()
