"""B-RBATCH — batched replay scheduler vs sequential replay.

End-to-end injection-campaign comparison on the same spec lists:

* **sequential**: the per-fault oracle path — one snapshot restore and one
  private suffix execution per fault (``ReplayContext.replay`` in a loop,
  exactly what campaign workers did before the batched scheduler);
* **batched**: the same specs submitted through
  ``BatchedReplayContext.replay_many`` — grouped by snapshot interval, one
  restore + one shared lockstep suffix walk per batch, copy-on-write forks
  for divergent windows, convergence memoization across repeats.

Acceptance bar: **≥ 3× end-to-end speedup on matmul** (cg is reported
alongside; its index objects evict more divergent replays, so it gains
less), with batched outcomes **bit-identical** to sequential (outputs,
return values, step counts, and crash/hang types+messages are compared
fault by fault before any timing is trusted).

Results land in pytest-benchmark ``extra_info`` (or
``BENCH_replay_batch.json`` when run standalone)::

    python benchmarks/bench_replay_batch.py
"""

from __future__ import annotations

import json
import os
import sys
import time

try:
    import repro  # noqa: F401  (installed package or PYTHONPATH=src)
except ModuleNotFoundError:  # standalone script run from a source checkout
    sys.path.insert(
        0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    )

import numpy as np

from repro.core.replay import BatchedReplayContext, ReplayContext
from repro.obs.log import provenance
from repro.core.sites import enumerate_fault_sites
from repro.workloads.registry import get_workload

#: Scale factor for fault budgets (1 = quick laptop/CI run).
SCALE = max(1, int(os.environ.get("REPRO_BENCH_SCALE", "1")))
#: Faults per workload in the comparison.
FAULTS = max(40, int(os.environ.get("REPRO_BENCH_RBATCH_FAULTS", "300"))) * SCALE
#: The speedup the scheduler must deliver on matmul.
SPEEDUP_BAR = 3.0
OUTPUT = os.environ.get("REPRO_BENCH_RBATCH_JSON", "BENCH_replay_batch.json")

WORKLOADS = [
    ("matmul", {}),
    ("cg", {}),
]


def _specs_for(workload, budget):
    trace = workload.traced_run().trace
    specs = []
    for target in workload.target_objects:
        sites = enumerate_fault_sites(trace, target, bit_stride=8)
        specs.extend(site.to_spec() for site in sites)
    if len(specs) > budget:
        stride = len(specs) / budget
        specs = [specs[int(i * stride)] for i in range(budget)]
    return specs


def _run_sequential(context, specs):
    out = []
    for spec in specs:
        try:
            out.append(("ok", context.replay(spec)))
        except Exception as exc:  # noqa: BLE001 - crash parity checked below
            out.append(("error", exc))
    return out


def _assert_bit_identical(name, specs, sequential, batched):
    for index, (tag, payload) in enumerate(sequential):
        result = batched[index]
        where = f"{name} spec {index} ({specs[index]})"
        if tag == "error":
            assert result.error is not None, where
            assert type(result.error) is type(payload), where
            assert str(result.error) == str(payload), where
            continue
        assert result.error is None, f"{where}: {result.error!r}"
        outcome = result.outcome
        assert outcome.return_value == payload.return_value, where
        assert outcome.steps == payload.steps, where
        for obj in payload.outputs:
            assert np.array_equal(
                outcome.outputs[obj].view(np.uint8),
                payload.outputs[obj].view(np.uint8),
            ), f"{where}: output {obj}"


def measure_workload(name, kwargs, faults=FAULTS):
    """Sequential vs batched wall-clock over an identical spec list."""
    workload = get_workload(name, **kwargs)
    specs = _specs_for(workload, faults)

    sequential_context = ReplayContext(workload)
    start = time.perf_counter()
    sequential = _run_sequential(sequential_context, specs)
    sequential_s = time.perf_counter() - start

    batched_context = BatchedReplayContext(workload)
    start = time.perf_counter()
    batched = batched_context.replay_many(specs)
    batched_s = time.perf_counter() - start

    _assert_bit_identical(name, specs, sequential, batched)

    stats = batched_context.stats.to_dict()
    return {
        "workload": name,
        "faults": len(specs),
        "sequential_s": sequential_s,
        "batched_s": batched_s,
        "speedup": sequential_s / batched_s if batched_s else float("inf"),
        "sequential_faults_per_s": len(specs) / sequential_s if sequential_s else 0.0,
        "batched_faults_per_s": len(specs) / batched_s if batched_s else 0.0,
        "sequential_converged": sequential_context.converged_replays,
        "batch_stats": stats,
        "faults_per_restore": (
            stats["faults"] / stats["batches"] if stats["batches"] else 0.0
        ),
    }


def measure_all():
    results = {name: measure_workload(name, kwargs) for name, kwargs in WORKLOADS}
    results["speedup_bar"] = SPEEDUP_BAR
    return results


def _check(results):
    matmul = results["matmul"]
    assert matmul["speedup"] >= SPEEDUP_BAR, (
        f"batched replay speedup {matmul['speedup']:.2f}x on matmul is below "
        f"the {SPEEDUP_BAR}x acceptance bar"
    )


# --------------------------------------------------------------------- #
# pytest-benchmark entry point
# --------------------------------------------------------------------- #
def test_bench_replay_batch(once, benchmark):
    from conftest import print_header

    results = once(measure_all)
    for name, _ in WORKLOADS:
        stats = results[name]
        benchmark.extra_info[name] = {
            k: v for k, v in stats.items() if k != "workload"
        }
    print_header(
        f"Batched replay scheduler vs sequential ({FAULTS} faults/workload, "
        f"bar >= {SPEEDUP_BAR}x on matmul)"
    )
    print(json.dumps(results, indent=2))
    _check(results)


def main() -> None:
    results = measure_all()
    results["provenance"] = provenance()
    print(json.dumps(results, indent=2))
    with open(OUTPUT, "w", encoding="utf-8") as fh:
        json.dump(results, fh, indent=2)
    print(f"wrote {OUTPUT}", file=sys.stderr)
    _check(results)


if __name__ == "__main__":
    main()
