"""E-F4 — Figure 4: aDVF of 16 data objects, broken down by analysis level.

Expected shape (not absolute values): double-precision state arrays (r, u,
rsd, plane, rhoi, zeta) score high; integer index / problem-definition
arrays (colidx, grid_points, ipiv, elemBC) score low, and whatever masking
they do have comes disproportionately from the algorithm level.
"""

from conftest import FIGURE4_OBJECTS, advf_for, print_header

from repro.core.masking import MaskingLevel
from repro.reporting.figures import advf_level_breakdown_rows, stacked_bar_chart
from repro.reporting.tables import format_table


def _analyze_all():
    return {
        f"{wl}:{obj}": advf_for(wl, obj).result for wl, obj in FIGURE4_OBJECTS
    }


def test_fig4_advf_by_level(once):
    results = once(_analyze_all)
    print_header("Figure 4: aDVF breakdown by analysis level (O=operation, P=propagation, A=algorithm)")
    print(stacked_bar_chart(advf_level_breakdown_rows(results)))
    print()
    rows = [
        [
            name,
            f"{r.value:.3f}",
            f"{r.level_fraction(MaskingLevel.OPERATION):.3f}",
            f"{r.level_fraction(MaskingLevel.PROPAGATION):.3f}",
            f"{r.level_fraction(MaskingLevel.ALGORITHM):.3f}",
            r.participations,
        ]
        for name, r in results.items()
    ]
    print(
        format_table(
            ["data object", "aDVF", "operation", "propagation", "algorithm", "participations"],
            rows,
        )
    )
