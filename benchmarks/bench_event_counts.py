"""E-EV — §V-A evaluation conclusion 2: event counts are not enough.

The paper notes that ``colidx`` in CG has *more* raw error-masking events
than ``r`` (2.19e9 vs 4.54e7 at class A) even though CG is far less
resilient to errors in ``colidx`` — which is exactly why aDVF normalises by
the number of element participations.  This benchmark reports both the raw
masked-event counts and the aDVF values for the two objects.
"""

from conftest import advf_for, print_header

from repro.reporting.tables import format_table


def _analyze():
    return {name: advf_for("cg", name) for name in ("r", "colidx")}


def test_event_counts_vs_advf(once):
    reports = once(_analyze)
    print_header("Evaluation conclusion 2: masked-event counts vs aDVF (CG)")
    rows = [
        [
            name,
            f"{report.result.masked_events:.1f}",
            report.result.participations,
            f"{report.result.value:.3f}",
        ]
        for name, report in reports.items()
    ]
    print(
        format_table(
            ["data object", "masked events", "participations", "aDVF"], rows
        )
    )
    print(
        "\nshape check: aDVF(r) should exceed aDVF(colidx) regardless of which "
        "object accumulates more raw masking events."
    )
