"""A-INJECT — speculative batched injection resolution vs sequential.

Compares two runs of the full aDVF analysis (injection enabled) per
workload, differing only in the speculation window:

* **sequential**: ``speculation_window=0`` — the oracle path; every
  unresolved pattern takes a budget decision and (when in budget) a
  single ``inject`` call, one snapshot restore + suffix execution at a
  time;
* **speculative**: ``speculation_window=N`` (default 32) — the plan-ahead
  scheduler predicts the count-based budget decisions, submits whole
  windows of predicted injections through
  ``DeterministicFaultInjector.inject_many`` (the batched replay
  scheduler), and validates every prediction in arrival order.

The timed quantity is the **injection-resolution phase only**
(``AdvfEngine.pass_timings["injection"]``) — trace recording,
participation discovery and the bulk operation passes are identical in
both configurations and excluded.

Acceptance bar: reports **bit-identical** on every registry workload
(compared via ``ObjectReport.to_dict()`` before any timing is trusted),
then a **>= 2x geometric-mean speedup** on the injection-resolution
phase across ``matmul`` and ``cg``.  The timed legs raise
``injection_samples_per_class`` (default 8) so the injection phase has a
campaign-scale number of replays to amortize; the identity sweep runs
the paper-default config.  Results land in pytest-benchmark
``extra_info`` (or ``BENCH_advf_inject.json`` when run standalone)::

    python benchmarks/bench_advf_inject.py
"""

from __future__ import annotations

import json
import math
import os
import sys

try:
    import repro  # noqa: F401  (installed package or PYTHONPATH=src)
except ModuleNotFoundError:  # standalone script run from a source checkout
    sys.path.insert(
        0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    )

from repro.core.advf import DEFAULT_SPECULATION_WINDOW, AdvfEngine, AnalysisConfig
from repro.obs.log import provenance
from repro.workloads.registry import get_workload, workload_names

#: Scale factor (1 = quick laptop/CI run); scales timing repeats.
SCALE = max(1, int(os.environ.get("REPRO_BENCH_SCALE", "1")))
#: Speculation window under test.
WINDOW = max(1, int(os.environ.get("REPRO_BENCH_INJECT_WINDOW",
                                   str(DEFAULT_SPECULATION_WINDOW))))
#: Timing repeats per configuration on the timed workloads (min is kept).
REPEATS = max(1, int(os.environ.get("REPRO_BENCH_INJECT_REPEATS", "2"))) * SCALE
#: ``injection_samples_per_class`` for the timed legs — deeper than the
#: paper default (2) so the injection phase replays at campaign scale.
SAMPLES = max(1, int(os.environ.get("REPRO_BENCH_INJECT_SAMPLES", "8")))
#: Geometric-mean injection-phase speedup bar over the timed workloads.
SPEEDUP_BAR = 2.0
OUTPUT = os.environ.get("REPRO_BENCH_INJECT_JSON", "BENCH_advf_inject.json")

#: Workloads whose injection phase is timed (and held to the bar).
TIMED_WORKLOADS = os.environ.get("REPRO_BENCH_INJECT_WORKLOADS", "matmul,cg").split(",")


def _analyze(workload_name, window, samples=2):
    """One full aDVF analysis; returns (report, injection_s, spec_stats)."""
    workload = get_workload(workload_name)
    engine = AdvfEngine(
        workload,
        AnalysisConfig(
            use_injection=True,
            speculation_window=window,
            injection_samples_per_class=samples,
        ),
    )
    report = engine.analyze()
    return report, engine.pass_timings.get("injection", 0.0), dict(engine.speculation_stats)


def _assert_bit_identical(name, sequential, speculative):
    for object_name, report in sequential.objects.items():
        fast = speculative.objects[object_name]
        assert report.to_dict() == fast.to_dict(), (
            f"speculation diverged on {name}.{object_name}"
        )


def check_bit_identity():
    """Sequential vs speculative reports on every registry workload."""
    checked = []
    for name in workload_names():
        sequential, _, _ = _analyze(name, window=0)
        speculative, _, stats = _analyze(name, window=WINDOW)
        _assert_bit_identical(name, sequential, speculative)
        checked.append({
            "workload": name,
            "objects": len(sequential.objects),
            "speculated": stats.get("speculated", 0),
            "spec_discards": stats.get("spec_discards", 0),
            "spec_windows": stats.get("spec_windows", 0),
        })
    return checked


def measure_workload(name):
    """Min-of-repeats injection-phase wall clock, sequential vs speculative."""
    sequential_s = min(
        _analyze(name, window=0, samples=SAMPLES)[1] for _ in range(REPEATS)
    )
    speculative_s = float("inf")
    stats = {}
    for _ in range(REPEATS):
        _, elapsed, run_stats = _analyze(name, window=WINDOW, samples=SAMPLES)
        if elapsed < speculative_s:
            speculative_s, stats = elapsed, run_stats
    return {
        "workload": name,
        "injection_samples_per_class": SAMPLES,
        "sequential_injection_s": sequential_s,
        "speculative_injection_s": speculative_s,
        "speedup": sequential_s / speculative_s if speculative_s else float("inf"),
        "speculation_stats": stats,
    }


def measure_all():
    results = {
        "window": WINDOW,
        "identity_checked": check_bit_identity(),
        "timings": {name: measure_workload(name) for name in TIMED_WORKLOADS},
        "speedup_bar": SPEEDUP_BAR,
    }
    speedups = [entry["speedup"] for entry in results["timings"].values()]
    results["geomean_speedup"] = math.exp(
        sum(math.log(s) for s in speedups) / len(speedups)
    )
    return results


def _check(results):
    geomean = results["geomean_speedup"]
    assert geomean >= SPEEDUP_BAR, (
        f"speculative injection-resolution geomean speedup {geomean:.2f}x over "
        f"{', '.join(TIMED_WORKLOADS)} is below the {SPEEDUP_BAR}x acceptance bar"
    )


# --------------------------------------------------------------------- #
# pytest-benchmark entry point
# --------------------------------------------------------------------- #
def test_bench_advf_inject(once, benchmark):
    from conftest import print_header

    results = once(measure_all)
    benchmark.extra_info.update(
        {name: entry for name, entry in results["timings"].items()}
    )
    benchmark.extra_info["geomean_speedup"] = results["geomean_speedup"]
    print_header(
        f"Speculative injection resolution vs sequential (window={WINDOW}, "
        f"bar >= {SPEEDUP_BAR}x geomean on {', '.join(TIMED_WORKLOADS)})"
    )
    print(json.dumps(results, indent=2))
    _check(results)


def main() -> None:
    results = measure_all()
    results["provenance"] = provenance()
    print(json.dumps(results, indent=2))
    with open(OUTPUT, "w", encoding="utf-8") as fh:
        json.dump(results, fh, indent=2)
    print(f"wrote {OUTPUT}", file=sys.stderr)
    _check(results)


if __name__ == "__main__":
    main()
