"""E-ENG — engine microbenchmark: pre-decode + checkpointed replay speedup.

Two measurements against the seed tree-walking interpreter:

* **decode**: one full traced-free execution of a workload through the
  interpreter vs the pre-decoded engine (pure dispatch speedup);
* **replay**: an injection campaign of ``REPRO_BENCH_FAULTS`` (default 200)
  faults executed the seed way (fresh instance, full interpreted re-run per
  fault) vs via :class:`~repro.core.replay.ReplayContext` (restore the
  snapshot nearest the fault site, run the suffix, stop early on
  convergence).

The replay acceptance bar for the engine refactor is a ≥ 3× campaign
throughput improvement; the observed speedups are recorded in the
``extra_info`` of the pytest-benchmark JSON so the perf trajectory captures
engine throughput over time.  Runable standalone too:

    python benchmarks/bench_engine.py
"""

from __future__ import annotations

import json
import os
import sys
import time

try:
    import repro  # noqa: F401  (installed package or PYTHONPATH=src)
except ModuleNotFoundError:  # standalone script run from a source checkout
    sys.path.insert(
        0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    )

from repro.core.replay import ReplayContext
from repro.core.sites import enumerate_fault_sites
from repro.vm import Engine, Interpreter
from repro.vm.errors import VMError
from repro.workloads.registry import get_workload

#: Number of faults in the campaign benchmark (acceptance bar: >= 200).
FAULTS = max(1, int(os.environ.get("REPRO_BENCH_FAULTS", "200")))
WORKLOAD = os.environ.get("REPRO_BENCH_WORKLOAD", "matmul")


def _campaign_specs(workload, faults):
    """A deterministic spread of fault specs across the whole fault space."""
    trace = workload.traced_run().trace
    specs = []
    for target in workload.target_objects:
        sites = enumerate_fault_sites(trace, target, bit_stride=3)
        per_target = max(1, faults // len(workload.target_objects))
        step = max(1, len(sites) // per_target)
        specs.extend(site.to_spec() for site in sites[::step])
    return specs[:faults]


def _run_seed_style(workload, spec):
    """The seed path: fresh instance, full interpreted re-execution."""
    try:
        workload.fresh_instance().run(fault=spec, executor="interpreter")
    except VMError:
        pass


def _time(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def measure_decode_speedup(workload_name: str = WORKLOAD):
    """One untraced execution: interpreter vs pre-decoded engine."""
    workload = get_workload(workload_name)
    workload.module()  # compile outside the timed region

    def interp():
        instance = workload.fresh_instance()
        Interpreter(instance.module, instance.memory).run(workload.entry, instance.args)

    def engine():
        instance = workload.fresh_instance()
        Engine(instance.module, instance.memory).run(workload.entry, instance.args)

    engine()  # warm the decode cache; decoding is once-per-module
    t_interp = min(_time(interp) for _ in range(3))
    t_engine = min(_time(engine) for _ in range(3))
    steps = workload.golden_run().steps
    return {
        "workload": workload_name,
        "steps": steps,
        "interpreter_s": t_interp,
        "engine_s": t_engine,
        "decode_speedup": t_interp / t_engine if t_engine else float("inf"),
        "engine_events_per_s": steps / t_engine if t_engine else float("inf"),
    }


def measure_replay_speedup(workload_name: str = WORKLOAD, faults: int = FAULTS):
    """Injection campaign: seed full re-runs vs checkpointed replay."""
    workload = get_workload(workload_name)
    specs = _campaign_specs(workload, faults)

    def seed_campaign():
        for spec in specs:
            _run_seed_style(workload, spec)

    context = ReplayContext(workload)

    def replay_campaign():
        for spec in specs:
            try:
                context.replay(spec)
            except VMError:
                pass

    t_seed = _time(seed_campaign)
    t_replay = _time(replay_campaign)
    return {
        "workload": workload_name,
        "faults": len(specs),
        "checkpoints": len(context.snapshots),
        "checkpoint_interval": context.checkpoint_interval,
        "seed_rerun_s": t_seed,
        "replay_s": t_replay,
        "replay_speedup": t_seed / t_replay if t_replay else float("inf"),
        "converged_replays": context.converged_replays,
        "faults_per_s": len(specs) / t_replay if t_replay else float("inf"),
    }


# --------------------------------------------------------------------- #
# pytest-benchmark entry points
# --------------------------------------------------------------------- #
def test_bench_engine_decode(once, benchmark):
    from conftest import print_header

    stats = once(measure_decode_speedup)
    benchmark.extra_info.update(stats)
    print_header("Engine: pre-decode dispatch speedup over the interpreter")
    print(json.dumps(stats, indent=2))
    assert stats["decode_speedup"] > 1.0


def test_bench_engine_replay_campaign(once, benchmark):
    from conftest import print_header

    stats = once(measure_replay_speedup)
    benchmark.extra_info.update(stats)
    print_header(
        f"Engine: checkpointed replay vs seed re-execution "
        f"({stats['faults']} faults)"
    )
    print(json.dumps(stats, indent=2))
    # acceptance bar of the engine refactor: >= 3x campaign throughput
    assert stats["replay_speedup"] >= 3.0


def main() -> None:
    decode = measure_decode_speedup()
    replay = measure_replay_speedup()
    print(json.dumps({"decode": decode, "replay": replay}, indent=2))
    if replay["faults"] >= 200:
        assert replay["replay_speedup"] >= 3.0, (
            f"replay speedup {replay['replay_speedup']:.2f}x below the 3x bar"
        )


if __name__ == "__main__":
    main()
