"""B-CAMP — campaign orchestration microbenchmark.

Three measurements of the durable-campaign subsystem:

* **shard throughput**: a fixed-count campaign executed through the
  orchestrator (sharding + worker execution + SQLite checkpointing),
  reported as injections/second and seconds/shard;
* **resume overhead**: re-running the completed campaign — every shard is
  found in the store and skipped, so this isolates the pure cost of the
  durable bookkeeping (plan regeneration, golden trace, shard lookups);
* **adaptive vs fixed sizing**: an :class:`AdaptivePlan` targeting a CI
  half-width, versus the fixed-count plan that must be sized for the
  worst case p = 0.5 to guarantee the same precision.  The acceptance bar
  is that the adaptive campaign reaches the target half-width with fewer
  injections.

Stats land in the pytest-benchmark ``extra_info`` JSON so the perf
trajectory records campaign throughput and resume overhead over time.
Runnable standalone too::

    python benchmarks/bench_campaign.py
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import time

try:
    import repro  # noqa: F401  (installed package or PYTHONPATH=src)
except ModuleNotFoundError:  # standalone script run from a source checkout
    sys.path.insert(
        0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    )

from repro.campaigns import (
    AdaptivePlan,
    CampaignOrchestrator,
    CampaignStore,
    FixedRandomPlan,
    fixed_sample_size_for_half_width,
    wilson_half_width,
)
from repro.obs.log import provenance

WORKLOAD = os.environ.get("REPRO_BENCH_WORKLOAD", "matmul")
#: Injections in the fixed-count shard-throughput campaign.
TESTS = max(8, int(os.environ.get("REPRO_BENCH_CAMPAIGN_TESTS", "128")))
SHARD_SIZE = max(4, int(os.environ.get("REPRO_BENCH_SHARD_SIZE", "32")))
#: Target CI half-width of the adaptive-vs-fixed comparison.
HALF_WIDTH = float(os.environ.get("REPRO_BENCH_HALF_WIDTH", "0.12"))
OUTPUT = os.environ.get("REPRO_BENCH_CAMPAIGN_JSON", "BENCH_campaign.json")


def _store(tmpdir: str, name: str) -> CampaignStore:
    return CampaignStore(os.path.join(tmpdir, name))


def measure_shard_throughput_and_resume(workload_name: str = WORKLOAD):
    """Fixed campaign end-to-end, then a full-skip resume of the same."""
    with tempfile.TemporaryDirectory() as tmpdir:
        store = _store(tmpdir, "bench.sqlite")
        orchestrator = CampaignOrchestrator(
            store,
            workload_name,
            plan=FixedRandomPlan(tests=TESTS, seed=11),
            workers=1,
            shard_size=SHARD_SIZE,
        )
        start = time.perf_counter()
        result = orchestrator.run()
        run_s = time.perf_counter() - start
        assert result.status == "complete"

        start = time.perf_counter()
        resumed = orchestrator.run()
        resume_s = time.perf_counter() - start
        assert resumed.executed_shards == 0
        assert resumed.skipped_shards == result.executed_shards

        store.close()
        return {
            "workload": workload_name,
            "injections": result.executed_injections,
            "shards": result.executed_shards,
            "shard_size": SHARD_SIZE,
            "campaign_s": run_s,
            "injections_per_s": result.executed_injections / run_s if run_s else 0.0,
            "s_per_shard": run_s / result.executed_shards if result.executed_shards else 0.0,
            "resume_overhead_s": resume_s,
            "resume_skip_per_s": (
                resumed.skipped_shards / resume_s if resume_s else float("inf")
            ),
        }


def measure_adaptive_vs_fixed(workload_name: str = WORKLOAD):
    """Adaptive CI-driven sizing against the worst-case fixed-count plan."""
    plan = AdaptivePlan(
        target_half_width=HALF_WIDTH, batch_size=16, max_batches=64, seed=5
    )
    with tempfile.TemporaryDirectory() as tmpdir:
        store = _store(tmpdir, "adaptive.sqlite")
        orchestrator = CampaignOrchestrator(store, workload_name, plan=plan, workers=1)
        start = time.perf_counter()
        result = orchestrator.run()
        adaptive_s = time.perf_counter() - start
        assert result.status == "complete"
        per_object = {
            name: {
                "injections": trials,
                "masking_rate": successes / trials if trials else 0.0,
                "half_width": wilson_half_width(successes, trials, plan.z),
            }
            for name, (successes, trials) in result.tallies.items()
        }
        store.close()
    # the fixed plan commits to the worst-case count *per object*
    fixed_equivalent = fixed_sample_size_for_half_width(HALF_WIDTH, plan.z) * len(
        per_object
    )
    adaptive_injections = result.executed_injections
    return {
        "workload": workload_name,
        "target_half_width": HALF_WIDTH,
        "objects": len(per_object),
        "adaptive_injections": adaptive_injections,
        "fixed_equivalent_injections": fixed_equivalent,
        "injections_saved": fixed_equivalent - adaptive_injections,
        "adaptive_s": adaptive_s,
        "per_object": per_object,
    }


# --------------------------------------------------------------------- #
# pytest-benchmark entry points
# --------------------------------------------------------------------- #
def test_bench_campaign_shard_throughput(once, benchmark):
    from conftest import print_header

    stats = once(measure_shard_throughput_and_resume)
    benchmark.extra_info.update(stats)
    print_header(
        f"Campaign: shard throughput + resume overhead ({stats['injections']} "
        f"injections, shards of {stats['shard_size']})"
    )
    print(json.dumps(stats, indent=2))
    # resuming a finished campaign must cost far less than running it
    assert stats["resume_overhead_s"] < stats["campaign_s"]


def test_bench_campaign_adaptive_vs_fixed(once, benchmark):
    from conftest import print_header

    stats = once(measure_adaptive_vs_fixed)
    benchmark.extra_info.update(
        {k: v for k, v in stats.items() if k != "per_object"}
    )
    print_header(
        f"Campaign: adaptive CI sizing vs fixed-count "
        f"(half-width <= {stats['target_half_width']})"
    )
    print(json.dumps(stats, indent=2))
    # acceptance bar: adaptive reaches the target with fewer injections
    for info in stats["per_object"].values():
        assert info["half_width"] <= stats["target_half_width"]
    assert stats["adaptive_injections"] < stats["fixed_equivalent_injections"]


def main() -> None:
    throughput = measure_shard_throughput_and_resume()
    adaptive = measure_adaptive_vs_fixed()
    results = {
        "throughput": throughput,
        "adaptive": adaptive,
        "provenance": provenance(),
    }
    print(json.dumps(results, indent=2))
    with open(OUTPUT, "w", encoding="utf-8") as fh:
        json.dump(results, fh, indent=2)
    print(f"wrote {OUTPUT}", file=sys.stderr)
    assert throughput["resume_overhead_s"] < throughput["campaign_s"], (
        "resume overhead exceeded the full campaign cost"
    )
    for info in adaptive["per_object"].values():
        assert info["half_width"] <= adaptive["target_half_width"], (
            "adaptive campaign stopped above the target CI half-width"
        )
    assert adaptive["adaptive_injections"] < adaptive["fixed_equivalent_injections"], (
        "adaptive plan did not beat the equivalent fixed-count plan"
    )


if __name__ == "__main__":
    main()
