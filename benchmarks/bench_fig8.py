"""E-F8 — Figure 8: ABFT case study on matrix multiplication (object C).

aDVF of the product matrix ``C`` with and without algorithm-based fault
tolerance.  Expected shape: ABFT raises the aDVF of ``C`` dramatically, and
the gain shows up as overwrite-style masking during error propagation (the
verification phase corrects the corrupted element after the fact).
"""

from conftest import bench_config, print_header

from repro.core.advf import AdvfEngine
from repro.core.masking import MaskingCategory, MaskingLevel
from repro.reporting.tables import format_table
from repro.workloads.matmul import MatmulWorkload


def _analyze_both():
    plain = AdvfEngine(MatmulWorkload(abft=False), bench_config()).analyze_object("C")
    abft = AdvfEngine(MatmulWorkload(abft=True), bench_config()).analyze_object("C")
    return {"[C]": plain.result, "ABFT_[C]": abft.result}


def test_fig8_abft_matmul(once):
    results = once(_analyze_both)
    print_header("Figure 8: aDVF of C in matrix multiplication, with and without ABFT")
    rows = [
        [
            name,
            f"{r.value:.3f}",
            f"{r.level_fraction(MaskingLevel.OPERATION):.3f}",
            f"{r.level_fraction(MaskingLevel.PROPAGATION):.3f}",
            f"{r.level_fraction(MaskingLevel.ALGORITHM):.3f}",
            f"{r.category_fraction(MaskingCategory.OVERWRITE):.3f}",
            f"{r.category_fraction(MaskingCategory.OVERSHADOW):.3f}",
        ]
        for name, r in results.items()
    ]
    print(
        format_table(
            ["variant", "aDVF", "operation", "propagation", "algorithm", "overwrite", "overshadow"],
            rows,
        )
    )
    improvement = results["ABFT_[C]"].value - results["[C]"].value
    print(f"\naDVF improvement from ABFT on C: {improvement:+.3f} (paper: 0.0172 -> 0.82)")
