"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  Budgets are
chosen so the whole harness finishes in minutes on a laptop; raise
``REPRO_BENCH_SCALE`` (an integer multiplier) to spend more injections per
object when more fidelity is wanted.
"""

from __future__ import annotations

import os
from functools import lru_cache
from typing import Dict, List, Tuple

import pytest

from repro.core.advf import AdvfEngine, AnalysisConfig, ObjectReport
from repro.core.patterns import SingleBitModel
from repro.workloads.registry import get_workload

#: Scale factor for injection budgets (1 = quick laptop run).
SCALE = max(1, int(os.environ.get("REPRO_BENCH_SCALE", "1")))


def bench_config(max_injections: int = 40) -> AnalysisConfig:
    """Analysis configuration used across the figure benchmarks."""
    return AnalysisConfig(
        max_injections=max_injections * SCALE,
        equivalence_samples=1,
        injection_samples_per_class=1,
        error_model=SingleBitModel(bit_stride=8),
    )


#: The 16 data objects of Figures 4 and 5: (workload, object) pairs.
FIGURE4_OBJECTS: List[Tuple[str, str]] = [
    ("cg", "r"),
    ("cg", "colidx"),
    ("mg", "u"),
    ("mg", "r"),
    ("ft", "exp1"),
    ("ft", "plane"),
    ("bt", "grid_points"),
    ("bt", "u"),
    ("sp", "grid_points"),
    ("sp", "rhoi"),
    ("lu", "u"),
    ("lu", "rsd"),
    ("lulesh", "m_delv_zeta"),
    ("lulesh", "m_elemBC"),
    ("amg", "ipiv"),
    ("amg", "A"),
]


@lru_cache(maxsize=None)
def advf_for(workload_name: str, object_name: str) -> ObjectReport:
    """aDVF analysis of one data object (cached across benchmarks)."""
    workload = get_workload(workload_name)
    engine = AdvfEngine(workload, bench_config())
    return engine.analyze_object(object_name)


def print_header(title: str) -> None:
    print()
    print("=" * 78)
    print(title)
    print("=" * 78)


@pytest.fixture
def once(benchmark):
    """Run the benchmarked callable exactly once (campaigns are long-running)."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, iterations=1, rounds=1)

    return runner
