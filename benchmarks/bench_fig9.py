"""E-F9 — Figure 9: ABFT on the Particle Filter's critical variable ``xe``.

Expected shape: unlike the GEMM case, protecting ``xe`` with ABFT barely
moves its aDVF — operation-level masking already dominates and most errors
ABFT corrects are ones the statistical estimator tolerates anyway.
"""

from conftest import bench_config, print_header

from repro.core.advf import AdvfEngine
from repro.core.masking import MaskingLevel
from repro.reporting.tables import format_table
from repro.workloads.particle_filter import ParticleFilterWorkload


def _analyze_both():
    plain = AdvfEngine(
        ParticleFilterWorkload(abft=False), bench_config()
    ).analyze_object("xe")
    abft = AdvfEngine(
        ParticleFilterWorkload(abft=True), bench_config()
    ).analyze_object("xe")
    return {"[xe]": plain.result, "ABFT_[xe]": abft.result}


def test_fig9_abft_particle_filter(once):
    results = once(_analyze_both)
    print_header("Figure 9: aDVF of xe in the Particle Filter, with and without ABFT")
    rows = [
        [
            name,
            f"{r.value:.3f}",
            f"{r.level_fraction(MaskingLevel.OPERATION):.3f}",
            f"{r.level_fraction(MaskingLevel.PROPAGATION):.3f}",
            f"{r.level_fraction(MaskingLevel.ALGORITHM):.3f}",
            r.participations,
        ]
        for name, r in results.items()
    ]
    print(
        format_table(
            ["variant", "aDVF", "operation", "propagation", "algorithm", "participations"],
            rows,
        )
    )
    delta = results["ABFT_[xe]"].value - results["[xe]"].value
    print(f"\naDVF change from ABFT on xe: {delta:+.3f} (paper: 0.475 -> 0.48, i.e. ~no change)")
