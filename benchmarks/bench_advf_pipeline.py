"""A-PIPE — aDVF pipeline microbenchmark: columnar passes vs legacy scans.

Measures, per workload (default ``matmul`` and ``cg``):

* **analysis**: one full aDVF analysis of the workload's target objects
  over a pre-built golden trace — the legacy per-event pipeline
  (``pipeline="legacy"``) vs the vectorized columnar one
  (``pipeline="columnar"``).  Injection is disabled so the measurement
  isolates the trace-analysis stack (participation discovery, operation-
  level masking, propagation, aggregation); the deterministic-injection
  machinery is byte-for-byte shared by both pipelines.
* **trace acquisition**: recording a fresh golden trace vs loading the
  cached ``.npz`` artifact (what campaign workers and resumed campaigns
  pay).

Results must be *bit-identical* across pipelines (asserted here, and
exhaustively in ``tests/test_passes_parity.py``).  The acceptance bar of
the columnar refactor is a >= 3x analysis speedup on ``matmul``; observed
numbers land in the pytest-benchmark JSON ``extra_info``.  Runable
standalone too:

    python benchmarks/bench_advf_pipeline.py
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import time
from pathlib import Path

try:
    import repro  # noqa: F401  (installed package or PYTHONPATH=src)
except ModuleNotFoundError:  # standalone script run from a source checkout
    sys.path.insert(
        0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    )

from repro.core.advf import AdvfEngine, AnalysisConfig
from repro.tracing import ColumnarTrace, have_numpy
from repro.workloads.registry import get_workload

WORKLOADS = os.environ.get("REPRO_BENCH_PIPELINE_WORKLOADS", "matmul,cg").split(",")
#: The analysis speedup bar on matmul (with NumPy available).
SPEEDUP_BAR = 3.0


def _time(fn, repeats: int = 3) -> float:
    return min(_timed(fn) for _ in range(repeats))


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def measure_analysis_speedup(workload_name: str):
    """Legacy vs columnar aDVF analysis over pre-built golden traces."""
    workload = get_workload(workload_name)
    results = {}

    def analyze(pipeline):
        engine = AdvfEngine(
            workload, AnalysisConfig(pipeline=pipeline, use_injection=False)
        )
        engine.trace  # build (and, for columnar, seal) outside the timed region
        elapsed = _timed(lambda: results.setdefault(pipeline, engine.analyze()))
        # re-run on fresh engines for a min-of-3 wall clock
        for _ in range(2):
            fresh = AdvfEngine(
                workload, AnalysisConfig(pipeline=pipeline, use_injection=False)
            )
            fresh.trace
            elapsed = min(elapsed, _timed(fresh.analyze))
        return elapsed

    legacy_s = analyze("legacy")
    columnar_s = analyze("columnar")

    for object_name, report in results["legacy"].objects.items():
        fast = results["columnar"].objects[object_name]
        assert report.to_dict() == fast.to_dict(), (
            f"pipelines diverged on {workload_name}.{object_name}"
        )

    return {
        "workload": workload_name,
        "numpy": have_numpy(),
        "trace_events": results["legacy"].trace_events,
        "objects": len(results["legacy"].objects),
        "legacy_analysis_s": legacy_s,
        "columnar_analysis_s": columnar_s,
        "analysis_speedup": legacy_s / columnar_s if columnar_s else float("inf"),
    }


def measure_trace_acquisition(workload_name: str):
    """Fresh traced run vs loading the cached columnar artifact."""
    workload = get_workload(workload_name)
    trace = workload.traced_run(columnar=True).trace
    record_s = _time(lambda: workload.traced_run(columnar=True))
    with tempfile.TemporaryDirectory(prefix="repro-bench-trace-") as tmp:
        path = trace.save(Path(tmp) / f"golden{'.npz' if have_numpy() else '.jsonl'}")
        artifact_bytes = path.stat().st_size
        load_s = _time(lambda: ColumnarTrace.load(path))
    return {
        "workload": workload_name,
        "record_s": record_s,
        "artifact_load_s": load_s,
        "artifact_bytes": artifact_bytes,
        "load_speedup": record_s / load_s if load_s else float("inf"),
    }


# --------------------------------------------------------------------- #
# pytest-benchmark entry points
# --------------------------------------------------------------------- #
def test_bench_advf_pipeline_analysis(once, benchmark):
    from conftest import print_header

    stats = {name: once(measure_analysis_speedup, name) for name in [WORKLOADS[0]]}
    for name in WORKLOADS[1:]:
        stats[name] = measure_analysis_speedup(name)
    benchmark.extra_info.update(stats)
    print_header("aDVF pipeline: columnar passes vs legacy per-event scans")
    print(json.dumps(stats, indent=2))
    if have_numpy() and "matmul" in stats:
        assert stats["matmul"]["analysis_speedup"] >= SPEEDUP_BAR


def test_bench_advf_pipeline_trace_cache(once, benchmark):
    from conftest import print_header

    stats = once(measure_trace_acquisition, WORKLOADS[0])
    benchmark.extra_info.update(stats)
    print_header("aDVF pipeline: golden-trace artifact load vs re-trace")
    print(json.dumps(stats, indent=2))
    assert stats["load_speedup"] > 1.0


def main() -> None:
    report = {
        "analysis": {name: measure_analysis_speedup(name) for name in WORKLOADS},
        "trace_acquisition": measure_trace_acquisition(WORKLOADS[0]),
    }
    print(json.dumps(report, indent=2))
    if have_numpy() and "matmul" in report["analysis"]:
        speedup = report["analysis"]["matmul"]["analysis_speedup"]
        assert speedup >= SPEEDUP_BAR, (
            f"columnar analysis speedup {speedup:.2f}x below the "
            f"{SPEEDUP_BAR:.0f}x bar"
        )


if __name__ == "__main__":
    main()
