"""E-K — §III-D ablation: bounding the error-propagation path length.

The paper justifies k = 50 with the observation that errors not masked
within the first k operations after the fault almost never get masked later
(87 % decided at k = 10, 100 % at k = 50).  This ablation measures, for a
sample of fault sites that are *not* masked at the operation level, how the
propagation verdict at several values of k compares with the ground-truth
outcome of deterministic injection.
"""

from conftest import print_header

from repro.core.injector import DeterministicFaultInjector
from repro.core.masking import OperationMaskingAnalyzer
from repro.core.participation import ParticipationRole, find_participations
from repro.core.patterns import ErrorPattern
from repro.core.propagation import PropagationAnalyzer
from repro.core.sites import FaultSite
from repro.reporting.tables import format_table
from repro.workloads.registry import get_workload

K_VALUES = [5, 10, 20, 50]
SAMPLE_BITS = [2, 30, 52, 62]
MAX_SITES = 40


def _collect(workload_name, object_name):
    workload = get_workload(workload_name)
    trace = workload.traced_run().trace
    masking = OperationMaskingAnalyzer(trace)
    injector = DeterministicFaultInjector(workload)
    participations = [
        p
        for p in find_participations(trace, object_name)
        if p.role is ParticipationRole.CONSUMED
    ]
    rows = []
    for participation in participations:
        for bit in SAMPLE_BITS:
            if len(rows) >= MAX_SITES:
                break
            pattern = ErrorPattern((bit,))
            verdict = masking.analyze(participation, pattern)
            if verdict.masked is not None and not verdict.needs_propagation:
                continue
            outcome = injector.inject(FaultSite(participation, bit).to_spec())
            per_k = {}
            for k in K_VALUES:
                analyzer = PropagationAnalyzer(
                    trace, k=k, output_objects=set(workload.output_objects)
                )
                per_k[k] = analyzer.analyze(participation, pattern, verdict.corrupted_result)
            rows.append((outcome.outcome.is_success, per_k))
    return rows


def _run():
    rows = []
    rows.extend(_collect("lu", "rsd"))
    rows.extend(_collect("lulesh", "m_delv_zeta"))
    return rows


def test_kbound_ablation(once):
    samples = once(_run)
    print_header("§III-D ablation: propagation bound k vs deterministic injection")
    table = []
    for k in K_VALUES:
        undecided = [s for s in samples if s[1][k].masked is not True]
        if undecided:
            incorrect = sum(1 for success, _ in undecided if not success)
            rate = incorrect / len(undecided)
        else:
            rate = float("nan")
        decided_masked = [s for s in samples if s[1][k].masked is True]
        correct_decided = sum(1 for success, _ in decided_masked if success)
        table.append(
            [
                k,
                len(samples),
                len(undecided),
                f"{100 * rate:.0f}%" if undecided else "n/a",
                f"{correct_decided}/{len(decided_masked)}",
            ]
        )
    print(
        format_table(
            [
                "k",
                "sampled sites",
                "not masked within k",
                "of those: incorrect outcome",
                "masked-within-k confirmed correct",
            ],
            table,
        )
    )
    print(
        "\npaper observation: 87% at k=10 and 100% at k=50 of the injections not\n"
        "masked within k lead to numerically incorrect outcomes."
    )
