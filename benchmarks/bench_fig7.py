"""E-F7 — Figure 7: random fault injection vs aDVF on LULESH m_x / m_y / m_z.

The RFI sweep varies the number of injection tests and reports the success
rate with its 95 % margin of error; the point of the figure is that the RFI
ranking of the three (equally-sized, same-role) arrays flips between sample
sizes while aDVF gives one deterministic ranking.
"""

from conftest import SCALE, bench_config, print_header

from repro.core.advf import AdvfEngine
from repro.core.rfi import RandomFaultInjection
from repro.reporting.tables import format_table
from repro.workloads.registry import get_workload

OBJECTS = ["m_x", "m_y", "m_z"]
#: Paper uses 500..3500 with stride 500; scaled down for a laptop run.
TEST_COUNTS = [50 * SCALE, 100 * SCALE, 150 * SCALE, 200 * SCALE, 250 * SCALE]


def _run_campaigns():
    workload = get_workload("lulesh")
    trace = workload.traced_run().trace
    rfi_results = {}
    for index, name in enumerate(OBJECTS):
        rfi = RandomFaultInjection(workload, seed=11 + index)
        rfi_results[name] = rfi.sweep(trace, name, TEST_COUNTS)
    engine = AdvfEngine(workload, bench_config())
    advf = {name: engine.analyze_object(name).result.value for name in OBJECTS}
    return rfi_results, advf


def test_fig7_rfi_vs_advf(once):
    rfi_results, advf = once(_run_campaigns)
    print_header("Figure 7: RFI success rate (with 95% margin of error) vs aDVF")
    header = ["data object"] + [f"RFI n={n}" for n in TEST_COUNTS] + ["aDVF"]
    rows = []
    for name in OBJECTS:
        cells = [name]
        for result in rfi_results[name]:
            cells.append(f"{result.success_rate:.3f}±{result.margin_of_error:.3f}")
        cells.append(f"{advf[name]:.3f}")
        rows.append(cells)
    print(format_table(header, rows))
    # how often does the RFI ranking flip across sample sizes?
    rankings = set()
    for i, _ in enumerate(TEST_COUNTS):
        order = tuple(
            sorted(OBJECTS, key=lambda n: rfi_results[n][i].success_rate, reverse=True)
        )
        rankings.add(order)
    print(f"\ndistinct RFI rankings across sample sizes: {len(rankings)}")
    print(f"aDVF ranking (deterministic): {sorted(OBJECTS, key=advf.get, reverse=True)}")
