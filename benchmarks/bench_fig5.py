"""E-F5 — Figure 5: aDVF broken down by masking category.

Breakdown of the operation- and propagation-level masking into value
overwriting (W), value overshadowing (S) and logic/comparison operations
(L).  Expected shape: overshadowing dominates the double-precision arrays;
integer objects rely on logic/compare masking and have little of either.
"""

from conftest import FIGURE4_OBJECTS, advf_for, print_header

from repro.core.masking import MaskingCategory
from repro.reporting.figures import advf_category_breakdown_rows, stacked_bar_chart
from repro.reporting.tables import format_table


def _analyze_all():
    return {
        f"{wl}:{obj}": advf_for(wl, obj).result for wl, obj in FIGURE4_OBJECTS
    }


def test_fig5_advf_by_category(once):
    results = once(_analyze_all)
    print_header(
        "Figure 5: masking categories (W=overwrite, S=overshadow, L=logic/compare)"
    )
    print(stacked_bar_chart(advf_category_breakdown_rows(results)))
    print()
    rows = [
        [
            name,
            f"{r.value:.3f}",
            f"{r.category_fraction(MaskingCategory.OVERWRITE):.3f}",
            f"{r.category_fraction(MaskingCategory.OVERSHADOW):.3f}",
            f"{r.category_fraction(MaskingCategory.LOGIC_COMPARE):.3f}",
        ]
        for name, r in results.items()
    ]
    print(
        format_table(
            ["data object", "aDVF", "overwrite", "overshadow", "logic/compare"], rows
        )
    )
