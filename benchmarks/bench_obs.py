"""Telemetry overhead — instrumented engine vs ``REPRO_METRICS=0``.

Golden-run comparison on every registered workload, block backend (the
hottest configuration — the one the 12.8x geomean speedup was accepted
on):

* **off**: metrics disabled (the ``REPRO_METRICS=0`` no-op registry) —
  the engine's telemetry flush in ``_loop`` is skipped entirely;
* **on**: the default enabled registry — per-segment counts accumulate
  in local ints and flush to the process registry once per ``_loop``
  call — plus the flight recorder: span recording is enabled, every
  golden run is wrapped in a recorded span, and the buffered records are
  drained exactly as campaign workers ship them.

Acceptance bar: the instrumented run must stay within **3%** of the
disabled run (geometric mean across workloads).  Results land in
pytest-benchmark ``extra_info`` (or ``BENCH_obs.json`` when run
standalone)::

    python benchmarks/bench_obs.py
"""

from __future__ import annotations

import json
import math
import os
import sys
import time

try:
    import repro  # noqa: F401  (installed package or PYTHONPATH=src)
except ModuleNotFoundError:  # standalone script run from a source checkout
    sys.path.insert(
        0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    )

from repro.obs.log import provenance
from repro.obs.metrics import configure, registry
from repro.obs.spans import (
    disable_recording,
    drain_span_records,
    enable_recording,
    recording_enabled,
    span,
)
from repro.vm.engine import Engine
from repro.workloads.registry import get_workload, workload_names

#: Scale factor for timing repeats (1 = quick laptop/CI run).
SCALE = max(1, int(os.environ.get("REPRO_BENCH_SCALE", "1")))
#: Timing repeats per mode (best-of; overhead bars need low noise).
REPEATS = max(5, int(os.environ.get("REPRO_BENCH_OBS_REPEATS", "5"))) * SCALE
#: Max tolerated instrumented/disabled geomean ratio.
OVERHEAD_BAR = 1.03
OUTPUT = os.environ.get("REPRO_BENCH_OBS_JSON", "BENCH_obs.json")


def _golden(workload):
    instance = workload.fresh_instance()
    engine = Engine(
        instance.module,
        instance.memory,
        max_steps=workload.max_steps,
        backend="block",
    )
    return engine.run(workload.entry, instance.args).steps


#: Minimum wall time per timed sample; short workloads loop to reach it.
SAMPLE_FLOOR_S = 0.02


def _sample(workload, inner, name=None):
    """Time ``inner`` golden runs; with ``name``, each run is a recorded span."""
    start = time.perf_counter()
    if name is None:
        for _ in range(inner):
            _golden(workload)
    else:
        for _ in range(inner):
            with span("bench.golden", workload=name):
                _golden(workload)
    return (time.perf_counter() - start) / inner


def _paired_times(workload, inner, name):
    """Alternate modes and ratio each adjacent pair, cancelling load drift.

    Returns (best_off_s, best_on_s, median_pair_ratio, recorded_spans); the
    median of the per-pair on/off ratios is far less noisy than a ratio of
    two best-of times, because both halves of each pair run back to back.
    The instrumented half carries the full flight-recorder path: recording
    on, a span around every run, the buffer drained after every sample.
    """
    offs, ons = [], []
    recorded = 0
    was_recording = recording_enabled()
    enable_recording()
    drain_span_records()
    try:
        for _ in range(REPEATS):
            configure(False)
            offs.append(_sample(workload, inner))
            configure(True)
            ons.append(_sample(workload, inner, name=name))
            recorded += len(drain_span_records())
    finally:
        if not was_recording:
            disable_recording()
    ratios = sorted(on / off for on, off in zip(ons, offs))
    mid = len(ratios) // 2
    median = (
        ratios[mid]
        if len(ratios) % 2
        else (ratios[mid - 1] + ratios[mid]) / 2.0
    )
    return min(offs), min(ons), median, recorded


def measure_workload(name):
    workload = get_workload(name)
    steps = _golden(workload)  # warm module + MIR caches
    start = time.perf_counter()
    _golden(workload)
    single_s = time.perf_counter() - start
    # Batch sub-millisecond workloads so each sample clears the timer noise.
    inner = max(1, int(math.ceil(SAMPLE_FLOOR_S / max(single_s, 1e-9))))
    try:
        off_s, on_s, overhead, recorded = _paired_times(workload, inner, name)
        counted = registry().counter_total("engine.ops")
    finally:
        configure(None)  # back to the REPRO_METRICS-driven default
    assert counted >= steps, (
        f"{name}: instrumented run counted {counted} engine.ops "
        f"for {steps} executed steps"
    )
    assert recorded == REPEATS * inner, (
        f"{name}: flight recorder captured {recorded} spans "
        f"for {REPEATS * inner} instrumented runs"
    )
    return {
        "workload": name,
        "steps": steps,
        "off_s": off_s,
        "on_s": on_s,
        "overhead": overhead,
        "recorded_spans": recorded,
    }


def measure_all():
    rows = [measure_workload(name) for name in workload_names()]
    ratios = [row["overhead"] for row in rows]
    geomean = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
    return {
        "workloads": {row["workload"]: row for row in rows},
        "geomean_overhead": geomean,
        "max_overhead": max(ratios),
        "overhead_bar": OVERHEAD_BAR,
    }


def _check(results):
    assert results["geomean_overhead"] <= OVERHEAD_BAR, (
        f"metrics instrumentation costs "
        f"{(results['geomean_overhead'] - 1) * 100:.1f}% geomean, above the "
        f"{(OVERHEAD_BAR - 1) * 100:.0f}% acceptance bar"
    )


# --------------------------------------------------------------------- #
# pytest-benchmark entry point
# --------------------------------------------------------------------- #
def test_bench_obs(once, benchmark):
    from conftest import print_header

    results = once(measure_all)
    benchmark.extra_info["geomean_overhead"] = results["geomean_overhead"]
    for name, row in results["workloads"].items():
        benchmark.extra_info[name] = {k: v for k, v in row.items() if k != "workload"}
    print_header(
        f"Telemetry overhead: metrics on vs off "
        f"(bar <= {(OVERHEAD_BAR - 1) * 100:.0f}% geomean over "
        f"{len(results['workloads'])} workloads)"
    )
    print(json.dumps(results, indent=2))
    _check(results)


def main() -> None:
    results = measure_all()
    results["provenance"] = provenance()
    print(json.dumps(results, indent=2))
    with open(OUTPUT, "w", encoding="utf-8") as fh:
        json.dump(results, fh, indent=2)
    print(f"wrote {OUTPUT}", file=sys.stderr)
    _check(results)


if __name__ == "__main__":
    main()
