"""E-T1 — Table I: benchmarks, code segments and target data objects.

Regenerates the study-configuration table.  The benchmark also times one
golden traced execution per benchmark, which is the fixed cost every aDVF
analysis pays for its input trace.
"""

from conftest import print_header

from repro.reporting.tables import format_table, format_table1
from repro.workloads.registry import TABLE1_ROWS, get_workload


def _trace_all():
    rows = []
    for name in TABLE1_ROWS:
        workload = get_workload(name)
        outcome = workload.traced_run()
        rows.append([name.upper(), outcome.steps, len(outcome.trace)])
    return rows


def test_table1(once):
    rows = once(_trace_all)
    print_header("Table I: benchmarks and target data objects (reproduction)")
    print(format_table1())
    print()
    print(format_table(["Benchmark", "Dynamic instructions", "Trace events"], rows))
