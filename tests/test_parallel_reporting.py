"""Tests for the parallel campaign runner and the text reporting layer."""

import pytest

from repro.parallel.campaign import CampaignChunkError, _default_workers

from repro.core.advf import AdvfResult, AnalysisConfig
from repro.core.masking import MaskingCategory, MaskingLevel
from repro.core.patterns import SingleBitModel
from repro.core.sites import enumerate_fault_sites
from repro.parallel import CampaignRunner, chunk_evenly, interleave
from repro.reporting import (
    advf_category_breakdown_rows,
    advf_level_breakdown_rows,
    bar_chart,
    stacked_bar_chart,
    format_table,
    table1_rows,
)
from repro.reporting.tables import format_table1


class TestPartitioning:
    def test_chunk_evenly(self):
        chunks = chunk_evenly(list(range(10)), 3)
        assert [len(c) for c in chunks] == [4, 3, 3]
        assert sum(chunks, []) == list(range(10))

    def test_chunk_more_workers_than_items(self):
        chunks = chunk_evenly([1, 2], 4)
        assert [len(c) for c in chunks] == [1, 1, 0, 0]

    def test_interleave(self):
        chunks = interleave(list(range(7)), 3)
        assert chunks == [[0, 3, 6], [1, 4], [2, 5]]

    @pytest.mark.parametrize("fn", [chunk_evenly, interleave])
    def test_invalid_chunks(self, fn):
        with pytest.raises(ValueError):
            fn([1], 0)


class TestCampaignRunner:
    def test_sequential_injections(self, lulesh_workload):
        trace = lulesh_workload.traced_run().trace
        sites = enumerate_fault_sites(trace, "m_elemBC", bit_stride=32)[:6]
        runner = CampaignRunner("lulesh", {"num_elem": 10}, workers=1)
        results = runner.run_injections([s.to_spec() for s in sites])
        assert len(results) == 6
        assert all(r.outcome is not None for r in results)

    def test_parallel_matches_sequential(self, lulesh_workload):
        trace = lulesh_workload.traced_run().trace
        sites = enumerate_fault_sites(trace, "m_delv_zeta", bit_stride=16)[:8]
        specs = [s.to_spec() for s in sites]
        sequential = CampaignRunner("lulesh", {"num_elem": 10}, workers=1).run_injections(specs)
        parallel = CampaignRunner("lulesh", {"num_elem": 10}, workers=2).run_injections(specs)
        assert [r.outcome for r in sequential] == [r.outcome for r in parallel]

    def test_analyze_objects(self):
        config = AnalysisConfig(
            max_injections=5,
            equivalence_samples=1,
            injection_samples_per_class=1,
            error_model=SingleBitModel(bit_stride=16),
        )
        runner = CampaignRunner("lulesh", {"num_elem": 8}, workers=1)
        reports = runner.analyze_objects(["m_elemBC"], config)
        assert set(reports) == {"m_elemBC"}
        assert 0.0 <= reports["m_elemBC"].result.value <= 1.0

    def test_empty_inputs(self):
        runner = CampaignRunner("lulesh", {}, workers=1)
        assert runner.run_injections([]) == []
        assert runner.analyze_objects([]) == {}

    def test_progress_callback(self, lulesh_workload):
        trace = lulesh_workload.traced_run().trace
        sites = enumerate_fault_sites(trace, "m_elemBC", bit_stride=32)[:4]
        seen = []
        runner = CampaignRunner("lulesh", {"num_elem": 10}, workers=1)
        runner.run_injections(
            [s.to_spec() for s in sites],
            on_progress=lambda done, total: seen.append((done, total)),
        )
        assert seen == [(1, 1)]


class TestWorkerConfig:
    def test_repro_workers_env_honoured(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert _default_workers() == 3
        assert CampaignRunner("lulesh").workers == 3

    def test_repro_workers_env_validated(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "zero")
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            _default_workers()
        monkeypatch.setenv("REPRO_WORKERS", "0")
        with pytest.raises(ValueError, match=">= 1"):
            _default_workers()

    def test_default_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert 1 <= _default_workers() <= 8

    def test_explicit_workers_override_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "7")
        assert CampaignRunner("lulesh", workers=2).workers == 2


class TestChunkErrorContext:
    def test_failure_names_workload_chunk_and_specs(self):
        # a workload name no worker can rebuild fails inside the chunk
        runner = CampaignRunner("definitely-not-a-workload", {}, workers=1)
        from repro.vm.faults import FaultSpec

        specs = [FaultSpec(dynamic_id=i, bit=0) for i in range(3)]
        with pytest.raises(CampaignChunkError) as excinfo:
            runner.run_injections(specs)
        message = str(excinfo.value)
        assert "definitely-not-a-workload" in message
        assert "chunk 0" in message and "3 items" in message
        assert excinfo.value.__cause__ is not None

    def test_analyze_failure_wrapped_too(self):
        runner = CampaignRunner("not-a-workload", {}, workers=1)
        with pytest.raises(CampaignChunkError, match="not-a-workload"):
            runner.analyze_objects(["u"])


class TestReporting:
    def _results(self):
        return {
            "r": AdvfResult(
                object_name="r",
                value=0.9,
                participations=100,
                masked_events=90.0,
                by_level={MaskingLevel.OPERATION: 70.0, MaskingLevel.ALGORITHM: 20.0},
                by_category={
                    MaskingCategory.OVERWRITE: 40.0,
                    MaskingCategory.OVERSHADOW: 30.0,
                },
            ),
            "colidx": AdvfResult(
                object_name="colidx",
                value=0.2,
                participations=50,
                masked_events=10.0,
                by_level={MaskingLevel.ALGORITHM: 10.0},
                by_category={},
            ),
        }

    def test_format_table(self):
        text = format_table(["a", "bb"], [[1, "xy"], [22, "z"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "bb" in lines[0]

    def test_format_table_shape_check(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_table1_contains_all_benchmarks(self):
        rows = table1_rows()
        names = {row["name"] for row in rows}
        assert names == {"cg", "mg", "ft", "bt", "sp", "lu", "lulesh", "amg"}
        rendered = format_table1()
        assert "CG" in rendered and "colidx" in rendered

    def test_bar_chart(self):
        chart = bar_chart({"r": 0.9, "colidx": 0.2})
        assert "r" in chart and "0.900" in chart

    def test_stacked_chart_and_breakdowns(self):
        results = self._results()
        level_rows = advf_level_breakdown_rows(results)
        category_rows = advf_category_breakdown_rows(results)
        assert len(level_rows) == len(category_rows) == 2
        level_chart = stacked_bar_chart(level_rows)
        assert "0.900" in level_chart
        # level fractions of r sum to its aDVF
        total = sum(level_rows[0][1].values())
        assert total == pytest.approx(0.9)

    def test_level_and_category_fractions(self):
        result = self._results()["r"]
        assert result.level_fraction(MaskingLevel.OPERATION) == pytest.approx(0.7)
        assert result.category_fraction(MaskingCategory.OVERWRITE) == pytest.approx(0.4)
        empty = AdvfResult("x", 0.0, 0, 0.0)
        assert empty.level_fraction(MaskingLevel.OPERATION) == 0.0
        assert empty.category_fraction(MaskingCategory.OVERWRITE) == 0.0
