"""Unit tests for the interpreter: semantics, tracing, faults, crashes."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frontend import compile_kernel
from repro.ir import F64, I64, Opcode
from repro.ir.instructions import FCmpPredicate, ICmpPredicate
from repro.ir.types import I8, I32
from repro.tracing import Trace
from repro.vm import (
    FaultSpec,
    FaultTarget,
    Interpreter,
    Memory,
    SegmentationFault,
    StepLimitExceeded,
)
from repro.vm import semantics
from repro.vm.errors import ArithmeticFault, VMError
from repro.vm.registers import allocate_registers


# --------------------------------------------------------------------- #
# kernels
# --------------------------------------------------------------------- #
def k_intops(x: "i64", y: "i64") -> "i64":
    return (x * y + x - y) // (y + 1)


def k_div(x: "i64", y: "i64") -> "i64":
    return x // y


def k_store_loop(a: "double*", n: "i64") -> "void":
    for i in range(n):
        a[i] = i * 1.5


def k_oob(a: "double*", i: "i64") -> "double":
    return a[i]


def k_spin(n: "i64") -> "i64":
    i = 0
    while i < n:
        i = i + 0  # never advances when n > 0
    return i


def k_sumsq(a: "double*", n: "i64") -> "double":
    s = 0.0
    for i in range(n):
        s = s + a[i] * a[i]
    return s


class TestExecutionBasics:
    def test_integer_ops(self):
        f = compile_kernel(k_intops)
        module = f.metadata["module"]
        result = Interpreter(module, Memory()).run("k_intops", {"x": 7, "y": 3})
        expected = (7 * 3 + 7 - 3) // (3 + 1)
        assert result.return_value == expected

    def test_positional_args(self):
        f = compile_kernel(k_div)
        result = Interpreter(f.metadata["module"], Memory()).run("k_div", [9, 2])
        assert result.return_value == 4

    def test_argument_count_checked(self):
        f = compile_kernel(k_div)
        with pytest.raises(VMError):
            Interpreter(f.metadata["module"], Memory()).run("k_div", [9])

    def test_missing_named_argument(self):
        f = compile_kernel(k_div)
        with pytest.raises(VMError):
            Interpreter(f.metadata["module"], Memory()).run("k_div", {"x": 9})

    def test_division_by_zero_is_arithmetic_fault(self):
        f = compile_kernel(k_div)
        with pytest.raises(ArithmeticFault):
            Interpreter(f.metadata["module"], Memory()).run("k_div", {"x": 1, "y": 0})

    def test_out_of_bounds_is_segfault(self):
        f = compile_kernel(k_oob)
        memory = Memory()
        a = memory.allocate("a", F64, 4, initial=[0, 1, 2, 3])
        with pytest.raises(SegmentationFault):
            Interpreter(f.metadata["module"], memory).run("k_oob", {"a": a, "i": 1000})

    def test_step_limit(self):
        f = compile_kernel(k_spin)
        with pytest.raises(StepLimitExceeded):
            Interpreter(f.metadata["module"], Memory(), max_steps=500).run(
                "k_spin", {"n": 5}
            )

    def test_stack_objects_released(self):
        f = compile_kernel(k_intops)
        memory = Memory()
        Interpreter(f.metadata["module"], memory).run("k_intops", {"x": 1, "y": 1})
        assert memory.data_objects(include_stack=True) == []

    def test_saxpy_results(self, saxpy_setup):
        module, memory, a, b = saxpy_setup
        Interpreter(module, memory).run(
            "saxpy", {"a": a, "b": b, "n": 6, "alpha": 0.5}
        )
        assert list(b.values()) == [10.5, 11.0, 11.5, 12.0, 12.5, 13.0]


class TestTracing:
    def test_trace_events_in_order(self, saxpy_setup):
        module, memory, a, b = saxpy_setup
        trace = Trace()
        Interpreter(module, memory, trace=trace).run(
            "saxpy", {"a": a, "b": b, "n": 6, "alpha": 2.0}
        )
        assert len(trace) > 0
        assert [e.dynamic_id for e in trace] == list(range(len(trace)))

    def test_trace_resolves_objects(self, saxpy_setup):
        module, memory, a, b = saxpy_setup
        trace = Trace()
        Interpreter(module, memory, trace=trace).run(
            "saxpy", {"a": a, "b": b, "n": 6, "alpha": 2.0}
        )
        assert len(trace.loads_for("a")) == 6
        assert len(trace.stores_for("b")) == 6
        assert len(trace.loads_for("b")) == 6

    def test_load_records_writer(self, accumulate_trace):
        trace = accumulate_trace["trace"]
        # dst[i] is written (0.0) then read back in the accumulation statement
        loads = trace.loads_for("dst")
        assert loads and all(e.writer_id >= 0 for e in loads)

    def test_branch_events_record_taken_label(self, accumulate_trace):
        trace = accumulate_trace["trace"]
        branches = [e for e in trace if e.is_branch]
        assert branches and all(e.taken_label for e in branches)

    def test_producer_links(self, accumulate_trace):
        trace = accumulate_trace["trace"]
        for event in trace:
            for producer in event.operand_producers:
                assert producer < event.dynamic_id

    def test_summary(self, accumulate_trace):
        summary = accumulate_trace["trace"].summary()
        assert summary.total_events == len(accumulate_trace["trace"])
        assert summary.loads > 0 and summary.stores > 0
        assert "fmul" in summary.by_opcode


class TestFaultInjectionHooks:
    def _run(self, fault, alpha=2.0):
        f = compile_kernel(k_sumsq)
        module = f.metadata["module"]
        memory = Memory()
        a = memory.allocate("a", F64, 4, initial=[1.0, 2.0, 3.0, 4.0])
        return Interpreter(module, memory, fault=fault).run(
            "k_sumsq", {"a": a, "n": 4}
        )

    def test_golden_value(self):
        assert self._run(None).return_value == pytest.approx(30.0)

    def test_operand_fault_changes_result(self):
        trace = Trace()
        f = compile_kernel(k_sumsq)
        memory = Memory()
        a = memory.allocate("a", F64, 4, initial=[1.0, 2.0, 3.0, 4.0])
        Interpreter(f.metadata["module"], memory, trace=trace).run(
            "k_sumsq", {"a": a, "n": 4}
        )
        # find an fmul that consumes a loaded element and flip its sign bit
        fmul = next(e for e in trace if e.opcode is Opcode.FMUL)
        fault = FaultSpec(dynamic_id=fmul.dynamic_id, bit=63, operand_index=0)
        faulty = self._run(fault)
        assert faulty.return_value != pytest.approx(30.0)

    def test_result_fault(self):
        trace = Trace()
        f = compile_kernel(k_sumsq)
        memory = Memory()
        a = memory.allocate("a", F64, 4, initial=[1.0, 2.0, 3.0, 4.0])
        Interpreter(f.metadata["module"], memory, trace=trace).run(
            "k_sumsq", {"a": a, "n": 4}
        )
        fadd = next(e for e in trace if e.opcode is Opcode.FADD)
        fault = FaultSpec(
            dynamic_id=fadd.dynamic_id, bit=52, target=FaultTarget.RESULT
        )
        assert self._run(fault).return_value != pytest.approx(30.0)

    def test_store_dest_old_fault_is_masked_by_store(self):
        """Flipping the memory a store is about to overwrite never matters."""
        f = compile_kernel(k_store_loop)
        module = f.metadata["module"]
        memory = Memory()
        a = memory.allocate("a", F64, 4, initial=[9.0, 9.0, 9.0, 9.0])
        trace = Trace()
        Interpreter(module, memory, trace=trace).run("k_store_loop", {"a": a, "n": 4})
        store = next(e for e in trace if e.is_store and e.object_name == "a")
        golden = list(memory.object("a").values())

        memory2 = Memory()
        a2 = memory2.allocate("a", F64, 4, initial=[9.0, 9.0, 9.0, 9.0])
        fault = FaultSpec(
            dynamic_id=store.dynamic_id, bit=60, target=FaultTarget.STORE_DEST_OLD
        )
        Interpreter(module, memory2, fault=fault).run("k_store_loop", {"a": a2, "n": 4})
        assert list(a2.values()) == golden

    def test_fault_operand_index_out_of_range(self):
        fault = FaultSpec(dynamic_id=0, bit=0, operand_index=7)
        with pytest.raises(VMError):
            self._run(fault)


class TestSemanticsHelpers:
    @given(st.integers(-(2**31), 2**31 - 1), st.integers(-(2**31), 2**31 - 1))
    @settings(max_examples=80)
    def test_add_matches_wrapping(self, a, b):
        result = semantics.eval_binary(Opcode.ADD, I32, [a, b])
        assert result == ((a + b + 2**31) % 2**32) - 2**31

    @given(st.integers(-(2**15), 2**15), st.integers(1, 2**15))
    @settings(max_examples=60)
    def test_sdiv_truncates_toward_zero(self, a, b):
        result = semantics.eval_binary(Opcode.SDIV, I64, [a, b])
        assert result == int(a / b)

    @given(st.integers(-(2**15), 2**15), st.integers(1, 2**15))
    @settings(max_examples=60)
    def test_srem_identity(self, a, b):
        q = semantics.eval_binary(Opcode.SDIV, I64, [a, b])
        r = semantics.eval_binary(Opcode.SREM, I64, [a, b])
        assert q * b + r == a

    def test_shift_semantics(self):
        assert semantics.eval_binary(Opcode.SHL, I8, [1, 7]) == -128
        assert semantics.eval_binary(Opcode.LSHR, I8, [-1, 1]) == 127
        assert semantics.eval_binary(Opcode.ASHR, I8, [-2, 1]) == -1

    def test_float_divide_edge_cases(self):
        assert semantics.float_divide(1.0, 0.0) == math.inf
        assert semantics.float_divide(-1.0, 0.0) == -math.inf
        assert math.isnan(semantics.float_divide(0.0, 0.0))

    def test_fcmp_nan_is_false(self):
        assert semantics.eval_fcmp(FCmpPredicate.OEQ, [float("nan"), 1.0]) == 0
        assert semantics.eval_fcmp(FCmpPredicate.OLT, [float("nan"), 1.0]) == 0

    def test_icmp_unsigned(self):
        assert semantics.eval_icmp(ICmpPredicate.UGT, I8, [-1, 1]) == 1  # 255 > 1
        assert semantics.eval_icmp(ICmpPredicate.SGT, I8, [-1, 1]) == 0

    def test_conversions(self):
        assert semantics.eval_conversion(Opcode.FPTOSI, F64, I64, 3.9) == 3
        assert semantics.eval_conversion(Opcode.FPTOSI, F64, I64, float("nan")) == 0
        assert semantics.eval_conversion(Opcode.TRUNC, I64, I8, 300) == 44
        assert semantics.eval_conversion(Opcode.SITOFP, I64, F64, 7) == 7.0
        bits = semantics.eval_conversion(Opcode.BITCAST, F64, I64, 1.0)
        assert semantics.eval_conversion(Opcode.BITCAST, I64, F64, bits) == 1.0

    def test_intrinsic_nan_on_domain_error(self):
        assert math.isnan(semantics.eval_intrinsic("sqrt", F64, [-1.0]))
        assert semantics.eval_intrinsic("fmax", F64, [2.0, 3.0]) == 3.0


class TestRegisterAllocation:
    def test_allocation_over_trace(self, accumulate_trace):
        trace = accumulate_trace["trace"]
        allocation = allocate_registers(trace, object_name="src", num_registers=8)
        assert allocation.assignment, "results should be assigned registers"
        assert allocation.max_residency() >= 1
        assert all(0 <= r < 8 for r in allocation.assignment.values())

    def test_small_register_file_spills(self, accumulate_trace):
        trace = accumulate_trace["trace"]
        allocation = allocate_registers(trace, num_registers=2)
        assert allocation.spills > 0

    def test_invalid_register_count(self):
        from repro.vm.registers import RegisterFile

        with pytest.raises(ValueError):
            RegisterFile(num_registers=0)
