"""Tests tied directly to the paper's worked examples.

* Listing 1 / §III-A: overwriting masks, bit-shifting masks the shifted-out
  bits only.
* Fig. 2 / Eq. 2: the aDVF denominator of ``sum`` in ``l2norm`` counts one
  element participation per assignment plus two per accumulation statement
  and two per sqrt statement.
"""

import pytest

from repro.core.masking import MaskingCategory, OperationMaskingAnalyzer
from repro.core.participation import (
    ParticipationRole,
    find_participations,
    participation_counts_by_role,
)
from repro.core.patterns import ErrorPattern
from repro.frontend import compile_kernel
from repro.ir import F64, I64, Opcode
from repro.tracing import Trace
from repro.vm import Interpreter, Memory


# --------------------------------------------------------------------- #
# Listing-1-style kernel: assignment overwrite + bit shifting
# --------------------------------------------------------------------- #
def listing1(par_a: "i64*", n: "i64", bits: "i64") -> "i64":
    par_a[0] = 9                      # overwrite: any error in par_a[0] masked
    c = par_a[2] * 2                  # error propagates to c
    if c > 10:
        par_a[4] = c >> bits          # shifting can throw corrupted bits away
    return par_a[4]


@pytest.fixture(scope="module")
def listing1_trace():
    function = compile_kernel(listing1)
    memory = Memory()
    par_a = memory.allocate("par_a", I64, 6, initial=[1, 2, 30, 4, 5, 6])
    trace = Trace()
    Interpreter(function.metadata["module"], memory, trace=trace).run(
        "listing1", {"par_a": par_a, "n": 6, "bits": 3}
    )
    return trace


class TestListing1:
    def test_assignment_overwrite_masks_every_bit(self, listing1_trace):
        analyzer = OperationMaskingAnalyzer(listing1_trace)
        stores = [
            p
            for p in find_participations(listing1_trace, "par_a")
            if p.role is ParticipationRole.STORE_DEST and p.element_index == 0
        ]
        assert stores
        for bit in (0, 17, 42, 63):
            verdict = analyzer.analyze(stores[0], ErrorPattern((bit,)))
            assert verdict.masked is True
            assert verdict.category is MaskingCategory.OVERWRITE

    def test_shift_masks_only_low_bits(self, listing1_trace):
        analyzer = OperationMaskingAnalyzer(listing1_trace)
        shift_parts = [
            p
            for p in find_participations(listing1_trace, "par_a")
            if listing1_trace[p.event_id].opcode is Opcode.ASHR
        ]
        # c (derived from par_a[2]) is shifted, but c itself is a local, so we
        # check the shift on the traced event directly: the value operand of
        # the ashr keeps high bits and drops low ones.
        shifts = [e for e in listing1_trace if e.opcode is Opcode.ASHR]
        assert shifts
        event = shifts[0]
        from repro.core.reexec import reevaluate, results_identical

        low = list(event.operand_values)
        low[0] = ErrorPattern((0,)).apply(low[0], I64)
        assert results_identical(event, reevaluate(event, low).value)
        high = list(event.operand_values)
        high[0] = ErrorPattern((40,)).apply(high[0], I64)
        assert not results_identical(event, reevaluate(event, high).value)
        assert isinstance(shift_parts, list)


# --------------------------------------------------------------------- #
# Fig. 2 / Eq. 2: the l2norm denominator structure
# --------------------------------------------------------------------- #
class TestEquation2Structure:
    def test_participation_counts_match_eq2(self):
        from repro.workloads.lu import l2norm

        function = compile_kernel(l2norm)
        memory = Memory()
        n = 6
        v = memory.allocate(
            "v", F64, n * 5, initial=[0.1 * i for i in range(n * 5)]
        )
        sums = memory.allocate("sum", F64, 5)
        trace = Trace()
        Interpreter(function.metadata["module"], memory, trace=trace).run(
            "l2norm", {"v": v, "sum": sums, "n": n, "nelem": n}
        )
        participations = find_participations(trace, "sum")
        counts = participation_counts_by_role(participations)
        iternum1 = iternum3 = 5
        iternum2 = n * 5
        # loop 1: one store per iteration; loop 2: one store + one consumed add
        # per iteration; loop 3: one store + one consumed division per iteration
        assert counts[ParticipationRole.STORE_DEST] == iternum1 + iternum2 + iternum3
        assert counts[ParticipationRole.CONSUMED] == iternum2 + iternum3
        assert len(participations) == iternum1 + 2 * iternum2 + 2 * iternum3

    def test_loop1_stores_all_mask_and_loop2_stores_do_not(self):
        from repro.workloads.lu import l2norm

        function = compile_kernel(l2norm)
        memory = Memory()
        n = 4
        v = memory.allocate("v", F64, n * 5, initial=[1.0] * (n * 5))
        sums = memory.allocate("sum", F64, 5)
        trace = Trace()
        Interpreter(function.metadata["module"], memory, trace=trace).run(
            "l2norm", {"v": v, "sum": sums, "n": n, "nelem": n}
        )
        analyzer = OperationMaskingAnalyzer(trace)
        stores = [
            p
            for p in find_participations(trace, "sum")
            if p.role is ParticipationRole.STORE_DEST
        ]
        verdicts = [analyzer.analyze(p, ErrorPattern((30,))) for p in stores]
        masked = sum(1 for v in verdicts if v.masked is True)
        unmasked = sum(1 for v in verdicts if v.masked is False)
        # statement A stores (5) mask; statement B accumulations (n*5) do not;
        # statement C stores read-modify-write sum[m] as well.
        assert masked == 5
        assert unmasked == n * 5 + 5
