"""Direct unit tests for the Huang–Abraham checksum arithmetic.

`repro.abft.checksums` was previously exercised only indirectly through the
ABFT workload variants; these tests pin its contract: encode/verify/
locate/correct round-trips for single errors, and the documented limits on
double errors (detected but not locatable).
"""

import numpy as np
import pytest

from repro.abft import (
    correct_single_error,
    encode_column_checksums,
    encode_row_checksums,
    locate_single_error,
    verify_product,
)


@pytest.fixture()
def product():
    rng = np.random.default_rng(7)
    a = rng.standard_normal((5, 5))
    b = rng.standard_normal((5, 5))
    c = a @ b
    return a, b, c


class TestEncodeVerify:
    def test_clean_product_verifies(self, product):
        a, b, c = product
        rows = encode_row_checksums(a, b)
        cols = encode_column_checksums(a, b)
        assert rows.shape == (5,) and cols.shape == (5,)
        assert verify_product(c, rows, cols)

    def test_checksums_match_direct_sums(self, product):
        a, b, c = product
        np.testing.assert_allclose(encode_row_checksums(a, b), c.sum(axis=1))
        np.testing.assert_allclose(encode_column_checksums(a, b), c.sum(axis=0))

    def test_single_corruption_fails_verification(self, product):
        a, b, c = product
        rows, cols = encode_row_checksums(a, b), encode_column_checksums(a, b)
        bad = c.copy()
        bad[2, 3] += 1.5
        assert not verify_product(bad, rows, cols)

    def test_sub_tolerance_corruption_passes(self, product):
        a, b, c = product
        rows, cols = encode_row_checksums(a, b), encode_column_checksums(a, b)
        bad = c.copy()
        bad[1, 1] += 1e-9
        assert verify_product(bad, rows, cols, tol=1e-6)
        assert not verify_product(bad, rows, cols, tol=1e-12)


class TestLocateCorrect:
    @pytest.mark.parametrize("row,col,delta", [(0, 0, 2.0), (4, 1, -0.75), (2, 4, 1e-3)])
    def test_single_error_round_trip(self, product, row, col, delta):
        a, b, c = product
        rows, cols = encode_row_checksums(a, b), encode_column_checksums(a, b)
        bad = c.copy()
        bad[row, col] += delta

        located = locate_single_error(bad, rows, cols)
        assert located is not None
        lrow, lcol, ldelta = located
        assert (lrow, lcol) == (row, col)
        assert ldelta == pytest.approx(delta)

        corrected, applied = correct_single_error(bad, rows, cols)
        assert applied
        np.testing.assert_allclose(corrected, c, atol=1e-9)
        # copy-on-write: the corrupted input is untouched
        assert bad[row, col] == pytest.approx(c[row, col] + delta)

    def test_clean_matrix_locates_nothing(self, product):
        a, b, c = product
        rows, cols = encode_row_checksums(a, b), encode_column_checksums(a, b)
        assert locate_single_error(c, rows, cols) is None
        corrected, applied = correct_single_error(c, rows, cols)
        assert not applied
        assert corrected is c  # no copy when nothing to fix

    def test_two_errors_detected_but_not_locatable(self, product):
        a, b, c = product
        rows, cols = encode_row_checksums(a, b), encode_column_checksums(a, b)
        bad = c.copy()
        bad[0, 1] += 1.0
        bad[3, 2] += 1.0
        # two bad rows x two bad columns: detection succeeds, location fails
        assert not verify_product(bad, rows, cols)
        assert locate_single_error(bad, rows, cols) is None
        _, applied = correct_single_error(bad, rows, cols)
        assert not applied

    def test_two_errors_in_one_row_not_locatable(self, product):
        a, b, c = product
        rows, cols = encode_row_checksums(a, b), encode_column_checksums(a, b)
        bad = c.copy()
        bad[2, 0] += 1.0
        bad[2, 4] -= 0.5
        # one bad row but two bad columns -> ambiguous, refuse to correct
        assert not verify_product(bad, rows, cols)
        assert locate_single_error(bad, rows, cols) is None

    def test_cancelling_errors_in_one_row_escape_row_checksum(self, product):
        """The documented blind spot: +d and -d in one row cancel in the row
        sum, leaving two bad columns only — detected, never located."""
        a, b, c = product
        rows, cols = encode_row_checksums(a, b), encode_column_checksums(a, b)
        bad = c.copy()
        bad[1, 0] += 2.0
        bad[1, 3] -= 2.0
        assert not verify_product(bad, rows, cols)
        assert locate_single_error(bad, rows, cols) is None
