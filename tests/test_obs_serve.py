"""Live observability endpoint: routes, SSE stream, lifecycle."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.campaigns.store import CampaignStore
from repro.obs import log as obs_log
from repro.obs.log import emit_event, provenance
from repro.obs.metrics import configure, registry
from repro.obs.serve import EventBus, ObsServer

PLAN = {"kind": "fixed", "tests": 8, "seed": 0}


@pytest.fixture(autouse=True)
def _fresh_obs():
    configure(True)
    yield
    configure(None)
    obs_log.reset()


@pytest.fixture()
def server(tmp_path):
    """An ObsServer on an ephemeral port, backed by a populated store."""
    db = tmp_path / "store.sqlite"
    with CampaignStore(db) as store:
        cid = store.ensure_campaign("matmul", {}, PLAN, 32)
        run = store.begin_run(cid)
        store.save_run_metrics(cid, run, {
            "counters": [
                {"name": "engine.ops", "labels": {}, "value": 1234},
            ],
            "gauges": [],
            "histograms": [],
        })
    srv = ObsServer(port=0, store_path=str(db)).start()
    try:
        yield srv, cid
    finally:
        srv.stop()


def _get(url, timeout=5):
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return resp.status, resp.read().decode("utf-8")


class TestRoutes:
    def test_healthz_reports_liveness_and_provenance(self, server):
        srv, _ = server
        assert srv.port != 0  # ephemeral port was bound
        for route in ("/", "/healthz"):
            status, body = _get(srv.url + route)
            payload = json.loads(body)
            assert status == 200
            assert payload["status"] == "ok"
            assert payload["pid"] > 0
            assert payload["repro_version"] == provenance()["repro_version"]

    def test_metrics_serves_live_registry(self, server):
        srv, _ = server
        registry().inc("engine.ops", 7, backend="block")
        status, body = _get(srv.url + "/metrics")
        assert status == 200
        assert 'repro_engine_ops{backend="block"} 7' in body

    def test_metrics_serves_store_backed_campaign(self, server):
        srv, cid = server
        status, body = _get(f"{srv.url}/metrics?campaign={cid}")
        assert status == 200
        assert "repro_engine_ops 1234" in body

    def test_unknown_campaign_is_404(self, server):
        srv, _ = server
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(f"{srv.url}/metrics?campaign=nope")
        assert excinfo.value.code == 404

    def test_campaigns_lists_store_contents(self, server):
        srv, cid = server
        status, body = _get(srv.url + "/campaigns")
        (summary,) = json.loads(body)
        assert summary["campaign_id"] == cid
        assert summary["workload"] == "matmul"
        assert summary["runs"] == 1
        assert "fixed" in summary["plan"]

    def test_unknown_route_is_404(self, server):
        srv, _ = server
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(srv.url + "/nope")
        assert excinfo.value.code == 404

    def test_store_routes_without_store_are_503(self):
        with ObsServer(port=0) as srv:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(srv.url + "/campaigns")
            assert excinfo.value.code == 503
            # the live-registry route still works without a store
            status, _ = _get(srv.url + "/metrics")
            assert status == 200


class TestEvents:
    def test_sse_streams_hello_then_emitted_events(self, server):
        srv, _ = server
        lines = []
        got_two = threading.Event()

        def read_stream():
            req = urllib.request.urlopen(srv.url + "/events", timeout=10)
            for raw in req:
                line = raw.decode("utf-8").rstrip("\n")
                lines.append(line)
                if sum(1 for l in lines if l.startswith("data:")) >= 2:
                    got_two.set()
                    return

        reader = threading.Thread(target=read_stream, daemon=True)
        reader.start()
        # wait for the subscription (the hello event precedes it)
        deadline = threading.Event()
        for _ in range(100):
            if srv.bus.subscriber_count:
                break
            deadline.wait(0.05)
        emit_event({"type": "span", "span": "campaign.shard", "shard": 3})
        assert got_two.wait(timeout=10)
        events = [l.split(": ", 1)[1] for l in lines if l.startswith("event:")]
        assert events[0] == "hello"
        assert events[1] == "span"
        datas = [
            json.loads(l.split(": ", 1)[1])
            for l in lines
            if l.startswith("data:")
        ]
        assert datas[0]["status"] == "ok"
        assert datas[1]["span"] == "campaign.shard"

    def test_stop_unhooks_the_event_sink(self, tmp_path):
        srv = ObsServer(port=0).start()
        srv.stop()
        received = []
        srv.bus.subscribe()  # would receive if the sink were still wired
        emit_event({"type": "span", "span": "late"})
        assert srv.bus.subscriber_count == 1
        q = srv.bus._subscribers[0]
        assert q.empty()


class TestCampaignServeFlag:
    def test_campaign_run_serves_in_process(self, tmp_path, capsys):
        import socket

        from repro.campaigns.cli import main

        sock = socket.socket()
        sock.bind(("127.0.0.1", 0))
        port = sock.getsockname()[1]
        sock.close()
        store = str(tmp_path / "store.sqlite")
        assert main(
            ["campaign", "run", "matmul", "--plan", "fixed:8",
             "--store", store, "--workers", "1", "--serve", str(port)]
        ) == 0
        err = capsys.readouterr().err
        assert f"observability endpoint: http://127.0.0.1:{port}" in err

    def test_env_port_alone_enables_serving(self, tmp_path, capsys,
                                            monkeypatch):
        import socket

        from repro.campaigns.cli import main

        sock = socket.socket()
        sock.bind(("127.0.0.1", 0))
        port = sock.getsockname()[1]
        sock.close()
        monkeypatch.setenv("REPRO_OBS_PORT", str(port))
        store = str(tmp_path / "store.sqlite")
        assert main(
            ["campaign", "run", "matmul", "--plan", "fixed:8",
             "--store", store, "--workers", "1"]
        ) == 0
        err = capsys.readouterr().err
        assert f"observability endpoint: http://127.0.0.1:{port}" in err


class TestEventBus:
    def test_slow_subscriber_drops_instead_of_blocking(self):
        bus = EventBus()
        q = bus.subscribe()
        for i in range(500):  # well past _QUEUE_DEPTH
            bus.publish({"i": i})
        assert q.qsize() <= 256
        assert bus.subscriber_count == 1
        bus.unsubscribe(q)
        assert bus.subscriber_count == 0
