"""Unit tests for IR values, builder, functions, verifier and printer."""

import pytest

from repro.ir import (
    F64,
    I1,
    I64,
    IRBuilder,
    Function,
    Module,
    Opcode,
    VerificationError,
    VOID,
    print_function,
    print_module,
    verify_function,
    verify_module,
)
from repro.ir.instructions import ICmpPredicate, Instruction
from repro.ir.types import pointer_to
from repro.ir.values import Argument, Constant, UndefValue, const_bool, const_float, const_int


class TestValues:
    def test_constant_int_coerced(self):
        c = Constant(I64, 3.7)
        assert c.value == 3

    def test_constant_float_coerced(self):
        c = Constant(F64, 3)
        assert isinstance(c.value, float)

    def test_constant_requires_scalar_type(self):
        with pytest.raises(TypeError):
            Constant(pointer_to(F64), 0)

    def test_const_helpers(self):
        assert const_int(I64, 5).value == 5
        assert const_float(2.5).type is F64
        assert const_bool(True).value == 1

    def test_uids_unique(self):
        a, b = Constant(I64, 1), Constant(I64, 1)
        assert a.uid != b.uid

    def test_undef_short(self):
        assert UndefValue(I64).short() == "undef"

    def test_argument_index(self):
        arg = Argument(F64, "x", 2)
        assert arg.index == 2 and arg.short() == "%x"


def build_sum_function():
    """sum(a: double*, n: i64) -> double, built by hand with the builder."""
    func = Function("sum", [pointer_to(F64), I64], ["a", "n"], F64)
    entry = func.add_block("entry")
    body = func.add_block("loop")
    done = func.add_block("done")
    b = IRBuilder(func)
    b.set_block(entry)
    acc_slot = b.alloca(F64, name="acc")
    i_slot = b.alloca(I64, name="i")
    b.store(0.0, acc_slot)
    b.store(0, i_slot)
    b.br(body)
    b.set_block(body)
    i = b.load(i_slot)
    cond = b.icmp(ICmpPredicate.SLT, i, func.arg_by_name("n"), I64)
    inner = func.add_block("inner")
    b.cond_br(cond, inner, done)
    b.set_block(inner)
    ptr = b.gep(func.arg_by_name("a"), b.load(i_slot))
    acc = b.fadd(b.load(acc_slot), b.load(ptr))
    b.store(acc, acc_slot)
    b.store(b.add(b.load(i_slot), 1), i_slot)
    b.br(body)
    b.set_block(done)
    b.ret(b.load(acc_slot))
    return func


class TestBuilderAndFunction:
    def test_build_and_verify(self):
        func = build_sum_function()
        assert verify_function(func) == []
        assert func.instruction_count > 10

    def test_blocks_unique_labels(self):
        func = Function("f", [], [], VOID)
        a = func.add_block("x")
        b = func.add_block("x")
        assert a.label != b.label

    def test_entry_requires_blocks(self):
        func = Function("f", [], [], VOID)
        with pytest.raises(ValueError):
            _ = func.entry

    def test_arg_by_name_missing(self):
        func = build_sum_function()
        with pytest.raises(KeyError):
            func.arg_by_name("zzz")

    def test_successors(self):
        func = build_sum_function()
        loop = func.get_block("loop")
        labels = {b.label for b in loop.successors()}
        assert labels == {"inner", "done"}

    def test_cannot_append_after_terminator(self):
        func = Function("f", [], [], VOID)
        block = func.add_block("entry")
        b = IRBuilder(func)
        b.set_block(block)
        b.ret()
        with pytest.raises(RuntimeError):
            b.add(1, 2)

    def test_store_type_check(self):
        func = Function("f", [I64], ["x"], VOID)
        block = func.add_block("entry")
        b = IRBuilder(func)
        b.set_block(block)
        with pytest.raises(TypeError):
            b.store(1.0, func.args[0])  # not a pointer

    def test_module_registration(self):
        module = Module("m")
        func = build_sum_function()
        module.add_function(func)
        assert "sum" in module
        assert module.get_function("sum") is func
        with pytest.raises(ValueError):
            module.add_function(func)
        with pytest.raises(KeyError):
            module.get_function("other")
        assert len(module) == 1


class TestVerifier:
    def test_open_block_rejected(self):
        func = Function("f", [], [], VOID)
        func.add_block("entry")
        errors = verify_function(func, raise_on_error=False)
        assert any("terminator" in e for e in errors)

    def test_branch_condition_must_be_i1(self):
        func = Function("f", [I64], ["x"], VOID)
        entry = func.add_block("entry")
        other = func.add_block("other")
        b = IRBuilder(func)
        b.set_block(other)
        b.ret()
        entry.append(
            Instruction(Opcode.BR, VOID, [func.args[0]], targets=[other, other])
        )
        with pytest.raises(VerificationError):
            verify_function(func)

    def test_unknown_call_rejected(self):
        func = Function("f", [], [], VOID)
        entry = func.add_block("entry")
        b = IRBuilder(func)
        b.set_block(entry)
        b.call("not_a_real_function", [], F64)
        b.ret()
        errors = verify_function(func, raise_on_error=False)
        assert any("unknown function" in e for e in errors)

    def test_intrinsic_call_allowed(self):
        func = Function("f", [F64], ["x"], F64)
        entry = func.add_block("entry")
        b = IRBuilder(func)
        b.set_block(entry)
        result = b.call("sqrt", [func.args[0]], F64)
        b.ret(result)
        assert verify_function(func) == []

    def test_ret_value_in_void_function(self):
        func = Function("f", [F64], ["x"], VOID)
        entry = func.add_block("entry")
        b = IRBuilder(func)
        b.set_block(entry)
        b.ret(func.args[0])
        errors = verify_function(func, raise_on_error=False)
        assert any("void" in e for e in errors)

    def test_verify_module_aggregates(self):
        module = Module("m")
        good = build_sum_function()
        module.add_function(good)
        bad = Function("bad", [], [], VOID)
        bad.add_block("entry")
        module.add_function(bad)
        errors = verify_module(module, raise_on_error=False)
        assert errors and all("bad" in e for e in errors)


class TestPrinter:
    def test_print_function_contains_structure(self):
        text = print_function(build_sum_function())
        assert "define double @sum" in text
        assert "icmp slt" in text
        assert "getelementptr" in text
        assert text.strip().endswith("}")

    def test_print_module(self):
        module = Module("demo")
        module.add_function(build_sum_function())
        text = print_module(module)
        assert text.startswith("; module demo")
        assert "@sum" in text
