"""Tests for fault sites, the injectors (deterministic / exhaustive / RFI)
and the aDVF engine, plus trace serialisation."""

import pytest

from repro.core.acceptance import OutcomeClass
from repro.core.advf import AdvfEngine, AnalysisConfig, analyze_workload
from repro.core.exhaustive import ExhaustiveCampaign, rank_by_success_rate
from repro.core.injector import DeterministicFaultInjector
from repro.core.masking import MaskingLevel
from repro.core.patterns import SingleBitModel
from repro.core.participation import ParticipationRole, find_participations
from repro.core.rfi import RandomFaultInjection, required_sample_size
from repro.core.sites import enumerate_fault_sites, iter_site_specs
from repro.tracing.serialize import load_trace, save_trace, trace_from_jsonl, trace_to_jsonl
from repro.vm.faults import FaultSpec, FaultTarget


# --------------------------------------------------------------------- #
# fault sites
# --------------------------------------------------------------------- #
class TestFaultSites:
    def test_enumeration_counts(self, lu_trace):
        sites = enumerate_fault_sites(lu_trace, "sum")
        parts = find_participations(lu_trace, "sum")
        assert len(sites) == 64 * len(parts)

    def test_bit_stride_scales_down(self, lu_trace):
        full = enumerate_fault_sites(lu_trace, "sum")
        strided = enumerate_fault_sites(lu_trace, "sum", bit_stride=16)
        assert len(strided) == len(full) // 16

    def test_invalid_stride(self, lu_trace):
        with pytest.raises(ValueError):
            enumerate_fault_sites(lu_trace, "sum", bit_stride=0)

    def test_site_to_spec_roles(self, lu_trace):
        sites = enumerate_fault_sites(lu_trace, "sum", bit_stride=32)
        specs = list(iter_site_specs(sites))
        assert len(specs) == len(sites)
        targets = {s.target for s in specs}
        assert FaultTarget.OPERAND in targets
        assert FaultTarget.STORE_DEST_OLD in targets

    def test_fault_spec_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(dynamic_id=-1, bit=0)
        with pytest.raises(ValueError):
            FaultSpec(dynamic_id=0, bit=-2)
        spec = FaultSpec(dynamic_id=3, bit=7, operand_index=1)
        assert "bit 7" in spec.describe()


# --------------------------------------------------------------------- #
# deterministic injector
# --------------------------------------------------------------------- #
class TestDeterministicInjector:
    def test_golden_is_cached(self, lu_workload):
        injector = DeterministicFaultInjector(lu_workload)
        assert injector.golden is injector.golden

    def test_inject_classifies(self, lu_workload, lu_trace):
        injector = DeterministicFaultInjector(lu_workload)
        sites = enumerate_fault_sites(lu_trace, "u", bit_stride=8)
        results = injector.inject_many([sites[0].to_spec(), sites[-1].to_spec()])
        assert len(results) == 2
        assert all(isinstance(r.outcome, OutcomeClass) for r in results)
        histogram = injector.outcome_histogram(results)
        assert sum(histogram.values()) == 2

    def test_high_exponent_flip_not_masked(self, lu_workload, lu_trace):
        """Flipping a high exponent bit of a consumed u element must not be
        silently reported as identical."""
        parts = [
            p
            for p in find_participations(lu_trace, "u")
            if p.role is ParticipationRole.CONSUMED
        ]
        injector = DeterministicFaultInjector(lu_workload)
        spec = FaultSpec(
            dynamic_id=parts[0].event_id,
            bit=62,
            operand_index=parts[0].operand_index,
        )
        result = injector.inject(spec)
        assert result.outcome in (
            OutcomeClass.UNACCEPTABLE,
            OutcomeClass.CRASH,
            OutcomeClass.HANG,
            OutcomeClass.ACCEPTABLE,
        )
        assert result.outcome is not OutcomeClass.IDENTICAL

    def test_determinism(self, lu_workload, lu_trace):
        parts = find_participations(lu_trace, "u")
        spec = FaultSpec(
            dynamic_id=parts[0].event_id, bit=40, operand_index=max(parts[0].operand_index, 0)
        )
        injector = DeterministicFaultInjector(lu_workload)
        assert injector.inject(spec).outcome is injector.inject(spec).outcome


# --------------------------------------------------------------------- #
# exhaustive and random fault injection
# --------------------------------------------------------------------- #
class TestCampaigns:
    def test_exhaustive_small(self, lulesh_workload):
        trace = lulesh_workload.traced_run().trace
        campaign = ExhaustiveCampaign(
            lulesh_workload, bit_stride=16, max_injections=40
        )
        result = campaign.run(trace, "m_elemBC")
        assert 0.0 <= result.success_rate <= 1.0
        assert result.sites_injected <= 40
        assert result.sites_injected <= result.sites_total
        assert "success rate" in result.describe()

    def test_exhaustive_ranking(self, lulesh_workload):
        trace = lulesh_workload.traced_run().trace
        campaign = ExhaustiveCampaign(
            lulesh_workload, bit_stride=16, max_injections=30
        )
        results = campaign.run_many(trace, ["m_delv_zeta", "m_elemBC"])
        ranking = rank_by_success_rate(results)
        assert set(ranking) == {"m_delv_zeta", "m_elemBC"}

    def test_rfi_reproducible_with_seed(self, lulesh_workload):
        trace = lulesh_workload.traced_run().trace
        rfi = RandomFaultInjection(lulesh_workload, seed=7)
        first = rfi.run(trace, "m_delv_zeta", tests=12)
        second = RandomFaultInjection(lulesh_workload, seed=7).run(
            trace, "m_delv_zeta", tests=12
        )
        assert first.success_rate == second.success_rate
        assert 0.0 <= first.margin_of_error <= 1.0
        low, high = first.interval()
        assert 0.0 <= low <= high <= 1.0

    def test_rfi_requires_positive_tests(self, lulesh_workload):
        trace = lulesh_workload.traced_run().trace
        rfi = RandomFaultInjection(lulesh_workload)
        with pytest.raises(ValueError):
            rfi.run(trace, "m_delv_zeta", tests=0)

    def test_required_sample_size(self):
        assert required_sample_size(10**12, confidence=0.95, error_margin=0.05) == pytest.approx(
            385, abs=2
        )
        assert required_sample_size(100, confidence=0.95, error_margin=0.05) <= 100
        assert required_sample_size(0) == 0
        with pytest.raises(ValueError):
            required_sample_size(1000, confidence=0.42)


# --------------------------------------------------------------------- #
# aDVF engine
# --------------------------------------------------------------------- #
class TestAdvfEngine:
    def test_lu_sum_matches_paper_shape(self, fast_config):
        from repro.workloads.lu import LUWorkload

        report = AdvfEngine(LUWorkload(n=8, niter=1), fast_config).analyze_object("sum")
        result = report.result
        # Eq. 2 structure: the aDVF of sum sits strictly between 0 and 1 and
        # is dominated by operation-level masking (assignments in loops 1/3).
        assert 0.2 < result.value < 0.9
        assert result.participations > 0
        assert result.by_level.get(MaskingLevel.OPERATION, 0.0) > 0.0
        assert result.masked_events == pytest.approx(
            sum(result.by_level.values()), rel=1e-6
        )

    def test_advf_in_unit_interval_and_deterministic(self, lulesh_workload, fast_config):
        engine = AdvfEngine(lulesh_workload, fast_config)
        first = engine.analyze_object("m_elemBC").result.value
        second = AdvfEngine(lulesh_workload, fast_config).analyze_object(
            "m_elemBC"
        ).result.value
        assert 0.0 <= first <= 1.0
        assert first == pytest.approx(second)

    def test_breakdowns_sum_to_advf(self, lulesh_workload, fast_config):
        report = AdvfEngine(lulesh_workload, fast_config).analyze_object("m_delv_zeta")
        result = report.result
        level_sum = sum(
            result.level_fraction(level) for level in MaskingLevel
        )
        assert level_sum == pytest.approx(result.value, rel=1e-6, abs=1e-9)

    def test_cg_ranking_r_above_colidx(self, cg_workload, fast_config):
        report = AdvfEngine(cg_workload, fast_config).analyze(["r", "colidx"])
        assert report.advf["r"].value > report.advf["colidx"].value
        assert report.ranking()[0] == "r"

    def test_analyze_workload_by_name(self, fast_config):
        report = analyze_workload(
            "lulesh", targets=["m_elemBC"], config=fast_config, num_elem=8
        )
        assert report.workload == "lulesh"
        assert set(report.objects) == {"m_elemBC"}

    def test_injection_disabled_still_bounded(self, lulesh_workload):
        config = AnalysisConfig(
            use_injection=False,
            error_model=SingleBitModel(bit_stride=8),
            equivalence_samples=1,
        )
        report = AdvfEngine(lulesh_workload, config).analyze_object("m_delv_zeta")
        assert report.injections == 0
        assert 0.0 <= report.result.value <= 1.0

    def test_injection_budget_respected(self, cg_workload):
        config = AnalysisConfig(
            max_injections=5,
            error_model=SingleBitModel(bit_stride=8),
            equivalence_samples=1,
            injection_samples_per_class=1,
        )
        report = AdvfEngine(cg_workload, config).analyze_object("colidx")
        assert report.injections <= 5


# --------------------------------------------------------------------- #
# trace serialisation
# --------------------------------------------------------------------- #
class TestTraceSerialization:
    def test_jsonl_roundtrip(self, accumulate_trace):
        trace = accumulate_trace["trace"]
        text = trace_to_jsonl(trace)
        restored = trace_from_jsonl(text)
        assert len(restored) == len(trace)
        for original, copy in zip(trace, restored):
            assert original.opcode is copy.opcode
            assert original.operand_values == copy.operand_values
            assert original.object_name == copy.object_name
            assert original.operand_producers == copy.operand_producers

    def test_file_roundtrip(self, tmp_path, accumulate_trace):
        trace = accumulate_trace["trace"]
        path = tmp_path / "trace.jsonl"
        save_trace(trace, path)
        restored = load_trace(path)
        assert len(restored) == len(trace)
        assert restored[0].function == trace[0].function
