"""Unit tests for the MOARD model pieces: acceptance, patterns, participation,
masking, propagation and error equivalence."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.acceptance import (
    CompositeCriterion,
    ExactMatch,
    NormRelativeTolerance,
    OutcomeClass,
    RelativeTolerance,
    ScalarResultCheck,
    classify_outcome,
)
from repro.core.equivalence import EquivalenceCache
from repro.core.masking import (
    MaskingCategory,
    MaskingLevel,
    OperationMaskingAnalyzer,
)
from repro.core.participation import (
    ParticipationRole,
    find_participations,
    is_read_modify_write,
    participation_counts_by_role,
)
from repro.core.patterns import (
    BitClass,
    ErrorPattern,
    MultiBitModel,
    SingleBitModel,
    classify_bit,
    patterns_by_class,
)
from repro.core.propagation import PropagationAnalyzer
from repro.core.reexec import ReexecStatus, reevaluate
from repro.ir.types import F32, F64, I32, I64
from repro.ir.instructions import Opcode


# --------------------------------------------------------------------- #
# acceptance
# --------------------------------------------------------------------- #
class TestAcceptance:
    def _outputs(self, values):
        return {"x": np.asarray(values, dtype=float)}

    def test_exact_match(self):
        criterion = ExactMatch()
        golden = self._outputs([1.0, 2.0])
        assert criterion.acceptable(golden, self._outputs([1.0, 2.0]))
        assert not criterion.acceptable(golden, self._outputs([1.0, 2.0 + 1e-12]))

    def test_identical_handles_nan(self):
        criterion = ExactMatch()
        golden = self._outputs([np.nan, 1.0])
        assert criterion.identical(golden, self._outputs([np.nan, 1.0]))

    def test_relative_tolerance(self):
        criterion = RelativeTolerance(rtol=1e-3)
        golden = self._outputs([1.0, 100.0])
        assert criterion.acceptable(golden, self._outputs([1.0000001, 100.01]))
        assert not criterion.acceptable(golden, self._outputs([1.5, 100.0]))

    def test_relative_tolerance_rejects_nan(self):
        criterion = RelativeTolerance()
        assert not criterion.acceptable(self._outputs([1.0]), self._outputs([np.nan]))

    def test_norm_tolerance(self):
        criterion = NormRelativeTolerance(1e-2)
        golden = self._outputs([1.0, 1.0, 1.0, 1.0])
        assert criterion.acceptable(golden, self._outputs([1.001, 0.999, 1.0, 1.0]))
        assert not criterion.acceptable(golden, self._outputs([2.0, 1.0, 1.0, 1.0]))
        assert not criterion.acceptable(golden, self._outputs([np.inf, 1.0, 1.0, 1.0]))

    def test_norm_tolerance_integer_objects_exact(self):
        criterion = NormRelativeTolerance(1.0)
        golden = {"i": np.array([1, 2, 3])}
        assert criterion.acceptable(golden, {"i": np.array([1, 2, 3])})
        assert not criterion.acceptable(golden, {"i": np.array([1, 2, 4])})

    def test_composite(self):
        criterion = CompositeCriterion([RelativeTolerance(), NormRelativeTolerance(1e-6)])
        golden = self._outputs([1.0, 2.0])
        assert criterion.acceptable(golden, self._outputs([1.0, 2.0]))
        assert "AND" in criterion.describe()
        with pytest.raises(ValueError):
            CompositeCriterion([])

    def test_negative_tolerances_rejected(self):
        with pytest.raises(ValueError):
            RelativeTolerance(rtol=-1.0)
        with pytest.raises(ValueError):
            NormRelativeTolerance(-0.5)

    def test_classify_outcome_buckets(self):
        criterion = RelativeTolerance(rtol=1e-3)
        golden = self._outputs([1.0, 2.0])
        assert classify_outcome(criterion, golden, golden) is OutcomeClass.IDENTICAL
        assert (
            classify_outcome(criterion, golden, self._outputs([1.0, 2.0005]))
            is OutcomeClass.ACCEPTABLE
        )
        assert (
            classify_outcome(criterion, golden, self._outputs([9.0, 2.0]))
            is OutcomeClass.UNACCEPTABLE
        )
        assert classify_outcome(criterion, golden, {}, crashed=True) is OutcomeClass.CRASH
        assert classify_outcome(criterion, golden, {}, hung=True) is OutcomeClass.HANG

    def test_classify_outcome_return_value(self):
        criterion = RelativeTolerance()
        golden = self._outputs([1.0])
        outcome = classify_outcome(
            criterion,
            golden,
            golden,
            golden_return=1.0,
            faulty_return=250.0,
            return_check=ScalarResultCheck(),
        )
        assert outcome is OutcomeClass.UNACCEPTABLE

    def test_outcome_success_property(self):
        assert OutcomeClass.IDENTICAL.is_success
        assert OutcomeClass.ACCEPTABLE.is_success
        assert not OutcomeClass.CRASH.is_success
        assert not OutcomeClass.UNACCEPTABLE.is_success


# --------------------------------------------------------------------- #
# error patterns
# --------------------------------------------------------------------- #
class TestPatterns:
    def test_single_bit_model_counts(self):
        model = SingleBitModel()
        assert model.pattern_count(F64) == 64
        assert model.pattern_count(I32) == 32

    def test_bit_stride(self):
        model = SingleBitModel(bit_stride=8)
        assert model.pattern_count(F64) == 8

    def test_multibit_model(self):
        model = MultiBitModel(separation=4)
        patterns = model.patterns_for(I32)
        assert all(len(p.bits) == 2 and p.bits[1] - p.bits[0] == 4 for p in patterns)

    def test_invalid_models(self):
        with pytest.raises(ValueError):
            SingleBitModel(bit_stride=0)
        with pytest.raises(ValueError):
            MultiBitModel(separation=0)

    def test_pattern_validation(self):
        with pytest.raises(ValueError):
            ErrorPattern(())
        with pytest.raises(ValueError):
            ErrorPattern((1, 1))

    def test_pattern_apply(self):
        assert ErrorPattern((0,)).apply(0, I64) == 1
        assert ErrorPattern((63,)).apply(1.0, F64) == -1.0
        assert ErrorPattern((0, 1)).apply(0, I64) == 3
        with pytest.raises(ValueError):
            ErrorPattern((40,)).apply(1, I32)

    @given(st.floats(allow_nan=False, allow_infinity=False), st.integers(0, 63))
    @settings(max_examples=50)
    def test_single_bit_apply_is_involution(self, value, bit):
        pattern = ErrorPattern((bit,))
        assert pattern.apply(pattern.apply(value, F64), F64) == value

    def test_bit_classes_f64(self):
        assert classify_bit(63, F64) is BitClass.SIGN
        assert classify_bit(55, F64) is BitClass.EXPONENT
        assert classify_bit(40, F64) is BitClass.MANTISSA_HIGH
        assert classify_bit(3, F64) is BitClass.MANTISSA_LOW

    def test_bit_classes_int(self):
        assert classify_bit(60, I64) is BitClass.INT_HIGH
        assert classify_bit(30, I64) is BitClass.INT_MID
        assert classify_bit(2, I64) is BitClass.INT_LOW

    def test_patterns_by_class(self):
        pairs = patterns_by_class(SingleBitModel(), F32)
        assert len(pairs) == 32
        assert pairs[31][1] is BitClass.SIGN


# --------------------------------------------------------------------- #
# participation discovery
# --------------------------------------------------------------------- #
class TestParticipation:
    def test_accumulate_participations(self, accumulate_trace):
        trace = accumulate_trace["trace"]
        parts = find_participations(trace, "dst")
        roles = participation_counts_by_role(parts)
        # dst[i] = 0.0 (store), dst[i] = dst[i] + ... (store + consumed add),
        # total = total + dst[i] (consumed add)
        assert roles[ParticipationRole.STORE_DEST] == 10
        assert roles[ParticipationRole.CONSUMED] == 10

    def test_src_participations_are_consumed_only(self, accumulate_trace):
        trace = accumulate_trace["trace"]
        parts = find_participations(trace, "src")
        assert parts and all(p.role is ParticipationRole.CONSUMED for p in parts)
        # src[i] * src[i]: the same element is referenced twice per iteration
        assert len(parts) == 10

    def test_loads_not_counted_directly(self, accumulate_trace):
        trace = accumulate_trace["trace"]
        parts = find_participations(trace, "src")
        assert all(trace[p.event_id].opcode is not Opcode.LOAD for p in parts)

    def test_index_object_participations(self, gather_trace):
        trace = gather_trace["trace"]
        parts = find_participations(trace, "idx")
        # each idx[i] value feeds exactly one gep
        assert len(parts) == 4
        assert all(trace[p.event_id].opcode is Opcode.GEP for p in parts)

    def test_max_participations_subsampling(self, accumulate_trace):
        trace = accumulate_trace["trace"]
        parts = find_participations(trace, "dst", max_participations=5)
        assert len(parts) == 5

    def test_read_modify_write_detection(self, accumulate_trace):
        trace = accumulate_trace["trace"]
        stores = [
            p for p in find_participations(trace, "dst")
            if p.role is ParticipationRole.STORE_DEST
        ]
        rmw_flags = [is_read_modify_write(trace, trace[p.event_id]) for p in stores]
        # half of the stores are `dst[i] = 0.0` (not RMW), half are accumulations
        assert rmw_flags.count(True) == 5
        assert rmw_flags.count(False) == 5


# --------------------------------------------------------------------- #
# re-execution helper
# --------------------------------------------------------------------- #
class TestReexec:
    def test_reevaluate_binary(self, accumulate_trace):
        trace = accumulate_trace["trace"]
        fmul = next(e for e in trace if e.opcode is Opcode.FMUL)
        out = reevaluate(fmul, [2.0, 3.0])
        assert out.status is ReexecStatus.VALUE and out.value == 6.0

    def test_reevaluate_branch_divergence(self, accumulate_trace):
        trace = accumulate_trace["trace"]
        branch = next(e for e in trace if e.is_branch and e.operand_values)
        flipped = [1 - branch.operand_values[0]]
        assert reevaluate(branch, flipped).status is ReexecStatus.DIVERGED

    def test_reevaluate_store_address_change(self, accumulate_trace):
        trace = accumulate_trace["trace"]
        store = next(e for e in trace if e.is_store)
        values = list(store.operand_values)
        values[1] = values[1] + 8
        assert reevaluate(store, values).status is ReexecStatus.DIVERGED

    def test_reevaluate_division_trap(self, accumulate_trace):
        trace = accumulate_trace["trace"]
        add = next(e for e in trace if e.opcode is Opcode.ADD)
        # fabricate an sdiv-like trap through eval_binary path is not possible
        # on an add; instead check a NaN-preserving identity comparison
        out = reevaluate(add, list(add.operand_values))
        assert out.status is ReexecStatus.VALUE
        assert out.value == add.result_value


# --------------------------------------------------------------------- #
# operation-level masking
# --------------------------------------------------------------------- #
class TestMasking:
    def test_plain_store_masks(self, accumulate_trace):
        trace = accumulate_trace["trace"]
        analyzer = OperationMaskingAnalyzer(trace)
        parts = find_participations(trace, "dst")
        plain_store = next(
            p
            for p in parts
            if p.role is ParticipationRole.STORE_DEST
            and not is_read_modify_write(trace, trace[p.event_id])
        )
        verdict = analyzer.analyze(plain_store, ErrorPattern((13,)))
        assert verdict.masked is True
        assert verdict.category is MaskingCategory.OVERWRITE
        assert verdict.level is MaskingLevel.OPERATION

    def test_rmw_store_does_not_mask(self, accumulate_trace):
        trace = accumulate_trace["trace"]
        analyzer = OperationMaskingAnalyzer(trace)
        parts = find_participations(trace, "dst")
        rmw_store = next(
            p
            for p in parts
            if p.role is ParticipationRole.STORE_DEST
            and is_read_modify_write(trace, trace[p.event_id])
        )
        verdict = analyzer.analyze(rmw_store, ErrorPattern((13,)))
        assert verdict.masked is False

    def test_gep_index_corruption_propagates(self, gather_trace):
        trace = gather_trace["trace"]
        analyzer = OperationMaskingAnalyzer(trace)
        part = find_participations(trace, "idx")[0]
        verdict = analyzer.analyze(part, ErrorPattern((1,)))
        assert verdict.masked is None
        assert verdict.needs_propagation or verdict.needs_injection

    def test_consumed_low_bit_overshadow_candidate(self, lu_trace):
        analyzer = OperationMaskingAnalyzer(lu_trace)
        parts = [
            p
            for p in find_participations(lu_trace, "sum")
            if p.role is ParticipationRole.CONSUMED
            and lu_trace[p.event_id].opcode is Opcode.FADD
        ]
        assert parts, "sum must be consumed by an addition (statement B)"
        verdict = analyzer.analyze(parts[0], ErrorPattern((0,)))
        # flipping the least-significant mantissa bit of sum[m] either leaves
        # the addition bit-identical or is an overshadowing candidate
        assert verdict.masked is True or verdict.overshadow_candidate


# --------------------------------------------------------------------- #
# propagation
# --------------------------------------------------------------------- #
class TestPropagation:
    def test_dead_corruption_is_masked(self, accumulate_trace):
        """A corrupted value never used again is masked by propagation."""
        trace = accumulate_trace["trace"]
        analyzer = PropagationAnalyzer(trace, k=50, output_objects={"dst"})
        parts = find_participations(trace, "src")
        # src[i] consumed by the fmul of the LAST iteration: the product only
        # feeds dst[i] and total, both still live, so expect not masked;
        # use a high bit to guarantee a visible change.
        verdict = analyzer.analyze(parts[-1], ErrorPattern((62,)))
        assert verdict.masked in (False, None)

    def test_corrupted_store_overwritten_is_masked(self):
        """dst[i] = corrupt; dst[i] = clean  ==> propagation masks the error."""
        from repro.frontend import compile_kernel
        from repro.tracing import Trace
        from repro.vm import Interpreter, Memory

        f = compile_kernel(k_overwrite_chain)
        memory = Memory()
        src = memory.allocate("src", F64, 3, initial=[1.0, 2.0, 3.0])
        dst = memory.allocate("dst", F64, 3)
        trace = Trace()
        Interpreter(f.metadata["module"], memory, trace=trace).run(
            "k_overwrite_chain", {"src": src, "dst": dst, "n": 3}
        )
        analyzer = PropagationAnalyzer(trace, k=50, output_objects={"dst"})
        parts = [
            p
            for p in find_participations(trace, "src")
            if trace[p.event_id].is_store
        ]
        assert parts
        verdict = analyzer.analyze(parts[0], ErrorPattern((60,)))
        assert verdict.masked is True
        assert verdict.category is MaskingCategory.OVERWRITE

    def test_corrupted_load_address_diverges(self, gather_trace):
        trace = gather_trace["trace"]
        analyzer = PropagationAnalyzer(trace, k=50, output_objects={"dst"})
        part = find_participations(trace, "idx")[0]
        verdict = analyzer.analyze(part, ErrorPattern((1,)))
        assert verdict.masked is None
        assert verdict.diverged

    def test_window_is_respected(self, lu_trace):
        analyzer = PropagationAnalyzer(lu_trace, k=5, output_objects={"u", "sum"})
        parts = [
            p
            for p in find_participations(lu_trace, "rsd")
            if p.role is ParticipationRole.CONSUMED
        ]
        verdict = analyzer.analyze(parts[0], ErrorPattern((62,)))
        assert verdict.steps_analyzed <= 5


# --------------------------------------------------------------------- #
# equivalence cache
# --------------------------------------------------------------------- #
class TestEquivalence:
    def test_sampling_and_reuse(self):
        cache = EquivalenceCache(samples_per_class=2)
        key = (1, "consumed", 0, BitClass.MANTISSA_LOW)
        assert cache.should_analyze(key)
        cache.record(key, 1.0, MaskingLevel.OPERATION, MaskingCategory.OVERWRITE)
        assert cache.should_analyze(key)
        cache.record(key, 0.0, MaskingLevel.OPERATION, MaskingCategory.OVERWRITE)
        assert not cache.should_analyze(key)
        masked, level, category = cache.estimate(key)
        assert masked == pytest.approx(0.5)
        assert level is MaskingLevel.OPERATION
        assert cache.analyses_performed == 2
        assert cache.analyses_reused == 1
        assert cache.coverage_summary()["classes"] == 1


def k_overwrite_chain(src: "double*", dst: "double*", n: "i64") -> "void":
    for i in range(n):
        dst[i] = src[i]
        dst[i] = 1.0
