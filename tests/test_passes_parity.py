"""Parity oracle: the vectorized columnar pipeline vs the legacy scans.

The acceptance bar of the columnar refactor is *bit identity*: the
vectorized participation pass, the bulk operation-level passes and the
tail-accelerated aDVF aggregation must reproduce the legacy per-event
pipeline exactly — same participation lists, same ``MaskingVerdict`` per
(participation, pattern), and byte-identical aDVF numbers (value,
per-level and per-category breakdowns, the Figs. 4–5 tables) on every
registered workload.
"""

from __future__ import annotations

import pytest

import repro.tracing.columnar as columnar_module
from repro.core.advf import AdvfEngine, AnalysisConfig
from repro.core.masking import OperationMaskingAnalyzer
from repro.core.participation import find_participations
from repro.core.passes import OperationPasses
from repro.core.patterns import SingleBitModel
from repro.core.replay import ReplayContext
from repro.core.sites import enumerate_fault_sites
from repro.tracing import ColumnarTrace
from repro.workloads.registry import get_workload, workload_names

#: Reduced problem sizes so the all-workload parity sweep stays fast.
SMALL_KWARGS = {
    "amg": {"n": 6, "m": 2},
    "cg": {"n": 10, "cgitmax": 2},
    "lu": {"n": 8, "niter": 1},
    "lulesh": {"num_elem": 12},
    "matmul": {"n": 5},
    "matmul_abft": {"n": 5},
    "mg": {"nf": 9, "ncycles": 1},
    "pf": {"nparticles": 8, "nframes": 1},
    "pf_abft": {"nparticles": 8, "nframes": 1},
}

ALL_WORKLOADS = workload_names()


def _small(name):
    return get_workload(name, **SMALL_KWARGS.get(name, {}))


@pytest.fixture(scope="module")
def traced():
    """(workload, legacy Trace, ColumnarTrace) per registered workload."""
    out = {}
    for name in ALL_WORKLOADS:
        workload = _small(name)
        out[name] = (
            workload,
            workload.traced_run().trace,
            workload.traced_run(columnar=True).trace,
        )
    return out


# --------------------------------------------------------------------- #
# participation / site parity
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("name", ALL_WORKLOADS)
def test_participations_match_verbatim(traced, name):
    workload, legacy, columnar = traced[name]
    for object_name in workload.target_objects:
        scan = find_participations(legacy, object_name)
        vectorized = find_participations(columnar, object_name)
        assert scan == vectorized
        # subsampling applies the same stride to both implementations
        assert find_participations(legacy, object_name, max_participations=23) == (
            find_participations(columnar, object_name, max_participations=23)
        )


@pytest.mark.parametrize("name", ["matmul", "cg"])
def test_fault_sites_match(traced, name):
    workload, legacy, columnar = traced[name]
    for object_name in workload.target_objects:
        assert enumerate_fault_sites(legacy, object_name, bit_stride=7) == (
            enumerate_fault_sites(columnar, object_name, bit_stride=7)
        )


# --------------------------------------------------------------------- #
# operation-level verdict parity (bulk passes vs the legacy analyzer)
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("name", ALL_WORKLOADS)
def test_masking_verdicts_match_verdict_for_verdict(traced, name):
    workload, legacy, columnar = traced[name]
    oracle = OperationMaskingAnalyzer(legacy)
    passes = OperationPasses(columnar, OperationMaskingAnalyzer(columnar))
    model = SingleBitModel(bit_stride=5)
    for object_name in workload.target_objects:
        participations = find_participations(
            legacy, object_name, max_participations=60
        )
        passes.prepare(participations)
        for participation in participations:
            for pattern in model.patterns_for(participation.value_type):
                expected = oracle.analyze(participation, pattern)
                assert passes.verdict(participation, pattern) == expected, (
                    name, object_name, participation, pattern
                )


# --------------------------------------------------------------------- #
# end-to-end aDVF bit identity
# --------------------------------------------------------------------- #
def _advf(workload, pipeline, **overrides):
    config = AnalysisConfig(pipeline=pipeline, **overrides)
    return AdvfEngine(workload, config).analyze()


def _assert_reports_identical(a, b):
    assert a.objects.keys() == b.objects.keys()
    for object_name in a.objects:
        assert a.objects[object_name].to_dict() == b.objects[object_name].to_dict()


@pytest.mark.parametrize("name", ALL_WORKLOADS)
def test_advf_bit_identical_across_pipelines(name):
    """Figs. 4–5 numbers (values + breakdowns) match to the last bit."""
    legacy = _advf(_small(name), "legacy", use_injection=False)
    columnar = _advf(_small(name), "columnar", use_injection=False)
    _assert_reports_identical(legacy, columnar)


@pytest.mark.parametrize("name", ["matmul", "cg"])
def test_advf_bit_identical_with_injection(name):
    legacy = _advf(
        _small(name), "legacy", max_injections=40,
        error_model=SingleBitModel(bit_stride=8),
    )
    columnar = _advf(
        _small(name), "columnar", max_injections=40,
        error_model=SingleBitModel(bit_stride=8),
    )
    _assert_reports_identical(legacy, columnar)


def test_advf_bit_identical_in_pure_python_fallback(monkeypatch):
    monkeypatch.setattr(columnar_module, "_np", None)
    legacy = _advf(_small("matmul"), "legacy", use_injection=False)
    fallback = _advf(_small("matmul"), "columnar", use_injection=False)
    _assert_reports_identical(legacy, fallback)


def test_unknown_pipeline_rejected():
    with pytest.raises(ValueError, match="pipeline"):
        AdvfEngine(_small("matmul"), AnalysisConfig(pipeline="nope"))


# --------------------------------------------------------------------- #
# shared golden run: replay-context sink == dedicated traced run
# --------------------------------------------------------------------- #
def test_replay_context_sink_records_the_golden_trace():
    workload = _small("matmul")
    sink = ColumnarTrace()
    context = ReplayContext(workload, sink=sink)
    assert context.golden_trace is sink
    reference = workload.traced_run().trace
    assert len(sink) == len(reference)
    fields = ("opcode", "operand_values", "result_value", "address",
              "object_name", "element_index", "static_uid")
    for a, b in zip(reference, sink):
        for field in fields:
            assert getattr(a, field) == getattr(b, field), (a.dynamic_id, field)
