"""Bench-regression watchdog: comparison algebra, history, check driver."""

from __future__ import annotations

import json

import pytest

from repro.obs import bench as obs_bench
from repro.obs.bench import (
    BENCHES,
    BenchSpec,
    MetricSpec,
    append_history,
    check_benches,
    compare_runs,
    format_reports,
    history_entry,
    resolve_metrics,
)

SPEEDUPS = (
    MetricSpec("workloads.*.speedup", "higher"),
    MetricSpec("geomean_speedup", "higher"),
)


def _payload(a=10.0, b=4.0, geo=6.3):
    return {
        "workloads": {
            "matmul": {"speedup": a, "steps": 1000},
            "cg": {"speedup": b},
        },
        "geomean_speedup": geo,
        "note": "not a number",
    }


class TestResolveMetrics:
    def test_wildcards_fan_out_sorted_and_numeric_only(self):
        resolved = resolve_metrics(_payload(), SPEEDUPS)
        # wildcard fan-out is sorted within each spec, specs keep their order
        assert list(resolved) == [
            "workloads.cg.speedup", "workloads.matmul.speedup",
            "geomean_speedup",
        ]
        assert resolved["workloads.matmul.speedup"] == (10.0, "higher")

    def test_missing_paths_resolve_to_nothing(self):
        resolved = resolve_metrics({"other": 1}, SPEEDUPS)
        assert resolved == {}

    def test_booleans_are_not_metrics(self):
        resolved = resolve_metrics(
            {"flag": True}, (MetricSpec("flag", "higher"),)
        )
        assert resolved == {}


class TestCompareRuns:
    def test_identical_runs_pass(self):
        report = compare_runs("x", _payload(), _payload(), SPEEDUPS)
        assert not report.regressed
        assert report.geomean_ratio == pytest.approx(1.0)
        assert all(f.ratio == pytest.approx(1.0) for f in report.findings)

    def test_higher_is_better_regression_trips(self):
        fresh = _payload(a=7.0)  # 30% slower than baseline 10.0
        report = compare_runs("x", _payload(), fresh, SPEEDUPS, tolerance=0.2)
        bad = {f.metric for f in report.findings if f.regressed}
        assert bad == {"workloads.matmul.speedup"}
        assert report.regressed

    def test_tolerance_absorbs_small_slips(self):
        fresh = _payload(a=9.0)  # 10% down, inside 20% tolerance
        report = compare_runs("x", _payload(), fresh, SPEEDUPS, tolerance=0.2)
        assert not report.regressed

    def test_lower_is_better_normalizes_inverted(self):
        metrics = (MetricSpec("geomean_overhead", "lower"),)
        base, fresh = {"geomean_overhead": 1.0}, {"geomean_overhead": 1.5}
        report = compare_runs("obs", base, fresh, metrics, tolerance=0.2)
        (finding,) = report.findings
        assert finding.ratio == pytest.approx(1.0 / 1.5)
        assert finding.regressed and report.regressed
        # an improvement (lower overhead) scores > 1
        better = compare_runs(
            "obs", base, {"geomean_overhead": 0.8}, metrics
        )
        assert better.findings[0].ratio == pytest.approx(1.25)
        assert not better.regressed

    def test_geomean_catches_coordinated_slips(self):
        # every metric slips 15% — individually inside a 17% tolerance,
        # but so is the geomean, which sits at the same 0.85
        fresh = _payload(a=8.5, b=3.4, geo=5.355)
        report = compare_runs("x", _payload(), fresh, SPEEDUPS, tolerance=0.1)
        assert report.geomean_ratio == pytest.approx(0.85, rel=1e-3)
        assert report.geomean_regressed

    def test_comparison_uses_intersection(self):
        fresh = _payload()
        del fresh["workloads"]["cg"]
        report = compare_runs("x", _payload(), fresh, SPEEDUPS)
        assert {f.metric for f in report.findings} == {
            "geomean_speedup", "workloads.matmul.speedup",
        }

    def test_nonpositive_values_skipped(self):
        report = compare_runs(
            "x", {"v": 0.0}, {"v": 5.0}, (MetricSpec("v", "higher"),)
        )
        assert report.findings == []
        assert not report.regressed


class TestHistory:
    def test_append_preserves_payload_and_grows_history(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text(json.dumps({"geomean_speedup": 6.3}))
        report = compare_runs("x", _payload(), _payload(), SPEEDUPS)
        append_history(path, history_entry(report, _payload()))
        saved = json.loads(path.read_text())
        assert saved["geomean_speedup"] == 6.3  # measurements untouched
        (entry,) = saved["history"]
        assert entry["regressed"] is False
        assert entry["metrics"]["workloads.matmul.speedup"] == 10.0
        assert entry["recorded_at"] > 0
        assert "repro_version" in entry
        # a second check keeps appending
        append_history(path, history_entry(report, _payload()))
        assert len(json.loads(path.read_text())["history"]) == 2

    def test_update_replaces_measurements_but_keeps_history(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text(json.dumps({"geomean_speedup": 6.3, "history": [
            {"recorded_at": 1.0},
        ]}))
        fresh = _payload(geo=7.0)
        report = compare_runs("x", _payload(), fresh, SPEEDUPS)
        append_history(path, history_entry(report, fresh), fresh=fresh)
        saved = json.loads(path.read_text())
        assert saved["geomean_speedup"] == 7.0
        assert len(saved["history"]) == 2
        assert saved["history"][0] == {"recorded_at": 1.0}
        assert "provenance" in saved


class TestCheckBenches:
    @pytest.fixture()
    def fake_bench(self, tmp_path, monkeypatch):
        """One stub benchmark with a committed baseline and a fake runner."""
        baseline = _payload()
        (tmp_path / "BENCH_fake.json").write_text(json.dumps(baseline))
        spec = BenchSpec(
            name="fake", baseline="BENCH_fake.json",
            script="bench_fake.py", metrics=SPEEDUPS,
        )
        monkeypatch.setitem(BENCHES, "fake", spec)
        fresh = {"value": _payload()}
        monkeypatch.setattr(
            obs_bench, "run_bench", lambda spec, bench_dir: fresh["value"]
        )
        return tmp_path, fresh

    def test_check_passes_and_records_history(self, fake_bench):
        tmp_path, _ = fake_bench
        (report,) = check_benches(
            ["fake"], baseline_dir=tmp_path, bench_dir=tmp_path
        )
        assert not report.regressed
        saved = json.loads((tmp_path / "BENCH_fake.json").read_text())
        assert len(saved["history"]) == 1

    def test_check_flags_regression(self, fake_bench):
        tmp_path, fresh = fake_bench
        fresh["value"] = _payload(a=2.0, geo=2.8)
        (report,) = check_benches(
            ["fake"], baseline_dir=tmp_path, bench_dir=tmp_path,
            tolerance=0.2,
        )
        assert report.regressed
        table = format_reports([report])
        assert "REGRESSED" in table and "(geomean)" in table

    def test_record_false_leaves_baseline_untouched(self, fake_bench):
        tmp_path, _ = fake_bench
        before = (tmp_path / "BENCH_fake.json").read_text()
        check_benches(
            ["fake"], baseline_dir=tmp_path, bench_dir=tmp_path, record=False
        )
        assert (tmp_path / "BENCH_fake.json").read_text() == before

    def test_unknown_bench_rejected(self):
        with pytest.raises(KeyError, match="unknown benchmark"):
            check_benches(["nope"])

    def test_watched_benches_cover_committed_baselines(self):
        names = {spec.baseline for spec in BENCHES.values()}
        assert names == {
            "BENCH_mir.json", "BENCH_obs.json",
            "BENCH_advf_inject.json", "BENCH_replay_batch.json",
        }


class TestBenchCheckCli:
    def _stub_reports(self, monkeypatch, regressed):
        report = compare_runs(
            "fake", _payload(), _payload(a=2.0 if regressed else 10.0),
            SPEEDUPS, tolerance=0.2,
        )
        captured = {}

        def fake_check(names, tolerance, update, record):
            captured.update(
                names=names, tolerance=tolerance, update=update, record=record
            )
            return [report]

        monkeypatch.setattr(obs_bench, "check_benches", fake_check)
        return captured

    def test_cli_exit_zero_and_table_on_pass(self, monkeypatch, capsys):
        from repro.campaigns.cli import main

        captured = self._stub_reports(monkeypatch, regressed=False)
        assert main(["bench", "check", "--no-record", "--bench", "fake"]) == 0
        cap = capsys.readouterr()
        assert "(geomean)" in cap.out
        assert "bench check ok" in cap.err
        assert captured["names"] == ["fake"]
        assert captured["record"] is False

    def test_cli_exit_nonzero_on_regression(self, monkeypatch, capsys):
        from repro.campaigns.cli import main

        self._stub_reports(monkeypatch, regressed=True)
        assert main(["bench", "check", "--tolerance", "0.2"]) == 1
        assert "bench regression past tolerance 20%" in capsys.readouterr().err
