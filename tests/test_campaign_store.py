"""CampaignStore: schema/versioning, content addressing, round-trips, export."""

import json
import sqlite3

import pytest

from repro.campaigns.store import (
    SCHEMA_VERSION,
    CampaignStore,
    StoreVersionError,
    compute_campaign_id,
)
from repro.core.acceptance import OutcomeClass
from repro.core.advf import AdvfResult, ObjectReport
from repro.core.injector import FaultInjectionResult
from repro.core.masking import MaskingCategory, MaskingLevel
from repro.vm.faults import FaultSpec, FaultTarget

PLAN = {"kind": "fixed", "tests": 8, "seed": 0}


def _results(n=4):
    outcomes = [
        OutcomeClass.IDENTICAL,
        OutcomeClass.ACCEPTABLE,
        OutcomeClass.UNACCEPTABLE,
        OutcomeClass.CRASH,
    ]
    return [
        FaultInjectionResult(
            spec=FaultSpec(
                dynamic_id=10 + i,
                bit=i,
                target=FaultTarget.OPERAND if i % 2 == 0 else FaultTarget.STORE_DEST_OLD,
                operand_index=i % 2,
                note=f"test site {i}",
            ),
            outcome=outcomes[i % len(outcomes)],
            detail=f"detail {i}" if i % 2 else "",
        )
        for i in range(n)
    ]


@pytest.fixture()
def store():
    with CampaignStore(":memory:") as s:
        yield s


class TestIdentity:
    def test_content_addressed_ids(self):
        a = compute_campaign_id("matmul", {}, PLAN, 32)
        assert a == compute_campaign_id("matmul", {}, PLAN, 32)
        assert a != compute_campaign_id("matmul", {"n": 8}, PLAN, 32)
        assert a != compute_campaign_id("matmul", {}, {**PLAN, "tests": 9}, 32)
        assert a != compute_campaign_id("matmul", {}, PLAN, 16)
        assert a != compute_campaign_id("lu", {}, PLAN, 32)

    def test_kwarg_order_does_not_matter(self):
        assert compute_campaign_id("lu", {"a": 1, "b": 2}, PLAN, 8) == (
            compute_campaign_id("lu", {"b": 2, "a": 1}, PLAN, 8)
        )

    def test_ensure_campaign_dedupes(self, store):
        first = store.ensure_campaign("matmul", {}, PLAN, 32)
        second = store.ensure_campaign("matmul", {}, PLAN, 32)
        assert first == second
        assert len(store.campaigns()) == 1


class TestSchema:
    def test_schema_version_stamped(self, store):
        assert store.schema_version == SCHEMA_VERSION

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "old.sqlite"
        CampaignStore(path).close()
        conn = sqlite3.connect(path)
        conn.execute("UPDATE meta SET value = '999' WHERE key = 'schema_version'")
        conn.commit()
        conn.close()
        with pytest.raises(StoreVersionError, match="schema version 999"):
            CampaignStore(path)

    def test_v1_store_migrates_in_place(self, tmp_path):
        """v2 only adds defaulted columns, so v1 stores upgrade losslessly."""
        path = tmp_path / "v1.sqlite"
        with CampaignStore(path) as s:
            cid = s.ensure_campaign("matmul", {}, PLAN, 32)
            run = s.begin_run(cid)
            s.record_shard(cid, 0, "C", 0, run, 0.1, _results())
        # rewind the file to schema v1 by dropping the v2 columns
        conn = sqlite3.connect(path)
        conn.execute("ALTER TABLE campaigns DROP COLUMN trace_digest")
        conn.execute("ALTER TABLE shards DROP COLUMN analysis_s")
        conn.execute("UPDATE meta SET value = '1' WHERE key = 'schema_version'")
        conn.commit()
        conn.close()
        with CampaignStore(path) as s:
            assert s.schema_version == SCHEMA_VERSION
            record = s.campaign(cid)
            assert record.trace_digest == ""
            assert len(s.outcomes(cid)) == 4
            shard = s.completed_shards(cid)[0]
            assert shard.analysis_s == 0.0
            s.set_trace_digest(cid, "tdeadbeef")
            assert s.campaign(cid).trace_digest == "tdeadbeef"

    def test_reopen_preserves_rows(self, tmp_path):
        path = tmp_path / "c.sqlite"
        with CampaignStore(path) as s:
            cid = s.ensure_campaign("matmul", {}, PLAN, 32)
            run = s.begin_run(cid)
            s.record_shard(cid, 0, "C", 0, run, 0.1, _results())
        with CampaignStore(path) as s:
            assert s.has_campaign(cid)
            assert len(s.outcomes(cid)) == 4
            assert s.completed_shards(cid)[0].spec_count == 4


class TestShardsAndOutcomes:
    def test_round_trip_is_lossless(self, store):
        cid = store.ensure_campaign("matmul", {}, PLAN, 32)
        run = store.begin_run(cid)
        results = _results(6)
        store.record_shard(cid, 3, "C", 1, run, 0.25, results)
        stored = store.outcomes(cid)
        assert [o.to_result() for o in stored] == results
        assert all(o.object_name == "C" and o.shard_index == 3 for o in stored)
        shard = store.completed_shards(cid)[3]
        assert (shard.object_name, shard.batch, shard.run_id) == ("C", 1, run)

    def test_histograms_and_tallies(self, store):
        cid = store.ensure_campaign("matmul", {}, PLAN, 32)
        run = store.begin_run(cid)
        store.record_shard(cid, 0, "C", 0, run, 0.1, _results(8))
        hist = store.outcome_histograms(cid)["C"]
        assert hist == {"identical": 2, "acceptable": 2, "unacceptable": 2, "crash": 2}
        successes, trials = store.object_tallies(cid)["C"]
        assert (successes, trials) == (4, 8)

    def test_run_accounting(self, store):
        cid = store.ensure_campaign("matmul", {}, PLAN, 32)
        r1 = store.begin_run(cid)
        r2 = store.begin_run(cid)
        assert (r1, r2) == (1, 2)
        store.finish_run(cid, r1, executed=3, skipped=0)
        store.finish_run(cid, r2, executed=1, skipped=3)
        assert store.run_accounting(cid) == [(1, 3, 0), (2, 1, 3)]

    def test_duplicate_shard_rejected(self, store):
        cid = store.ensure_campaign("matmul", {}, PLAN, 32)
        run = store.begin_run(cid)
        store.record_shard(cid, 0, "C", 0, run, 0.1, _results())
        with pytest.raises(sqlite3.IntegrityError):
            store.record_shard(cid, 0, "C", 0, run, 0.1, _results())

    def test_missing_campaign_raises(self, store):
        with pytest.raises(KeyError):
            store.campaign("nope")


class TestReports:
    def _report(self):
        return ObjectReport(
            result=AdvfResult(
                object_name="C",
                value=0.75,
                participations=40,
                masked_events=30.0,
                by_level={MaskingLevel.OPERATION: 20.0, MaskingLevel.ALGORITHM: 10.0},
                by_category={MaskingCategory.OVERSHADOW: 20.0},
            ),
            injections=12,
            injection_outcomes={OutcomeClass.IDENTICAL: 7, OutcomeClass.CRASH: 5},
            propagation_checks=9,
            unresolved=1,
            analyses_performed=30,
            analyses_reused=10,
        )

    def test_report_round_trip(self, store):
        report = self._report()
        assert ObjectReport.from_dict(report.to_dict()) == report
        cid = store.ensure_campaign("matmul", {}, PLAN, 32)
        store.save_report(cid, "C", report)
        assert store.reports(cid) == {"C": report}

    def test_report_dict_is_json_safe(self):
        payload = self._report().to_dict()
        assert json.loads(json.dumps(payload)) == payload


class TestExport:
    def test_export_jsonl(self, store, tmp_path):
        cid = store.ensure_campaign("matmul", {"n": 4}, PLAN, 32)
        run = store.begin_run(cid)
        store.record_shard(cid, 0, "C", 0, run, 0.1, _results(3))
        store.save_report(cid, "C", TestReports()._report())
        path = tmp_path / "dump.jsonl"
        with open(path, "w") as fh:
            lines = store.export_jsonl(cid, fh)
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(rows) == lines == 1 + 1 + 3 + 1
        assert rows[0]["type"] == "campaign"
        assert rows[0]["campaign_id"] == cid
        assert rows[0]["schema_version"] == SCHEMA_VERSION
        types = [row["type"] for row in rows]
        assert types.count("outcome") == 3 and types.count("report") == 1
        outcome = next(row for row in rows if row["type"] == "outcome")
        assert FaultInjectionResult.from_row(outcome).spec.dynamic_id == 10


class TestRunMetrics:
    def _snapshot(self, ops=100, hits=3):
        return {
            "counters": [
                {"name": "engine.ops", "labels": {"backend": "block"}, "value": ops},
                {"name": "replay.memo_hits", "labels": {}, "value": hits},
            ],
            "gauges": [],
            "histograms": [],
        }

    def test_round_trip_and_replace(self, store):
        cid = store.ensure_campaign("matmul", {}, PLAN, 32)
        run = store.begin_run(cid)
        store.save_run_metrics(cid, run, self._snapshot(ops=100))
        assert store.run_metrics(cid) == {run: self._snapshot(ops=100)}
        # latest write wins — a re-recorded run never double-counts
        store.save_run_metrics(cid, run, self._snapshot(ops=250))
        assert store.run_metrics(cid) == {run: self._snapshot(ops=250)}

    def test_campaign_metrics_merges_runs(self, store):
        cid = store.ensure_campaign("matmul", {}, PLAN, 32)
        r1, r2 = store.begin_run(cid), store.begin_run(cid)
        store.save_run_metrics(cid, r1, self._snapshot(ops=100, hits=1))
        store.save_run_metrics(cid, r2, self._snapshot(ops=50, hits=2))
        merged = store.campaign_metrics(cid)
        by_name = {e["name"]: e["value"] for e in merged["counters"]}
        assert by_name == {"engine.ops": 150, "replay.memo_hits": 3}

    def test_campaign_metrics_empty_without_runs(self, store):
        cid = store.ensure_campaign("matmul", {}, PLAN, 32)
        assert store.campaign_metrics(cid) == {
            "counters": [], "gauges": [], "histograms": [],
        }

    def test_campaign_stamps_repro_version(self, store):
        from repro.version import __version__

        cid = store.ensure_campaign("matmul", {}, PLAN, 32)
        assert store.campaign(cid).repro_version == __version__

    def test_export_includes_run_metrics_lines(self, store, tmp_path):
        from repro.version import __version__

        cid = store.ensure_campaign("matmul", {}, PLAN, 32)
        run = store.begin_run(cid)
        store.record_shard(cid, 0, "C", 0, run, 0.1, _results(3))
        store.save_run_metrics(cid, run, self._snapshot())
        path = tmp_path / "dump.jsonl"
        with open(path, "w") as fh:
            store.export_jsonl(cid, fh)
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert rows[0]["repro_version"] == __version__
        metrics_rows = [row for row in rows if row["type"] == "run_metrics"]
        assert len(metrics_rows) == 1
        assert metrics_rows[0]["run_id"] == run
        assert metrics_rows[0]["metrics"] == self._snapshot()

    def test_v6_store_migrates_in_place(self, tmp_path):
        """v7 adds the ``run_spans`` table: v6 files upgrade losslessly."""
        path = tmp_path / "v6.sqlite"
        with CampaignStore(path) as s:
            cid = s.ensure_campaign("matmul", {}, PLAN, 32)
            run = s.begin_run(cid)
            s.record_shard(cid, 0, "C", 0, run, 0.1, _results())
        # rewind the file to schema v6 by dropping everything v7 added
        conn = sqlite3.connect(path)
        conn.execute("DROP TABLE run_spans")
        conn.execute("UPDATE meta SET value = '6' WHERE key = 'schema_version'")
        conn.commit()
        conn.close()
        with CampaignStore(path) as s:
            assert s.schema_version == SCHEMA_VERSION
            assert len(s.outcomes(cid)) == 4  # populated rows survive
            assert s.run_spans(cid) == []  # pre-v7 campaigns: no flight data
            s.save_run_spans(cid, run, [_span("campaign.run")])
            assert [r.name for r in s.run_spans(cid)] == ["campaign.run"]

    def test_v4_store_migrates_in_place(self, tmp_path):
        """v5 adds a defaulted column + a new table: v4 upgrades losslessly."""
        path = tmp_path / "v4.sqlite"
        with CampaignStore(path) as s:
            cid = s.ensure_campaign("matmul", {}, PLAN, 32)
            run = s.begin_run(cid)
            s.record_shard(cid, 0, "C", 0, run, 0.1, _results())
        # rewind the file to schema v4 by dropping everything v5 added
        conn = sqlite3.connect(path)
        conn.execute("ALTER TABLE campaigns DROP COLUMN repro_version")
        conn.execute("DROP TABLE run_metrics")
        conn.execute("UPDATE meta SET value = '4' WHERE key = 'schema_version'")
        conn.commit()
        conn.close()
        with CampaignStore(path) as s:
            assert s.schema_version == SCHEMA_VERSION
            record = s.campaign(cid)
            assert record.repro_version == ""  # pre-v5 campaigns: no stamp
            assert len(s.outcomes(cid)) == 4  # populated rows survive
            assert s.run_metrics(cid) == {}
            s.save_run_metrics(cid, run, {"counters": [], "gauges": [],
                                          "histograms": []})
            assert list(s.run_metrics(cid)) == [run]


def _span(name, shard=None, start=100.0, duration=0.5, depth=0,
          parent=None, **labels):
    """A finished-span record in the exact shape the flight recorder drains."""
    labels = {key: str(value) for key, value in labels.items()}
    if shard is not None:
        labels["shard"] = str(shard)
    return {
        "name": name,
        "parent": parent,
        "depth": depth,
        "pid": 4242,
        "start_ts": start,
        "duration_s": duration,
        "labels": labels,
    }


class TestRunSpans:
    def test_round_trip_preserves_every_field(self, store):
        cid = store.ensure_campaign("matmul", {}, PLAN, 32)
        run = store.begin_run(cid)
        saved = store.save_run_spans(cid, run, [
            _span("campaign.trace", start=1.0, duration=0.25,
                  campaign=cid, run=run),
            _span("campaign.shard", shard=0, start=2.0, duration=1.5,
                  depth=1, parent="campaign.run", object="C"),
        ])
        assert saved == 2
        trace, shard = store.run_spans(cid)
        assert (trace.name, shard.name) == ("campaign.trace", "campaign.shard")
        assert trace.run_id == run and shard.run_id == run
        assert trace.shard_index == -1  # no shard label: an orphan span
        assert shard.shard_index == 0
        assert shard.parent == "campaign.run" and shard.depth == 1
        assert shard.pid == 4242
        assert shard.labels["object"] == "C"
        assert shard.start_ts == 2.0 and shard.duration_s == 1.5
        assert shard.end_ts == 3.5

    def test_seq_continues_across_flushes(self, store):
        """Per-shard flushes append without a client-side counter."""
        cid = store.ensure_campaign("matmul", {}, PLAN, 32)
        run = store.begin_run(cid)
        store.save_run_spans(cid, run, [_span("a")])
        store.save_run_spans(cid, run, [_span("b"), _span("c")])
        records = store.run_spans(cid, run_id=run)
        assert [r.name for r in records] == ["a", "b", "c"]
        assert [r.seq for r in records] == [0, 1, 2]
        assert store.save_run_spans(cid, run, []) == 0

    def test_runs_filter_and_isolation(self, store):
        cid = store.ensure_campaign("matmul", {}, PLAN, 32)
        r1, r2 = store.begin_run(cid), store.begin_run(cid)
        store.save_run_spans(cid, r1, [_span("first")])
        store.save_run_spans(cid, r2, [_span("second")])
        assert [r.name for r in store.run_spans(cid)] == ["first", "second"]
        assert [r.name for r in store.run_spans(cid, run_id=r2)] == ["second"]

    def test_malformed_shard_label_degrades_to_orphan(self, store):
        cid = store.ensure_campaign("matmul", {}, PLAN, 32)
        run = store.begin_run(cid)
        store.save_run_spans(cid, run, [_span("odd", shard="oops")])
        (record,) = store.run_spans(cid)
        assert record.shard_index == -1
        assert record.labels["shard"] == "oops"  # the label itself survives

    def test_unknown_campaign_reads_empty(self, store):
        # same idiom as run_metrics(): per-run accessors don't guard ids
        assert store.run_spans("nope") == []

    def test_export_includes_run_span_lines(self, store, tmp_path):
        cid = store.ensure_campaign("matmul", {}, PLAN, 32)
        run = store.begin_run(cid)
        store.record_shard(cid, 0, "C", 0, run, 0.1, _results(3))
        store.save_run_spans(cid, run, [_span("campaign.shard", shard=0)])
        path = tmp_path / "dump.jsonl"
        with open(path, "w") as fh:
            store.export_jsonl(cid, fh)
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        span_rows = [row for row in rows if row["type"] == "run_span"]
        assert len(span_rows) == 1
        assert span_rows[0]["span"] == "campaign.shard"
        assert span_rows[0]["shard_index"] == 0
        assert span_rows[0]["run_id"] == run
