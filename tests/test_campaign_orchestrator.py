"""Orchestrator: kill-and-resume round-trips, adaptive convergence, dedupe."""

import pytest

from repro.campaigns.orchestrator import CampaignOrchestrator
from repro.campaigns.plans import AdaptivePlan, FixedRandomPlan, StratifiedPlan
from repro.campaigns.stats import wilson_half_width
from repro.campaigns.store import CampaignStore

WORKLOAD = "matmul"
KWARGS = {"n": 4}


def _outcome_rows(store, campaign_id):
    """Canonical (position-independent-of-run) view of every stored outcome."""
    return [
        (o.shard_index, o.seq, o.object_name, o.spec, o.outcome, o.detail)
        for o in store.outcomes(campaign_id)
    ]


def _orchestrator(store, plan, **kw):
    return CampaignOrchestrator(
        store, WORKLOAD, workload_kwargs=KWARGS, plan=plan, workers=1, **kw
    )


class TestKillAndResume:
    def test_interrupted_resume_is_bit_identical_to_fresh_run(self):
        plan = FixedRandomPlan(tests=24, seed=3)

        # reference: one uninterrupted campaign
        fresh_store = CampaignStore(":memory:")
        fresh = _orchestrator(fresh_store, plan, shard_size=8)
        fresh_result = fresh.run()
        assert fresh_result.status == "complete"
        assert fresh_result.executed_shards == 3

        # "killed" campaign: interrupt after one persisted shard, then resume
        store = CampaignStore(":memory:")
        orch = _orchestrator(store, plan, shard_size=8)
        partial = orch.run(max_shards=1)
        assert partial.status == "interrupted"
        assert partial.executed_shards == 1
        assert store.campaign(orch.campaign_id).status == "interrupted"

        resumed = orch.resume()
        assert resumed.status == "complete"
        assert resumed.executed_shards == 2
        assert resumed.skipped_shards == 1

        # final results are bit-identical to the uninterrupted run
        assert _outcome_rows(store, orch.campaign_id) == _outcome_rows(
            fresh_store, fresh.campaign_id
        )
        assert resumed.histograms == fresh_result.histograms

        # shard-execution counts prove only unfinished shards were re-executed
        shards = store.completed_shards(orch.campaign_id)
        assert sorted(shards) == [0, 1, 2]
        assert shards[0].run_id == 1
        assert shards[1].run_id == 2 and shards[2].run_id == 2
        assert store.run_accounting(orch.campaign_id) == [(1, 1, 0), (2, 2, 1)]

    def test_resume_from_store_reconstructs_orchestrator(self):
        plan = StratifiedPlan(per_stratum=4, intervals=3, seed=1)
        store = CampaignStore(":memory:")
        orch = _orchestrator(store, plan, shard_size=6)
        orch.run(max_shards=1)

        # a different orchestrator instance (fresh process in real life)
        rebuilt = CampaignOrchestrator.from_store(store, orch.campaign_id, workers=1)
        assert rebuilt.plan == plan
        assert rebuilt.workload_kwargs == KWARGS
        result = rebuilt.run()
        assert result.status == "complete"
        assert result.skipped_shards >= 1

        # identical to a fresh uninterrupted campaign
        fresh_store = CampaignStore(":memory:")
        fresh = _orchestrator(fresh_store, plan, shard_size=6)
        fresh.run()
        assert _outcome_rows(store, orch.campaign_id) == _outcome_rows(
            fresh_store, fresh.campaign_id
        )

    def test_completed_campaign_rerun_executes_nothing(self):
        store = CampaignStore(":memory:")
        orch = _orchestrator(store, FixedRandomPlan(tests=8, seed=0), shard_size=4)
        first = orch.run()
        again = orch.run()
        assert first.status == again.status == "complete"
        assert again.executed_shards == 0
        assert again.skipped_shards == first.executed_shards == 2
        assert len(store.outcomes(orch.campaign_id)) == 8


class TestAdaptiveCampaigns:
    PLAN = AdaptivePlan(
        target_half_width=0.12, batch_size=16, max_batches=16, seed=5
    )

    def test_adaptive_stops_within_target_half_width(self):
        store = CampaignStore(":memory:")
        orch = _orchestrator(store, self.PLAN)
        result = orch.run()
        assert result.status == "complete"
        successes, trials = result.tallies["C"]
        assert trials == result.executed_injections
        assert wilson_half_width(successes, trials, self.PLAN.z) <= 0.12
        # converged without draining the batch budget
        assert result.executed_shards < self.PLAN.max_batches

    def test_adaptive_kill_and_resume_matches_fresh(self):
        fresh_store = CampaignStore(":memory:")
        fresh = _orchestrator(fresh_store, self.PLAN)
        fresh_result = fresh.run()

        store = CampaignStore(":memory:")
        orch = _orchestrator(store, self.PLAN)
        assert orch.run(max_shards=1).status == "interrupted"
        resumed = orch.run()
        assert resumed.status == "complete"
        assert resumed.skipped_shards == 1
        assert _outcome_rows(store, orch.campaign_id) == _outcome_rows(
            fresh_store, fresh.campaign_id
        )
        assert resumed.tallies == fresh_result.tallies


class TestFailureHandling:
    def test_crash_marks_campaign_failed_but_keeps_accounting(self, monkeypatch):
        store = CampaignStore(":memory:")
        orch = _orchestrator(store, FixedRandomPlan(tests=16, seed=0), shard_size=8)
        original = CampaignOrchestrator._execute_specs
        calls = []

        def second_shard_dies(self, specs):
            if calls:
                raise RuntimeError("worker died")
            calls.append(1)
            return original(self, specs)

        monkeypatch.setattr(CampaignOrchestrator, "_execute_specs", second_shard_dies)
        with pytest.raises(RuntimeError, match="worker died"):
            orch.run()
        # no permanently-"running" zombie row, and the shard that completed
        # before the crash is accounted for
        assert store.campaign(orch.campaign_id).status == "failed"
        assert store.run_accounting(orch.campaign_id) == [(1, 1, 0)]
        assert len(store.outcomes(orch.campaign_id)) == 8

        # the persisted shard survives and the campaign resumes cleanly
        monkeypatch.undo()
        result = orch.run()
        assert result.status == "complete"
        assert result.skipped_shards == 1 and result.executed_shards == 1


class TestParallelWorkers:
    def test_parallel_campaign_matches_serial(self):
        plan = FixedRandomPlan(tests=12, seed=1)
        serial_store = CampaignStore(":memory:")
        _orchestrator(serial_store, plan, shard_size=6).run()
        parallel_store = CampaignStore(":memory:")
        parallel = CampaignOrchestrator(
            parallel_store, WORKLOAD, workload_kwargs=KWARGS,
            plan=plan, workers=2, shard_size=6,
        )
        result = parallel.run()
        assert result.status == "complete"
        assert parallel._runner is None  # persistent pool released after run()
        assert _outcome_rows(parallel_store, parallel.campaign_id) == _outcome_rows(
            serial_store, parallel.campaign_id
        )


class TestConfigurationErrors:
    def test_unknown_workload_fails_fast(self):
        store = CampaignStore(":memory:")
        with pytest.raises(KeyError, match="unknown workload"):
            CampaignOrchestrator(store, "matmool")
        assert store.campaigns() == []

    def test_bad_shard_size(self):
        with pytest.raises(ValueError):
            CampaignOrchestrator(CampaignStore(":memory:"), WORKLOAD, shard_size=0)


class TestReports:
    def test_compute_reports_persists_and_reuses(self):
        from repro.core.advf import AnalysisConfig
        from repro.core.patterns import SingleBitModel

        store = CampaignStore(":memory:")
        orch = _orchestrator(store, FixedRandomPlan(tests=8, seed=0))
        orch.run()
        config = AnalysisConfig(
            max_injections=10,
            equivalence_samples=1,
            injection_samples_per_class=1,
            error_model=SingleBitModel(bit_stride=16),
        )
        reports = orch.compute_reports(config)
        assert set(reports) == {"C"}
        assert 0.0 <= reports["C"].advf <= 1.0
        # second call renders from the store (same object, no recompute)
        assert orch.compute_reports(config) == reports
        assert store.reports(orch.campaign_id) == reports
