"""Speculative batched injection resolution: parity oracle + telemetry.

The speculation scheduler's acceptance bar is *bit identity*: an aDVF
analysis with any speculation window must reproduce the sequential
(``speculation_window=0``) report exactly — same aDVF value, masking
breakdowns, injection counts and outcome histograms, cache statistics.
Budget decisions are count-based, so organically predictions never miss;
the forced-misprediction tests patch the predictor to exercise the
discard / sequential-replay paths in both directions.
"""

from __future__ import annotations

import pytest

import repro.core.advf as advf
from repro.core.advf import (
    DEFAULT_SPECULATION_WINDOW,
    AdvfEngine,
    AnalysisConfig,
    resolved_speculation_window,
)
from repro.core.injector import DeterministicFaultInjector
from repro.core.replay import ReplayContext
from repro.core.sites import enumerate_fault_sites
from repro.obs.metrics import configure, registry
from repro.workloads.registry import get_workload


@pytest.fixture(autouse=True)
def _fresh_registry():
    """Every test starts with an enabled, empty process registry."""
    configure(True)
    yield
    configure(None)


#: Reduced problem sizes so analyses with injection stay fast.
SMALL_KWARGS = {
    "matmul": {"n": 5},
    "cg": {"n": 10, "cgitmax": 2},
}


def _analyze(name, window, **config_kwargs):
    """One full aDVF analysis at the given speculation window."""
    workload = get_workload(name, **SMALL_KWARGS.get(name, {}))
    engine = AdvfEngine(
        workload,
        AnalysisConfig(
            use_injection=True, speculation_window=window, **config_kwargs
        ),
    )
    return engine, engine.analyze()


def _assert_identical(sequential, speculative):
    assert sequential.objects.keys() == speculative.objects.keys()
    for name, report in sequential.objects.items():
        assert report.to_dict() == speculative.objects[name].to_dict(), (
            f"speculation diverged on {name}"
        )


def _counter_total(name):
    return sum(
        entry["value"]
        for entry in registry().to_dict()["counters"]
        if entry["name"] == name
    )


class TestBitIdentity:
    @pytest.mark.parametrize("name", ["matmul", "cg"])
    def test_reports_identical_to_sequential(self, name):
        _, sequential = _analyze(name, window=0)
        engine, speculative = _analyze(name, window=8)
        _assert_identical(sequential, speculative)
        # the speculative run actually speculated (predictions all held)
        assert engine.speculation_stats.get("speculated", 0) > 0
        assert engine.speculation_stats.get("spec_windows", 0) >= 1
        assert engine.speculation_stats.get("spec_mispredictions", 0) == 0

    def test_window_size_does_not_change_reports(self):
        _, base = _analyze("matmul", window=1)
        for window in (3, 17, 10_000):
            _, other = _analyze("matmul", window=window)
            _assert_identical(base, other)

    def test_rerun_mode_never_speculates(self):
        engine, _ = _analyze(
            "matmul", window=8, injection_mode="rerun"
        )
        assert engine.speculation_stats == {}


class TestTelemetry:
    def test_registry_counters_match_engine_stats(self):
        engine, _ = _analyze("cg", window=8)
        stats = engine.speculation_stats
        assert _counter_total("advf.speculated") == stats["speculated"]
        assert _counter_total("advf.speculation_windows") == stats["spec_windows"]
        assert _counter_total("advf.speculation_discards") == stats.get(
            "spec_discards", 0
        )

    def test_injector_folds_speculation_into_batch_stats(self):
        engine, _ = _analyze("cg", window=8)
        delta = engine._injector.consume_batch_stats()
        assert delta["speculated"] == engine.speculation_stats["speculated"]
        assert delta["spec_windows"] == engine.speculation_stats["spec_windows"]
        # consumed: the next delta starts from zero again
        follow_up = engine._injector.consume_batch_stats()
        assert follow_up.get("speculated", 0) == 0


class TestForcedMispredictions:
    def test_overspeculation_discards_and_stays_identical(self, monkeypatch):
        """Predictor forced optimistic: every candidate is speculated, the
        apply phase discards everything the real budget rejects."""
        _, sequential = _analyze("cg", window=0)
        monkeypatch.setattr(
            advf._SpeculativeResolver, "_predict_inject", lambda self, key: True
        )
        engine, speculative = _analyze("cg", window=8)
        _assert_identical(sequential, speculative)
        stats = engine.speculation_stats
        assert stats["spec_discards"] > 0
        assert stats["speculated"] > stats["spec_discards"] > 0

    def test_underspeculation_replays_sequentially_and_stays_identical(
        self, monkeypatch
    ):
        """Predictor forced pessimistic: nothing is speculated, every
        in-budget candidate resolves by a sequential injection at apply."""
        _, sequential = _analyze("cg", window=0)
        monkeypatch.setattr(
            advf._SpeculativeResolver, "_predict_inject", lambda self, key: False
        )
        engine, speculative = _analyze("cg", window=8)
        _assert_identical(sequential, speculative)
        stats = engine.speculation_stats
        assert stats.get("speculated", 0) == 0
        assert stats["spec_mispredictions"] > 0


class TestWindowResolution:
    def test_config_knob_wins_over_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_ADVF_SPECULATION", "64")
        assert resolved_speculation_window(
            AnalysisConfig(speculation_window=5)
        ) == 5
        assert resolved_speculation_window(
            AnalysisConfig(speculation_window=0)
        ) == 0

    def test_environment_values(self, monkeypatch):
        config = AnalysisConfig()
        monkeypatch.delenv("REPRO_ADVF_SPECULATION", raising=False)
        assert resolved_speculation_window(config) == DEFAULT_SPECULATION_WINDOW
        monkeypatch.setenv("REPRO_ADVF_SPECULATION", "7")
        assert resolved_speculation_window(config) == 7
        for off in ("0", "off", "NONE", " disabled "):
            monkeypatch.setenv("REPRO_ADVF_SPECULATION", off)
            assert resolved_speculation_window(config) == 0
        monkeypatch.setenv("REPRO_ADVF_SPECULATION", "bogus")
        assert resolved_speculation_window(config) == DEFAULT_SPECULATION_WINDOW

    def test_disabled_window_takes_sequential_path(self, monkeypatch):
        monkeypatch.setenv("REPRO_ADVF_SPECULATION", "off")
        engine, _ = _analyze("matmul", window=None)
        assert engine.speculation_stats == {}


class TestSequentialFallbackMetrics:
    def test_plain_context_batches_counter_increments(self):
        """A caller-supplied plain ReplayContext keeps the sequential
        inject loop, but its per-replay counters are batched through
        ``deferred_metrics`` — totals match one inc per replay."""
        workload = get_workload("matmul", n=5)
        context = ReplayContext(workload)
        injector = DeterministicFaultInjector(workload, context=context)
        trace = workload.traced_run().trace
        specs = [
            site.to_spec()
            for site in enumerate_fault_sites(trace, "C", bit_stride=16)
        ][:6]
        results = injector.inject_many(specs)
        assert len(results) == len(specs)
        assert _counter_total("replay.sequential") == len(specs)
