"""Checkpointed replay must be indistinguishable from full re-execution.

The property under test (the acceptance criterion of the engine refactor):
for any workload and any fault spec, injecting via snapshot-restore replay
produces the *same* :class:`OutcomeClass` — and, for non-crashing runs, the
same output bits — as re-running the whole workload from scratch.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.injector import DeterministicFaultInjector
from repro.core.replay import ReplayContext
from repro.core.sites import enumerate_fault_sites
from repro.vm import Engine, FaultSpec, FaultTarget
from repro.vm.engine import DecodedProgram
from repro.workloads.registry import get_workload


def _sampled_specs(workload, max_specs=36, bit_stride=11):
    """A deterministic, diverse sample of the workload's fault space."""
    trace = workload.traced_run().trace
    specs = []
    for target in workload.target_objects:
        sites = enumerate_fault_sites(trace, target, bit_stride=bit_stride)
        step = max(1, len(sites) // (max_specs // max(1, len(workload.target_objects))))
        specs.extend(site.to_spec() for site in sites[::step])
    # add a handful of result-target faults (sites only cover operand /
    # store-destination targets)
    for event in list(trace)[:: max(1, len(trace) // 6)]:
        if event.result_value is not None:
            specs.append(
                FaultSpec(
                    dynamic_id=event.dynamic_id,
                    bit=17 % max(1, event.result_type.bits),
                    target=FaultTarget.RESULT,
                )
            )
    return specs[:max_specs]


# --------------------------------------------------------------------- #
# the core property: replay == rerun
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("name", ["matmul", "cg", "lulesh"])
def test_replay_outcomes_match_full_rerun(name):
    workload = get_workload(name)
    specs = _sampled_specs(workload)
    assert specs, "sample must not be empty"
    rerun = DeterministicFaultInjector(workload, mode="rerun")
    replay = DeterministicFaultInjector(workload, mode="replay")
    for spec in specs:
        expected = rerun.inject(spec)
        actual = replay.inject(spec)
        assert actual.outcome is expected.outcome, (
            f"{name} {spec}: replay={actual.outcome} rerun={expected.outcome}"
        )


def test_replay_outputs_bit_identical_to_rerun():
    workload = get_workload("matmul")
    trace = workload.traced_run().trace
    sites = enumerate_fault_sites(trace, workload.target_objects[0], bit_stride=13)
    context = ReplayContext(workload)
    for site in sites[:: max(1, len(sites) // 12)]:
        spec = site.to_spec()
        try:
            replayed = context.replay(spec)
        except Exception as replay_error:  # crash parity checked below
            with pytest.raises(type(replay_error)):
                workload.fresh_instance().run(fault=spec)
            continue
        fresh = workload.fresh_instance().run(fault=spec)
        assert replayed.return_value == fresh.return_value
        assert replayed.steps == fresh.steps
        for obj in fresh.outputs:
            assert np.array_equal(
                replayed.outputs[obj].view(np.uint8),
                fresh.outputs[obj].view(np.uint8),
            ), obj


def test_replay_handles_hang_and_crash_classification(cg_workload):
    """Crash/hang outcomes classify identically through both paths."""
    specs = _sampled_specs(cg_workload, max_specs=24, bit_stride=3)
    rerun = DeterministicFaultInjector(cg_workload, mode="rerun")
    replay = DeterministicFaultInjector(cg_workload, mode="replay")
    outcomes = set()
    for spec in specs:
        expected = rerun.inject(spec)
        actual = replay.inject(spec)
        assert actual.outcome is expected.outcome
        outcomes.add(actual.outcome)
    assert len(outcomes) >= 2, "sample should exercise several outcome classes"


# --------------------------------------------------------------------- #
# snapshots
# --------------------------------------------------------------------- #
def test_snapshot_resume_reproduces_golden_run():
    workload = get_workload("cg")
    instance = workload.fresh_instance()
    engine = Engine(instance.module, instance.memory, snapshot_interval=700)
    result = engine.run(workload.entry, instance.args)
    golden = {
        name: instance.memory.object(name).values()
        for name in workload.output_objects
    }
    assert engine.snapshots and engine.snapshots[0].dyn == 0
    for snapshot in engine.snapshots:
        resumed = Engine(instance.module, instance.memory).resume(snapshot)
        assert resumed.steps == result.steps
        assert resumed.return_value == result.return_value
        for name in golden:
            assert np.array_equal(
                golden[name], instance.memory.object(name).values()
            ), (snapshot.dyn, name)


def test_snapshot_restore_resets_memory_completely():
    workload = get_workload("lulesh")
    instance = workload.fresh_instance()
    engine = Engine(instance.module, instance.memory, snapshot_interval=500)
    engine.run(workload.entry, instance.args)
    snapshot = engine.snapshots[2]
    # clobber memory, then restore: state must match the capture bit-for-bit
    for obj in instance.memory.data_objects():
        obj.array[:] = 0
    instance.memory.restore_image(snapshot.memory)
    assert instance.memory.matches_image(snapshot.memory)


def test_replay_context_snapshot_selection():
    workload = get_workload("matmul")
    context = ReplayContext(workload, checkpoint_interval=1000)
    positions = [snap.dyn for snap in context.snapshots]
    assert positions[0] == 0 and positions == sorted(positions)
    assert context.snapshot_for(0).dyn == 0
    assert context.snapshot_for(999).dyn == 0
    assert context.snapshot_for(1000).dyn == 1000
    assert context.snapshot_for(10**9).dyn == positions[-1]


def test_replay_convergence_detection_short_circuits():
    """Masked faults converge back onto the golden state and stop early."""
    workload = get_workload("matmul")
    context = ReplayContext(workload, checkpoint_interval=200)
    trace = workload.traced_run().trace
    sites = enumerate_fault_sites(trace, workload.target_objects[0], bit_stride=9)
    injector = DeterministicFaultInjector(workload)
    injector._context = context  # share the prepared schedule
    results = [injector.inject(site.to_spec()) for site in sites[:40]]
    assert context.replays == len(results)
    masked = [r for r in results if r.outcome.is_masked]
    if masked:
        assert context.converged_replays > 0


# --------------------------------------------------------------------- #
# decode layer
# --------------------------------------------------------------------- #
def test_decoded_program_cached_per_module():
    workload = get_workload("matmul")
    module = workload.module()
    first = DecodedProgram.of(module)
    assert DecodedProgram.of(module) is first
    DecodedProgram.invalidate(module)
    assert DecodedProgram.of(module) is not first


def test_engine_equivalence_on_tiny_kernels(accumulate_trace):
    """The engine agrees with a seed-recorded interpreter trace."""
    from repro.ir.types import F64
    from repro.tracing import Trace
    from repro.vm import Memory

    module = accumulate_trace["module"]
    reference = accumulate_trace["trace"]
    memory = Memory()
    src = memory.allocate("src", F64, 5, initial=[1.0, -2.0, 3.0, 0.5, 4.0])
    dst = memory.allocate("dst", F64, 5)
    sink = Trace()
    result = Engine(module, memory, sink=sink).run(
        "accumulate", {"src": src, "dst": dst, "n": 5}
    )
    assert result.return_value == accumulate_trace["return_value"]
    assert len(sink) == len(reference)
    for a, b in zip(reference, sink):
        assert a.opcode is b.opcode and a.operand_values == b.operand_values
