"""Unit tests for the kernel frontend (Python subset -> IR)."""

import pytest

from repro.frontend import KernelCompileError, compile_kernel, compile_kernels
from repro.ir import F64, I64, Opcode, print_function, verify_function
from repro.tracing import Trace
from repro.vm import Interpreter, Memory


def run_kernel(function, objects, scalars):
    """Compile-free helper: execute an already compiled kernel."""
    module = function.metadata["module"]
    memory = Memory()
    args = {}
    for name, (etype, values) in objects.items():
        args[name] = memory.allocate(name, etype, len(values), initial=values)
    args.update(scalars)
    result = Interpreter(module, memory).run(function.name, args)
    return memory, result.return_value


# --------------------------------------------------------------------- #
# kernels under test (must be module-level for source extraction)
# --------------------------------------------------------------------- #
def k_sum(a: "double*", n: "i64") -> "double":
    s = 0.0
    for i in range(n):
        s = s + a[i]
    return s


def k_while_count(limit: "i64") -> "i64":
    i = 0
    total = 0
    while i < limit:
        total = total + i
        i = i + 1
    return total


def k_branches(x: "i64") -> "i64":
    if x > 10:
        return 2
    elif x > 0:
        return 1
    else:
        return 0


def k_augassign(a: "double*", n: "i64") -> "void":
    for i in range(n):
        a[i] += 2.0
        a[i] *= 3.0


def k_step_loop(a: "double*", n: "i64") -> "double":
    s = 0.0
    for i in range(0, n, 2):
        s = s + a[i]
    for i in range(n - 1, -1, -1):
        s = s + 1.0
    return s

def k_boolops(x: "i64", y: "i64") -> "i64":
    if x > 0 and y > 0:
        return 1
    if x < 0 or y < 0:
        return -1
    return 0


def k_intrinsics(x: "double") -> "double":
    return sqrt(fabs(x)) + exp(0.0) + fmax(x, 0.0)  # noqa: F821


def k_conversions(x: "double", i: "i64") -> "double":
    j = int(x)
    f = float(i)
    return f + j


def k_conditional_expr(x: "double") -> "double":
    return x if x > 0.0 else -x


def k_bitops(x: "i64", y: "i64") -> "i64":
    return ((x & y) | (x ^ 3)) + (x << 2) + (x >> 1) + (~y)


def k_break_continue(a: "double*", n: "i64") -> "double":
    s = 0.0
    for i in range(n):
        if a[i] < 0.0:
            continue
        if a[i] > 100.0:
            break
        s = s + a[i]
    return s


def k_pow_mod(x: "double", m: "i64") -> "double":
    return x**2 + (m % 3) + (m // 2)


def k_callee(x: "double") -> "double":
    return x * 2.0


def k_caller(a: "double*", n: "i64") -> "double":
    s = 0.0
    for i in range(n):
        s = s + k_callee(a[i])
    return s


MODULE_CONSTANT = 7


def k_uses_global(x: "i64") -> "i64":
    return x + MODULE_CONSTANT


class TestCompilation:
    def test_sum_compiles_and_runs(self):
        f = compile_kernel(k_sum)
        assert verify_function(f, f.metadata["module"]) == []
        _, value = run_kernel(f, {"a": (F64, [1.0, 2.0, 3.5])}, {"n": 3})
        assert value == pytest.approx(6.5)

    def test_while_loop(self):
        f = compile_kernel(k_while_count)
        _, value = run_kernel(f, {}, {"limit": 5})
        assert value == 0 + 1 + 2 + 3 + 4

    @pytest.mark.parametrize("x,expected", [(20, 2), (5, 1), (-3, 0), (0, 0)])
    def test_if_elif_else(self, x, expected):
        f = compile_kernel(k_branches)
        _, value = run_kernel(f, {}, {"x": x})
        assert value == expected

    def test_augmented_assignment(self):
        f = compile_kernel(k_augassign)
        memory, _ = run_kernel(f, {"a": (F64, [1.0, 2.0])}, {"n": 2})
        assert list(memory.object("a").values()) == [9.0, 12.0]

    def test_strided_and_descending_range(self):
        f = compile_kernel(k_step_loop)
        _, value = run_kernel(f, {"a": (F64, [1.0, 9.0, 2.0, 9.0])}, {"n": 4})
        # strided picks a[0], a[2]; descending loop adds 1.0 four times
        assert value == pytest.approx(1.0 + 2.0 + 4.0)

    @pytest.mark.parametrize("x,y,expected", [(1, 1, 1), (-1, 5, -1), (0, 0, 0), (3, -2, -1)])
    def test_boolean_operators(self, x, y, expected):
        f = compile_kernel(k_boolops)
        _, value = run_kernel(f, {}, {"x": x, "y": y})
        assert value == expected

    def test_intrinsic_calls(self):
        f = compile_kernel(k_intrinsics)
        _, value = run_kernel(f, {}, {"x": -4.0})
        assert value == pytest.approx(2.0 + 1.0 + 0.0)

    def test_int_float_conversions(self):
        f = compile_kernel(k_conversions)
        _, value = run_kernel(f, {}, {"x": 3.9, "i": 2})
        assert value == pytest.approx(2.0 + 3)

    @pytest.mark.parametrize("x,expected", [(2.5, 2.5), (-2.5, 2.5)])
    def test_conditional_expression(self, x, expected):
        f = compile_kernel(k_conditional_expr)
        _, value = run_kernel(f, {}, {"x": x})
        assert value == pytest.approx(expected)

    def test_bit_operations(self):
        f = compile_kernel(k_bitops)
        _, value = run_kernel(f, {}, {"x": 12, "y": 10})
        expected = ((12 & 10) | (12 ^ 3)) + (12 << 2) + (12 >> 1) + (~10)
        assert value == expected

    def test_break_and_continue(self):
        f = compile_kernel(k_break_continue)
        _, value = run_kernel(
            f, {"a": (F64, [1.0, -5.0, 2.0, 200.0, 3.0])}, {"n": 5}
        )
        assert value == pytest.approx(3.0)

    def test_pow_mod_floordiv(self):
        f = compile_kernel(k_pow_mod)
        _, value = run_kernel(f, {}, {"x": 3.0, "m": 7})
        assert value == pytest.approx(9.0 + 1 + 3)

    def test_cross_kernel_calls(self):
        module = compile_kernels([k_callee, k_caller])
        memory = Memory()
        a = memory.allocate("a", F64, 3, initial=[1.0, 2.0, 3.0])
        result = Interpreter(module, memory).run("k_caller", {"a": a, "n": 3})
        assert result.return_value == pytest.approx(12.0)

    def test_module_level_constant(self):
        f = compile_kernel(k_uses_global)
        _, value = run_kernel(f, {}, {"x": 5})
        assert value == 12

    def test_source_line_metadata(self):
        f = compile_kernel(k_sum)
        lines = [i.source_line for i in f.instructions() if i.source_line is not None]
        assert lines, "instructions should carry source line info"

    def test_printer_roundtrip_smoke(self):
        f = compile_kernel(k_branches)
        text = print_function(f)
        assert "icmp" in text and "br i1" in text

    def test_o0_style_locals(self):
        f = compile_kernel(k_sum)
        opcodes = [i.opcode for i in f.instructions()]
        assert Opcode.ALLOCA in opcodes
        assert Opcode.PHI not in opcodes


# --------------------------------------------------------------------- #
# diagnostics
# --------------------------------------------------------------------- #
def k_missing_annotation(a, n: "i64") -> "void":
    pass


def k_bad_type(a: "quadword") -> "void":
    pass


def k_undefined_var(n: "i64") -> "i64":
    return nope  # noqa: F821


def k_unsupported_statement(n: "i64") -> "void":
    assert n > 0


def k_bad_iteration(a: "double*", n: "i64") -> "void":
    for x in a:
        pass


def k_reassign_param(n: "i64") -> "i64":
    n = n + 1
    return n


def k_unknown_call(n: "i64") -> "i64":
    return mystery(n)  # noqa: F821


def k_missing_return(n: "i64") -> "i64":
    if n > 0:
        return 1


class TestDiagnostics:
    @pytest.mark.parametrize(
        "kernel,needle",
        [
            (k_missing_annotation, "annotation"),
            (k_bad_type, "unknown IR type"),
            (k_undefined_var, "undefined variable"),
            (k_unsupported_statement, "unsupported statement"),
            (k_bad_iteration, "range"),
            (k_reassign_param, "reassign parameter"),
            (k_unknown_call, "unknown function"),
            (k_missing_return, "falls off the end"),
        ],
    )
    def test_rejects_with_message(self, kernel, needle):
        with pytest.raises(KernelCompileError) as excinfo:
            compile_kernel(kernel)
        assert needle in str(excinfo.value)

    def test_error_carries_kernel_name(self):
        with pytest.raises(KernelCompileError) as excinfo:
            compile_kernel(k_undefined_var)
        assert "k_undefined_var" in str(excinfo.value)
