"""Workload tests: every Table I benchmark runs, matches its NumPy reference
where one exists, and is deterministic across instances."""

import numpy as np
import pytest

from repro.workloads.registry import TABLE1_ROWS, WORKLOADS, get_workload, workload_names


ALL_NAMES = sorted(WORKLOADS)


class TestRegistry:
    def test_names(self):
        assert set(TABLE1_ROWS) <= set(workload_names())
        assert "matmul_abft" in workload_names()

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            get_workload("does-not-exist")

    def test_kwargs_forwarded(self):
        wl = get_workload("cg", n=10, cgitmax=1)
        assert wl.n == 10 and wl.cgitmax == 1

    def test_describe_rows(self):
        for name in TABLE1_ROWS:
            row = get_workload(name).describe()
            assert row["name"] == name
            assert row["target_objects"], f"{name} must declare target objects"


@pytest.mark.parametrize("name", ALL_NAMES)
class TestEveryWorkload:
    def test_runs_and_produces_outputs(self, name):
        workload = get_workload(name)
        outcome = workload.golden_run()
        assert outcome.steps > 0
        for output in workload.output_objects:
            assert output in outcome.outputs
            values = outcome.outputs[output]
            assert np.all(np.isfinite(values.astype(float)))

    def test_target_objects_exist_and_participate(self, name):
        workload = get_workload(name)
        trace = workload.traced_run().trace
        from repro.core.participation import find_participations

        for target in workload.target_objects:
            assert find_participations(trace, target), (
                f"{name}: target object {target} never participates in the trace"
            )

    def test_deterministic_across_instances(self, name):
        workload = get_workload(name)
        first = workload.golden_run()
        second = workload.golden_run()
        for key in first.outputs:
            assert np.array_equal(first.outputs[key], second.outputs[key])

    def test_acceptance_accepts_golden(self, name):
        workload = get_workload(name)
        outcome = workload.golden_run()
        assert workload.acceptance.acceptable(outcome.outputs, outcome.outputs)


class TestReferenceImplementations:
    def test_cg_matches_reference(self):
        from repro.workloads.cg import CGWorkload, build_sparse_spd, reference_conj_grad

        workload = CGWorkload(n=12, cgitmax=2)
        outcome = workload.golden_run()
        values, columns, rowstr = build_sparse_spd(12, workload.rng())
        b = workload.rng().standard_normal(12)
        # reuse the workload's own setup for exact input agreement
        instance = workload.fresh_instance()
        a = instance.memory.object("a").values()
        colidx = instance.memory.object("colidx").values()
        rowstr = instance.memory.object("rowstr").values()
        b = instance.memory.object("b").values()
        x_ref, _ = reference_conj_grad(a, colidx.astype(int), rowstr.astype(int), b, 2)
        assert np.allclose(outcome.outputs["x"], x_ref, rtol=1e-9, atol=1e-12)

    def test_cg_converges(self):
        from repro.workloads.cg import CGWorkload

        workload = CGWorkload(n=12, cgitmax=8)
        instance = workload.fresh_instance()
        result = instance.run()
        assert result.return_value < 1e-6  # rho after 8 iterations

    def test_lu_matches_reference(self):
        from repro.workloads.lu import LUWorkload, reference_ssor

        workload = LUWorkload(n=10, niter=2)
        instance = workload.fresh_instance()
        u0 = instance.memory.object("u").values().reshape(10, 5)
        frct = instance.memory.object("frct").values().reshape(10, 5)
        outcome = instance.run()
        u_ref, _, sums_ref = reference_ssor(u0, frct, 2, workload.omega)
        assert np.allclose(outcome.outputs["u"].reshape(10, 5), u_ref)
        assert np.allclose(outcome.outputs["sum"], sums_ref)

    def test_mg_matches_reference_and_reduces_error(self):
        from repro.workloads.mg import MGWorkload, reference_mg

        workload = MGWorkload(nf=17, ncycles=2)
        instance = workload.fresh_instance()
        v = instance.memory.object("v").values()
        outcome = instance.run()
        expected = reference_mg(v, workload.nf, workload.nc, workload.ncycles)
        assert np.allclose(outcome.outputs["u"][: workload.nf], expected)

    def test_ft_matches_numpy_fft(self):
        from repro.workloads.ft import FTWorkload, reference_fftxyz

        workload = FTWorkload(n=8, rows=2, iters=1)
        instance = workload.fresh_instance()
        plane0 = instance.memory.object("plane").values()
        outcome = instance.run()
        expected = reference_fftxyz(plane0, 2, 8, 1)
        assert np.allclose(outcome.outputs["plane"], expected, atol=1e-9)

    def test_bt_matches_reference(self):
        from repro.workloads.bt import BTWorkload, reference_x_solve

        workload = BTWorkload(nx=5, ny=2, nz=2)
        instance = workload.fresh_instance()
        u0 = instance.memory.object("u").values()
        outcome = instance.run()
        expected = reference_x_solve(u0, 5, 2, 2)
        assert np.allclose(outcome.outputs["u"], expected)

    def test_sp_matches_dense_solve(self):
        from repro.workloads.sp import SPWorkload, reference_sp_x_solve

        workload = SPWorkload(nx=6, ny=2, nz=2)
        instance = workload.fresh_instance()
        rhs0 = instance.memory.object("rhs").values()
        rhoi = instance.memory.object("rhoi").values()
        outcome = instance.run()
        expected = reference_sp_x_solve(rhs0, rhoi, 6, 2, 2)
        assert np.allclose(outcome.outputs["rhs"], expected, rtol=1e-8)

    def test_lulesh_matches_reference(self):
        from repro.workloads.lulesh import LuleshWorkload, reference_monotonic_q

        workload = LuleshWorkload(num_elem=12)
        instance = workload.fresh_instance()
        memory = instance.memory
        outcome = instance.run()
        qq_ref, ql_ref = reference_monotonic_q(
            memory.object("m_delv_zeta").values(),
            memory.object("m_elemBC").values(),
            memory.object("m_x").values(),
            memory.object("m_y").values(),
            memory.object("m_z").values(),
            2.0,
            0.5,
            2.0,
        )
        assert np.allclose(outcome.outputs["m_qq"], qq_ref)
        assert np.allclose(outcome.outputs["m_ql"], ql_ref)

    def test_amg_converges_to_direct_solution(self):
        from repro.workloads.amg import AMGWorkload, reference_solution

        workload = AMGWorkload(n=8, m=4, restarts=3)
        instance = workload.fresh_instance()
        A = instance.memory.object("A").values().reshape(8, 8)
        b = instance.memory.object("b").values()
        outcome = instance.run()
        expected = reference_solution(A, b)
        rel = np.linalg.norm(outcome.outputs["x"] - expected) / np.linalg.norm(expected)
        assert rel < 1e-2
        assert outcome.return_value < 0.1 * np.linalg.norm(b)

    def test_matmul_matches_numpy(self):
        from repro.workloads.matmul import MatmulWorkload, reference_matmul

        workload = MatmulWorkload(n=5)
        instance = workload.fresh_instance()
        A = instance.memory.object("A").values().reshape(5, 5)
        B = instance.memory.object("B").values().reshape(5, 5)
        outcome = instance.run()
        assert np.allclose(outcome.outputs["C"].reshape(5, 5), reference_matmul(A, B))

    def test_matmul_abft_matches_plain(self):
        from repro.workloads.matmul import MatmulWorkload

        plain = MatmulWorkload(n=5).golden_run().outputs["C"]
        abft = MatmulWorkload(n=5, abft=True).golden_run().outputs["C"]
        assert np.allclose(plain, abft)

    def test_particle_filter_matches_reference(self):
        from repro.workloads.particle_filter import (
            ParticleFilterWorkload,
            reference_particle_filter,
        )

        workload = ParticleFilterWorkload(nparticles=12, nframes=2)
        instance = workload.fresh_instance()
        memory = instance.memory
        xe_ref = reference_particle_filter(
            memory.object("arrayX").values(),
            memory.object("arrayY").values(),
            memory.object("observations").values(),
            memory.object("randn_seq").values(),
            memory.object("randu_seq").values(),
            12,
            2,
        )
        outcome = instance.run()
        assert np.allclose(outcome.outputs["xe"], xe_ref, rtol=1e-9)

    def test_particle_filter_abft_matches_plain(self):
        from repro.workloads.particle_filter import ParticleFilterWorkload

        plain = ParticleFilterWorkload(nparticles=12, nframes=2).golden_run()
        abft = ParticleFilterWorkload(nparticles=12, nframes=2, abft=True).golden_run()
        assert np.allclose(plain.outputs["xe"], abft.outputs["xe"], rtol=1e-9)


class TestAbftChecksums:
    def test_encode_verify_correct(self):
        from repro.abft import (
            correct_single_error,
            encode_column_checksums,
            encode_row_checksums,
            locate_single_error,
            verify_product,
        )

        rng = np.random.default_rng(0)
        a, b = rng.standard_normal((6, 6)), rng.standard_normal((6, 6))
        c = a @ b
        rows = encode_row_checksums(a, b)
        cols = encode_column_checksums(a, b)
        assert verify_product(c, rows, cols)
        corrupted = c.copy()
        corrupted[2, 4] += 3.5
        assert not verify_product(corrupted, rows, cols)
        location = locate_single_error(corrupted, rows, cols)
        assert location is not None and location[:2] == (2, 4)
        assert location[2] == pytest.approx(3.5)
        fixed, applied = correct_single_error(corrupted, rows, cols)
        assert applied and np.allclose(fixed, c)

    def test_no_correction_when_clean(self):
        from repro.abft import correct_single_error, encode_column_checksums, encode_row_checksums

        rng = np.random.default_rng(1)
        a, b = rng.standard_normal((4, 4)), rng.standard_normal((4, 4))
        c = a @ b
        fixed, applied = correct_single_error(
            c, encode_row_checksums(a, b), encode_column_checksums(a, b)
        )
        assert not applied and fixed is c
