"""Trace sinks and the pre-decoded engine's event stream.

The contract under test: the engine produces *bit-identical* executions and
event streams to the tree-walking interpreter, into any sink implementation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.tracing import ColumnarTraceSink, CountingSink, Trace, TraceCursor
from repro.tracing.events import TraceEvent
from repro.vm import Engine, Interpreter
from repro.workloads.registry import get_workload

_EVENT_FIELDS = TraceEvent.__slots__

WORKLOADS = ["matmul", "cg", "lulesh"]


def _events_equal(a: TraceEvent, b: TraceEvent) -> bool:
    return all(getattr(a, f) == getattr(b, f) for f in _EVENT_FIELDS)


def _run(workload, executor: str, sink):
    instance = workload.fresh_instance()
    if executor == "interpreter":
        result = Interpreter(instance.module, instance.memory, trace=sink).run(
            workload.entry, instance.args
        )
    else:
        result = Engine(instance.module, instance.memory, sink=sink).run(
            workload.entry, instance.args
        )
    outputs = {
        name: instance.memory.object(name).values()
        for name in workload.output_objects
    }
    return result, outputs


# --------------------------------------------------------------------- #
# engine vs interpreter equivalence
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("name", WORKLOADS)
def test_engine_trace_matches_interpreter(name):
    workload = get_workload(name)
    ri, outs_i = _run(workload, "interpreter", Trace())
    re, outs_e = _run(workload, "engine", Trace())
    assert ri.steps == re.steps
    assert ri.return_value == re.return_value
    assert len(ri.trace) == len(re.trace)
    for a, b in zip(ri.trace, re.trace):
        assert _events_equal(a, b), f"event {a.dynamic_id} differs"
    for obj in outs_i:
        assert np.array_equal(
            outs_i[obj].view(np.uint8), outs_e[obj].view(np.uint8)
        ), obj


def test_engine_untraced_run_matches_traced_results():
    workload = get_workload("matmul")
    traced, outs_traced = _run(workload, "engine", Trace())
    bare, outs_bare = _run(workload, "engine", None)
    assert bare.steps == traced.steps
    assert bare.return_value == traced.return_value
    for obj in outs_traced:
        assert np.array_equal(outs_traced[obj], outs_bare[obj])


# --------------------------------------------------------------------- #
# columnar sink
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("name", WORKLOADS)
def test_columnar_sink_reconstructs_full_events(name):
    workload = get_workload(name)
    full, _ = _run(workload, "engine", Trace())
    compact, _ = _run(workload, "engine", ColumnarTraceSink())
    assert len(full.trace) == len(compact.trace)
    for a, b in zip(full.trace, compact.trace):
        assert _events_equal(a, b), f"event {a.dynamic_id} differs"


def test_columnar_sink_random_access_and_histogram():
    workload = get_workload("matmul")
    result, _ = _run(workload, "engine", ColumnarTraceSink())
    sink = result.trace
    trace, _ = _run(workload, "engine", Trace())
    assert sink.opcode_histogram() == trace.trace.opcode_histogram()
    middle = len(sink) // 2
    assert _events_equal(sink[middle], trace.trace[middle])
    assert sink[-1].dynamic_id == len(sink) - 1
    addresses = sink.addresses()
    assert addresses and all(
        sink[i].address == address for i, address in addresses[:25]
    )


def test_columnar_sink_to_trace_round_trip():
    workload = get_workload("lulesh")
    compact, _ = _run(workload, "engine", ColumnarTraceSink())
    materialised = compact.trace.to_trace()
    direct, _ = _run(workload, "engine", Trace())
    assert len(materialised) == len(direct.trace)
    for a, b in zip(materialised, direct.trace):
        assert _events_equal(a, b)
    # the materialised trace has working query indices
    loads = materialised.loads_for(workload.output_objects[0])
    assert loads == direct.trace.loads_for(workload.output_objects[0])


def test_columnar_sink_rejects_out_of_order_appends():
    sink = ColumnarTraceSink()
    workload = get_workload("matmul")
    traced, _ = _run(workload, "engine", Trace())
    with pytest.raises(ValueError):
        sink.append(traced.trace[5])


# --------------------------------------------------------------------- #
# counting sink
# --------------------------------------------------------------------- #
def test_counting_sink_counts_without_storing():
    workload = get_workload("cg")
    counted, _ = _run(workload, "engine", CountingSink())
    traced, _ = _run(workload, "engine", Trace())
    sink = counted.trace
    assert sink.total == counted.steps == traced.steps
    assert len(sink) == sink.total
    assert sink.by_opcode == traced.trace.opcode_histogram()


def test_counting_sink_accepts_full_events_too():
    workload = get_workload("matmul")
    traced, _ = _run(workload, "engine", Trace())
    sink = CountingSink()
    for event in traced.trace:
        sink.append(event)
    assert sink.total == len(traced.trace)


# --------------------------------------------------------------------- #
# cursor API
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("sink_cls", [Trace, ColumnarTraceSink])
def test_reevaluate_at_over_any_trace_like_source(sink_cls):
    """The cursor-based re-evaluation works against full and columnar traces."""
    from repro.core.reexec import ReexecStatus, reevaluate_at

    workload = get_workload("matmul")
    result, _ = _run(workload, "engine", sink_cls())
    source = result.trace
    # recomputing an event with its own recorded operands reproduces its result
    checked = 0
    for event in source:
        if event.result_value is None or event.is_load or event.is_call:
            continue
        outcome = reevaluate_at(source, event.dynamic_id, event.operand_values)
        if outcome.status is ReexecStatus.VALUE:
            assert outcome.value == event.result_value, event.dynamic_id
            checked += 1
        if checked >= 50:
            break
    assert checked >= 10
    with pytest.raises(IndexError):
        reevaluate_at(source, len(source), ())
    with pytest.raises(ValueError):
        reevaluate_at(source, -1, ())


@pytest.mark.parametrize("sink_cls", [Trace, ColumnarTraceSink])
def test_cursor_over_any_trace_like_source(sink_cls):
    workload = get_workload("matmul")
    result, _ = _run(workload, "engine", sink_cls())
    source = result.trace
    cursor = TraceCursor(source)
    assert cursor.peek().dynamic_id == 0
    assert cursor.advance().dynamic_id == 0
    assert cursor.position == 1
    window = list(cursor.seek(10).take(5))
    assert [e.dynamic_id for e in window] == [10, 11, 12, 13, 14]
    assert cursor.position == 15
    cursor.seek(len(source))
    assert cursor.exhausted and cursor.peek() is None and cursor.remaining() == 0
    # a window over the end is truncated, not an error
    tail = list(cursor.seek(len(source) - 2).take(10))
    assert len(tail) == 2
