"""CLI smoke tests: `python -m repro campaign run|resume|status|export|report`."""

import json
import os
import subprocess
import sys

import pytest

from repro.campaigns.cli import main

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")


def _run_module(*argv, check=True):
    """Run `python -m repro ...` in a subprocess (the real CLI entry point)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
        timeout=600,
    )
    if check and proc.returncode != 0:
        raise AssertionError(
            f"CLI failed ({proc.returncode}):\nstdout:\n{proc.stdout}\n"
            f"stderr:\n{proc.stderr}"
        )
    return proc


@pytest.fixture()
def store_path(tmp_path):
    return str(tmp_path / "campaigns.sqlite")


class TestSubprocessSmoke:
    def test_campaign_run_matmul_fixed64(self, store_path):
        proc = _run_module(
            "campaign", "run", "matmul", "--plan", "fixed:64",
            "--store", store_path, "--workers", "1",
        )
        assert "complete" in proc.stdout
        assert "wilson CI" in proc.stdout
        assert os.path.exists(store_path)

        # rerunning the identical command dedupes into a no-op resume
        again = _run_module(
            "campaign", "run", "matmul", "--plan", "fixed:64",
            "--store", store_path, "--workers", "1",
        )
        assert "executed 0 shards" in again.stdout


class TestInProcessCommands:
    def _base(self, store_path):
        return ["--store", store_path, "--workers", "1"]

    def test_run_interrupt_resume_status_export_report(self, store_path, tmp_path, capsys):
        assert main(
            ["campaign", "run", "matmul", "--plan", "fixed:16",
             "--shard-size", "8", "--max-shards", "1", *self._base(store_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "interrupted" in out

        assert main(
            ["campaign", "resume", "matmul", "--plan", "fixed:16",
             "--shard-size", "8", *self._base(store_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "complete" in out and "skipped 1" in out

        assert main(["campaign", "status", "--store", store_path]) == 0
        listing = capsys.readouterr().out
        assert "matmul" in listing and "complete" in listing

        assert main(
            ["campaign", "status", "matmul", "--plan", "fixed:16",
             "--shard-size", "8", "--store", store_path]
        ) == 0
        detail = capsys.readouterr().out
        assert "run 1: executed 1 shards, skipped 0" in detail
        assert "run 2: executed 1 shards, skipped 1" in detail

        out_path = str(tmp_path / "dump.jsonl")
        assert main(
            ["campaign", "export", "matmul", "--plan", "fixed:16",
             "--shard-size", "8", "--store", store_path, "--out", out_path]
        ) == 0
        with open(out_path) as fh:
            rows = [json.loads(line) for line in fh]
        assert rows[0]["type"] == "campaign"
        assert sum(row["type"] == "outcome" for row in rows) == 16

        assert main(
            ["campaign", "report", "matmul", "--plan", "fixed:16",
             "--shard-size", "8", "--max-injections", "10",
             "--bit-stride", "16", *self._base(store_path)]
        ) == 0
        report = capsys.readouterr().out
        assert "aDVF" in report

    def test_status_by_campaign_id(self, store_path, capsys):
        main(["campaign", "run", "matmul", "--plan", "fixed:8",
              *self._base(store_path)])
        listing_id = capsys.readouterr().out.split()[1].rstrip(":")
        assert listing_id.startswith("c")
        assert main(["campaign", "status", listing_id, "--store", store_path]) == 0
        assert listing_id in capsys.readouterr().out

    def test_workloads_listing(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "matmul" in out and "lulesh" in out

    def test_error_paths(self, store_path, capsys):
        with pytest.raises(SystemExit):
            main(["campaign", "resume", "matmul", "--store", store_path])
        with pytest.raises(SystemExit):
            main(["campaign", "status", "not-a-workload", "--plan", "fixed:8",
                  "--store", store_path])
        with pytest.raises(SystemExit):
            main(["campaign", "run", "matmul", "--plan", "bogus:1",
                  "--store", store_path])


class TestStatsCommand:
    def _base(self, store_path):
        return ["--store", store_path, "--workers", "1"]

    def test_stats_renders_persisted_metrics(self, store_path, tmp_path, capsys):
        assert main(
            ["campaign", "run", "matmul", "--plan", "fixed:16",
             *self._base(store_path)]
        ) == 0
        capsys.readouterr()

        assert main(
            ["stats", "matmul", "--plan", "fixed:16", "--store", store_path]
        ) == 0
        out = capsys.readouterr().out
        assert "campaign :" in out and "matmul" in out
        assert "store schema v7" in out
        assert "runs     : 1 of 1 with metrics" in out
        # engine activity made it through the run cursor into the store
        assert "engine.ops" in out
        assert "trace cache" in out and "mir cache" in out
        # the run traces once, so exactly one trace-cache miss is recorded
        assert "trace cache: 0 hits / 1 misses" in out

    def test_stats_metrics_survive_worker_processes(self, store_path, capsys):
        """Worker-side deltas fold into the parent and persist (2 workers)."""
        assert main(
            ["campaign", "run", "matmul", "--plan", "fixed:16",
             "--store", store_path, "--workers", "2", "--shard-size", "8"]
        ) == 0
        capsys.readouterr()
        assert main(
            ["stats", "matmul", "--plan", "fixed:16", "--shard-size", "8",
             "--store", store_path]
        ) == 0
        out = capsys.readouterr().out
        # injections replay in workers; their engine ops must be folded in
        assert "replay.faults" in out
        assert "trace cache: 0 hits / 1 misses" in out

    def test_stats_promfile_export(self, store_path, tmp_path, capsys):
        main(["campaign", "run", "matmul", "--plan", "fixed:8",
              *self._base(store_path)])
        capsys.readouterr()
        prom_path = str(tmp_path / "repro.prom")
        assert main(
            ["stats", "matmul", "--plan", "fixed:8", "--store", store_path,
             "--promfile", prom_path]
        ) == 0
        text = open(prom_path).read()
        assert "# TYPE repro_engine_ops counter" in text
        assert "repro_engine_ops{" in text

    def test_status_metrics_flag(self, store_path, capsys):
        main(["campaign", "run", "matmul", "--plan", "fixed:8",
              *self._base(store_path)])
        capsys.readouterr()
        assert main(
            ["campaign", "status", "matmul", "--plan", "fixed:8",
             "--store", store_path, "--metrics"]
        ) == 0
        out = capsys.readouterr().out
        assert "engine.ops" in out

    def test_stats_without_metrics_explains(self, store_path, capsys, monkeypatch):
        from repro.obs.metrics import configure

        monkeypatch.setenv("REPRO_METRICS", "0")
        configure(None)
        try:
            main(["campaign", "run", "matmul", "--plan", "fixed:8",
                  *self._base(store_path)])
            capsys.readouterr()
            assert main(
                ["stats", "matmul", "--plan", "fixed:8", "--store", store_path]
            ) == 0
            out = capsys.readouterr().out
            assert "no run metrics recorded" in out
        finally:
            monkeypatch.delenv("REPRO_METRICS")
            configure(None)
