"""Copy-on-write semantics of :meth:`Memory.fork` and engine forks.

The batched replay scheduler forks the walk's memory image at every
eviction point and hands each divergent fault its own clone; these tests
pin down the isolation contract that makes that safe: arrays are shared
until written, the first typed write on either side copies privately, and
allocator state (bases, counters, stack objects) is carried over exactly.

The suite also runs in the CI pure-python leg (``REPRO_NO_NUMPY=1``) —
the fork path itself is backend-independent.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ir.types import F64, I32
from repro.vm.engine import Engine
from repro.vm.memory import Memory
from repro.workloads.registry import get_workload


@pytest.fixture
def memory():
    mem = Memory()
    mem.allocate("a", F64, 4, initial=[1.0, 2.0, 3.0, 4.0])
    mem.allocate("idx", I32, 3, initial=[7, 8, 9])
    return mem


class TestMemoryFork:
    def test_fork_shares_arrays_until_written(self, memory):
        clone = memory.fork()
        assert clone.object("a").array is memory.object("a").array
        assert clone.object("idx").array is memory.object("idx").array

    def test_write_to_clone_is_invisible_to_source(self, memory):
        clone = memory.fork()
        clone.object("a").set(1, -5.5)
        assert clone.object("a").get(1) == -5.5
        assert memory.object("a").get(1) == 2.0
        # only the written object detached; the other stays shared
        assert clone.object("a").array is not memory.object("a").array
        assert clone.object("idx").array is memory.object("idx").array

    def test_write_to_source_is_invisible_to_clone(self, memory):
        clone = memory.fork()
        memory.object("idx").set(0, 42)
        assert memory.object("idx").get(0) == 42
        assert clone.object("idx").get(0) == 7

    def test_fill_from_triggers_copy(self, memory):
        clone = memory.fork()
        clone.object("idx").fill_from([1, 2, 3])
        assert memory.object("idx").get(2) == 9
        assert clone.object("idx").get(2) == 3

    def test_flip_bit_at_respects_cow(self, memory):
        clone = memory.fork()
        address = clone.object("idx").address_of(1)
        clone.flip_bit_at(address, 0)
        assert clone.object("idx").get(1) == 9  # 8 ^ 1
        assert memory.object("idx").get(1) == 8

    def test_addresses_and_resolution_survive_the_fork(self, memory):
        clone = memory.fork()
        for name in ("a", "idx"):
            assert clone.object(name).base == memory.object(name).base
        obj, index = clone.resolve(memory.object("a").address_of(2))
        assert obj is clone.object("a") and index == 2

    def test_allocator_state_is_cloned(self, memory):
        clone = memory.fork()
        source_obj = memory.allocate_stack("t", F64, 2)
        clone_obj = clone.allocate_stack("t", F64, 2)
        # same counter at fork time -> same deterministic name and base
        assert source_obj.name == clone_obj.name
        assert source_obj.base == clone_obj.base
        assert source_obj.name not in clone._objects or (
            clone.object(clone_obj.name) is clone_obj
        )
        # and the allocations are invisible across the fork boundary
        assert clone_obj.name in clone
        assert source_obj.name in memory

    def test_release_on_clone_keeps_source_object(self, memory):
        clone = memory.fork()
        clone.release(clone.object("a"))
        assert "a" not in clone
        assert "a" in memory
        assert memory.object("a").get(0) == 1.0

    def test_fork_of_fork(self, memory):
        first = memory.fork()
        second = first.fork()
        second.object("a").set(0, 99.0)
        assert memory.object("a").get(0) == 1.0
        assert first.object("a").get(0) == 1.0
        assert second.object("a").get(0) == 99.0

    def test_values_returns_private_copies(self, memory):
        clone = memory.fork()
        values = clone.object("a").values()
        values[0] = -1.0
        assert clone.object("a").get(0) == 1.0
        assert memory.object("a").get(0) == 1.0

    def test_capture_image_of_shared_clone_matches_source(self, memory):
        clone = memory.fork()
        assert clone.capture_image() == memory.capture_image()
        clone.object("a").set(3, 0.0)
        assert clone.capture_image() != memory.capture_image()

    def test_cast_value_predicts_stored_bits(self, memory):
        a = memory.object("a")
        idx = memory.object("idx")
        for value in (1.5, -0.0, 2.0**-1030, float("inf")):
            a.set(0, value)
            assert a.cast_value(value) == a.get(0)
        for value in (5, -5, 2**40, 2**31 - 1, 2**31):
            idx.set(0, value)
            assert idx.cast_value(value) == idx.get(0)


class TestEngineFork:
    def test_engine_fork_isolation_and_resume(self):
        """A forked engine state replays to the same result as the original
        run, and its mutations never leak into the walk's memory."""
        workload = get_workload("matmul", n=4)
        instance = workload.fresh_instance()
        engine = Engine(instance.module, instance.memory, snapshot_interval=300)
        result = engine.run(workload.entry, instance.args)
        golden = {
            name: instance.memory.object(name).values()
            for name in workload.output_objects
        }

        # walk a cursor to mid-run, fork, finish both sides independently
        cursor = Engine(instance.module, instance.memory)
        cursor.prepare_resume(engine.snapshots[0])
        cursor.run_to(engine.snapshots[2].dyn)
        assert cursor.paused
        fork = cursor.capture_fork()

        replica = Engine(instance.module, fork.memory)
        replica.adopt_fork(fork)
        replica_result = replica._loop()
        assert replica_result.steps == result.steps
        assert replica_result.return_value == result.return_value
        for name in golden:
            assert np.array_equal(
                golden[name], replica.memory.object(name).values()
            ), name

        # the cursor finishes on its own memory, unaffected by the replica
        cursor.run_to(engine.snapshots[3].dyn)
        cursor_result = cursor._loop()
        assert cursor_result.steps == result.steps
        for name in golden:
            assert np.array_equal(
                golden[name], instance.memory.object(name).values()
            ), name

    def test_state_digest_matches_snapshot_digest(self):
        from repro.vm.engine import snapshot_digest

        workload = get_workload("matmul", n=4)
        instance = workload.fresh_instance()
        engine = Engine(instance.module, instance.memory, snapshot_interval=250)
        engine.run(workload.entry, instance.args)
        snapshots = engine.snapshots
        assert len(snapshots) >= 3

        cursor = Engine(instance.module, instance.memory)
        cursor.prepare_resume(snapshots[0])
        digests = {snap.dyn: snapshot_digest(snap) for snap in snapshots}
        for snap in snapshots[1:3]:
            cursor.run_to(snap.dyn)
            assert cursor.state_digest() == digests[snap.dyn]
        # a mutated clone digests differently
        fork = cursor.capture_fork()
        clone = Engine(instance.module, fork.memory)
        clone.adopt_fork(fork)
        assert clone.state_digest() == cursor.state_digest()
        clone.memory.object("C").set(0, 123.456)
        assert clone.state_digest() != cursor.state_digest()
