"""The protection subsystem: schemes, advisor, apply, closed-loop validation.

The headline property (ISSUE 4 acceptance): for matmul and cg, the
advisor's plan under a 2x overhead budget, once applied and validated by
injection campaign, yields a measurably higher corrected/benign fraction
on the protected objects than the unprotected baseline — and the whole
loop round-trips through the campaign store's v3 tables.
"""

import numpy as np
import pytest

from repro.campaigns.store import CampaignStore
from repro.core.advf import AdvfEngine, AnalysisConfig
from repro.core.patterns import SingleBitModel
from repro.protection import (
    DuplicatedWorkload,
    ProtectionAdvisor,
    ProtectionPlan,
    apply_plan,
    applicable_schemes,
    get_scheme,
    measure_overhead,
    validate_plan,
)
from repro.protection.advisor import Candidate, Selection, _solve_exact, _solve_greedy
from repro.protection.schemes import SCHEMES, SchemeCost, WorkloadCostInputs
from repro.workloads.registry import get_workload

MATMUL_KWARGS = {"n": 4}
CG_KWARGS = {"n": 8, "cgitmax": 2}


@pytest.fixture(scope="module")
def matmul():
    return get_workload("matmul", **MATMUL_KWARGS)


@pytest.fixture(scope="module")
def matmul_trace(matmul):
    return matmul.traced_run(columnar=True).trace


def _analyze(workload, objects=None):
    engine = AdvfEngine(
        workload,
        AnalysisConfig(
            max_injections=30,
            error_model=SingleBitModel(bit_stride=8),
            equivalence_samples=1,
            injection_samples_per_class=1,
        ),
    )
    names = list(objects or workload.target_objects)
    reports = {name: engine.analyze_object(name) for name in names}
    return reports, engine.trace


# --------------------------------------------------------------------- #
# schemes: applicability and cost models
# --------------------------------------------------------------------- #
class TestSchemes:
    def test_registry_and_applicability(self):
        assert set(SCHEMES) == {
            "abft_checksum", "duplication", "reexec", "detect_checksum"
        }
        # bespoke ABFT only where a hand-written variant exists
        assert "abft_checksum" in [
            s.name for s in applicable_schemes("matmul", "C")
        ]
        assert "abft_checksum" not in [
            s.name for s in applicable_schemes("cg", "r")
        ]
        # the replication family applies everywhere
        assert {"duplication", "reexec", "detect_checksum"} <= {
            s.name for s in applicable_schemes("cg", "colidx")
        }

    def test_coverage_models(self):
        assert get_scheme("duplication").coverage.corrects_sdc
        assert get_scheme("detect_checksum").coverage.detects_sdc
        assert not get_scheme("detect_checksum").coverage.corrects_sdc
        assert not any(s.coverage.covers_crash for s in SCHEMES.values())

    @pytest.mark.parametrize("scheme_name", ["duplication", "reexec", "abft_checksum"])
    def test_cost_model_predicts_measured_ops(self, matmul, matmul_trace, scheme_name):
        """The trace-derived cost models match applied-variant op counts."""
        inputs = WorkloadCostInputs.from_workload(matmul, matmul_trace)
        cost = get_scheme(scheme_name).cost(matmul, inputs, "C")
        plan = ProtectionPlan(
            workload="matmul", workload_kwargs=MATMUL_KWARGS, budget=3.0,
            base_ops=inputs.base_ops,
            selections=[Selection("C", scheme_name, cost.extra_ops,
                                  cost.extra_bytes, 1.0, 1.0, 0.5)],
            predicted_extra_ops=cost.extra_ops,
            predicted_extra_bytes=cost.extra_bytes, method="exact",
        )
        measured = measure_overhead(matmul, apply_plan(plan))
        assert measured["outputs_identical"]
        assert measured["extra_ops"] > 0
        relative_error = abs(measured["extra_ops"] - cost.extra_ops) / measured["extra_ops"]
        assert relative_error < 0.10, (
            f"{scheme_name}: predicted {cost.extra_ops}, "
            f"measured {measured['extra_ops']}"
        )

    def test_replication_cost_is_program_wide(self, matmul, matmul_trace):
        inputs = WorkloadCostInputs.from_workload(matmul, matmul_trace)
        assert get_scheme("reexec").cost(matmul, inputs, "C").program_wide
        assert not get_scheme("abft_checksum").cost(matmul, inputs, "C").program_wide

    def test_shadow_bytes_accounted(self, matmul, matmul_trace):
        inputs = WorkloadCostInputs.from_workload(matmul, matmul_trace)
        dup = get_scheme("duplication").cost(matmul, inputs, "C")
        reexec = get_scheme("reexec").cost(matmul, inputs, "C")
        assert dup.extra_bytes == 2 * inputs.object_bytes
        assert reexec.extra_bytes == inputs.object_bytes


# --------------------------------------------------------------------- #
# generated duplicate-and-compare transform
# --------------------------------------------------------------------- #
class TestDuplicatedWorkload:
    @pytest.mark.parametrize("mode", ["vote", "adopt", "detect"])
    def test_golden_outputs_bit_identical(self, mode):
        base = get_workload("cg", **CG_KWARGS)
        protected = DuplicatedWorkload(base, mode=mode)
        base_outcome = base.golden_run()
        protected_outcome = protected.golden_run()
        for name in base.output_objects:
            assert np.array_equal(
                base_outcome.outputs[name], protected_outcome.outputs[name]
            )
        assert protected_outcome.return_value == base_outcome.return_value

    def test_void_entry_supported(self):
        base = get_workload("matmul", **MATMUL_KWARGS)  # matmul returns void
        protected = DuplicatedWorkload(base, mode="vote")
        outcome = protected.golden_run()
        assert np.array_equal(
            outcome.outputs["C"], base.golden_run().outputs["C"]
        )

    def test_shadow_objects_do_not_join_the_fault_space(self):
        """Sites of the original object names live in the primary replica
        only — shadow copies carry distinct names."""
        from repro.core.participation import find_participations

        base = get_workload("matmul", **MATMUL_KWARGS)
        protected = DuplicatedWorkload(base, mode="adopt")
        base_trace = base.traced_run(columnar=True).trace
        protected_trace = protected.traced_run(columnar=True).trace
        base_sites = find_participations(base_trace, "C")
        protected_sites = find_participations(protected_trace, "C")
        # the compare loop adds consumed C sites but no second replica worth
        assert len(base_sites) < len(protected_sites) < 2 * len(base_sites)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown duplication mode"):
            DuplicatedWorkload(get_workload("matmul"), mode="tmr9")


# --------------------------------------------------------------------- #
# advisor: optimisation and serialisation
# --------------------------------------------------------------------- #
def _candidate(obj, scheme, cost, reduction, program_wide=False):
    return Candidate(
        object_name=obj,
        scheme=scheme,
        cost=SchemeCost(extra_ops=cost, extra_bytes=0, program_wide=program_wide),
        reduction=reduction,
        vulnerability=reduction,
        effectiveness=1.0,
    )


class TestAdvisorOptimizer:
    def test_exact_beats_or_matches_greedy_on_object_scope_knapsack(self):
        # classic ratio-trap: greedy grabs the high-ratio small item, exact
        # finds the higher-total pair that exactly fills the budget.
        per_object = {
            "a": [_candidate("a", "s1", cost=60, reduction=100.0)],
            "b": [_candidate("b", "s1", cost=50, reduction=70.0)],
            "c": [_candidate("c", "s1", cost=50, reduction=70.0)],
        }
        names = ["a", "b", "c"]
        exact = _solve_exact(names, per_object, budget_ops=100)
        greedy = _solve_greedy(names, per_object, budget_ops=100)
        assert sorted(c.object_name for c in exact) == ["b", "c"]
        assert sum(c.reduction for c in exact) >= sum(c.reduction for c in greedy)

    def test_program_wide_cost_counted_once(self):
        per_object = {
            "a": [_candidate("a", "dup", cost=100, reduction=10.0, program_wide=True)],
            "b": [_candidate("b", "dup", cost=100, reduction=10.0, program_wide=True)],
        }
        chosen = _solve_exact(["a", "b"], per_object, budget_ops=100)
        # both objects fit under one shared payment
        assert sorted(c.object_name for c in chosen) == ["a", "b"]

    def test_budget_zero_selects_nothing(self):
        per_object = {"a": [_candidate("a", "s1", cost=10, reduction=5.0)]}
        assert _solve_exact(["a"], per_object, budget_ops=0) == []
        assert _solve_greedy(["a"], per_object, budget_ops=0) == []

    def test_zero_reduction_objects_left_unprotected(self, matmul, matmul_trace):
        from repro.core.advf import AdvfResult

        advisor = ProtectionAdvisor(matmul, matmul_trace, workload_kwargs=MATMUL_KWARGS)
        fully_masked = AdvfResult(
            object_name="C", value=1.0, participations=10, masked_events=10.0
        )
        plan = advisor.advise({"C": fully_masked}, budget=3.0)
        assert plan.selections == []
        assert plan.unprotected == ["C"]


class TestPlanSerialisation:
    def test_round_trip_and_stable_id(self, matmul, matmul_trace):
        reports, _ = _analyze(matmul)
        advisor = ProtectionAdvisor(matmul, matmul_trace, workload_kwargs=MATMUL_KWARGS)
        plan = advisor.advise(reports, budget=2.0)
        clone = ProtectionPlan.from_dict(plan.to_dict())
        assert clone.to_dict() == plan.to_dict()
        assert clone.plan_id == plan.plan_id
        # re-advising from the same inputs is deterministic
        again = advisor.advise(reports, budget=2.0)
        assert again.plan_id == plan.plan_id

    def test_store_round_trip(self, matmul, matmul_trace, tmp_path):
        reports, _ = _analyze(matmul)
        advisor = ProtectionAdvisor(matmul, matmul_trace, workload_kwargs=MATMUL_KWARGS)
        plan = advisor.advise(reports, budget=2.0)
        with CampaignStore(tmp_path / "s.sqlite") as store:
            store.save_protection_plan(
                plan.plan_id, plan.workload, plan.workload_kwargs,
                plan.budget, plan.to_dict(),
            )
            record = store.protection_plan(plan.plan_id)
            assert record.status == "planned"
            assert ProtectionPlan.from_dict(record.plan).plan_id == plan.plan_id
            assert store.protection_plans(workload="matmul")[0].plan_id == plan.plan_id


# --------------------------------------------------------------------- #
# the closed loop (ISSUE 4 acceptance criterion)
# --------------------------------------------------------------------- #
class TestClosedLoop:
    @pytest.mark.parametrize(
        "workload_name,kwargs",
        [("matmul", MATMUL_KWARGS), ("cg", CG_KWARGS)],
        ids=["matmul", "cg"],
    )
    def test_protection_measurably_reduces_vulnerability(
        self, workload_name, kwargs, tmp_path
    ):
        workload = get_workload(workload_name, **kwargs)
        reports, trace = _analyze(workload)
        advisor = ProtectionAdvisor(workload, trace, workload_kwargs=kwargs)
        plan = advisor.advise(reports, budget=2.0)
        assert plan.selections, "advisor found nothing to protect"
        assert plan.predicted_extra_ops <= 2.0 * plan.base_ops

        protected = apply_plan(plan)
        measured = measure_overhead(workload, protected)
        assert measured["outputs_identical"]
        # the budget holds in measured ops too (small slack for the model)
        assert measured["extra_ops"] <= 2.1 * measured["base_ops"]

        with CampaignStore(tmp_path / "store.sqlite") as store:
            store.save_protection_plan(
                plan.plan_id, plan.workload, plan.workload_kwargs,
                plan.budget, plan.to_dict(),
            )
            report = validate_plan(
                plan, store=store, bit_stride=8, max_tests=30
            )
            improvements = {
                name: report.improvement(name) for name in plan.protected_objects()
            }
            # every protected object improves; at least one markedly
            assert all(delta >= 0.0 for delta in improvements.values()), improvements
            assert max(improvements.values()) >= 0.15, improvements

            # durable rows back the report verbatim
            runs = store.validation_runs(plan.plan_id)
            assert len(runs) == 2 * len(plan.protected_objects())
            assert store.protection_plan(plan.plan_id).status == "validated"
            by_key = {(r.object_name, r.variant): r for r in runs}
            for outcome in report.outcomes:
                row = by_key[(outcome.object_name, outcome.variant)]
                assert row.successes == outcome.successes
                assert row.tests == outcome.tests
                assert row.histogram == outcome.histogram
                # v4: every row names the orchestrated campaign behind it,
                # whose shards carry timings + replay-batch telemetry
                assert row.campaign_id
                shards = store.completed_shards(row.campaign_id)
                assert shards, row.campaign_id
                assert sum(s.spec_count for s in shards.values()) >= row.tests


# --------------------------------------------------------------------- #
# validation through the orchestrator (ISSUE 5 acceptance criterion)
# --------------------------------------------------------------------- #
class TestOrchestratedValidation:
    def _plan(self, tmp_path):
        workload = get_workload("matmul", **MATMUL_KWARGS)
        reports, trace = _analyze(workload)
        advisor = ProtectionAdvisor(workload, trace, workload_kwargs=MATMUL_KWARGS)
        plan = advisor.advise(reports, budget=2.0)
        assert plan.selections
        return plan

    @staticmethod
    def _rows(store, plan_id):
        return [
            (r.object_name, r.variant, r.tests, r.successes,
             tuple(sorted(r.histogram.items())))
            for r in store.validation_runs(plan_id)
        ]

    def test_kill_and_resume_is_bit_identical(self, tmp_path):
        plan = self._plan(tmp_path)
        with CampaignStore(tmp_path / "straight.sqlite") as straight:
            validate_plan(
                plan, store=straight, max_tests=24, workers=1, shard_size=8
            )
            want = self._rows(straight, plan.plan_id)
            assert want

        with CampaignStore(tmp_path / "killed.sqlite") as killed:
            # kill mid-campaign: one shard per variant, nothing persisted
            validate_plan(
                plan, store=killed, max_tests=24, workers=1, shard_size=8,
                max_shards=1,
            )
            assert self._rows(killed, plan.plan_id) == []
            # resume == re-run: persisted shards are skipped, the rest
            # executed, and the final rows equal the uninterrupted run's
            validate_plan(
                plan, store=killed, max_tests=24, workers=1, shard_size=8
            )
            assert self._rows(killed, plan.plan_id) == want
            # the resume actually skipped work (run accounting proves it)
            from repro.protection.validate import validation_campaign

            for variant in ("baseline", "protected"):
                orchestrator = validation_campaign(
                    plan, killed, variant, max_tests=24, workers=1,
                    shard_size=8,
                )
                accounting = killed.run_accounting(orchestrator.campaign_id)
                assert len(accounting) == 2
                first_run, second_run = accounting
                assert first_run[1] == 1  # executed exactly max_shards
                assert second_run[2] >= 1  # resume skipped persisted shards
                shards = killed.completed_shards(orchestrator.campaign_id)
                assert {s.run_id for s in shards.values()} == {1, 2}

    def test_validate_honors_repro_workers(self, tmp_path, monkeypatch):
        from repro.protection.validate import validation_campaign

        plan = self._plan(tmp_path)
        monkeypatch.setenv("REPRO_WORKERS", "3")
        with CampaignStore(tmp_path / "workers.sqlite") as store:
            orchestrator = validation_campaign(plan, store, "baseline")
            assert orchestrator.workers == 3

    def test_protected_variant_is_registry_addressable(self, tmp_path):
        plan = self._plan(tmp_path)
        variant = get_workload("protected", plan=plan.to_dict())
        baseline = get_workload(plan.workload, **plan.workload_kwargs)
        golden_variant = variant.fresh_instance().run()
        golden_baseline = baseline.fresh_instance().run()
        for name in baseline.output_objects:
            assert np.array_equal(
                golden_variant.outputs[name], golden_baseline.outputs[name]
            ), name
        with pytest.raises(TypeError):
            get_workload("protected")
        with pytest.raises(TypeError):
            get_workload("protected", plan=plan.to_dict(), n=4)
