"""Parity oracle: the batched replay scheduler vs sequential replay.

The acceptance bar of the batched scheduler is *bit identity*: for every
registered workload and a diverse fault sample (operand flips, store-
destination flips, result flips; masked, SDC, crashing and addressing
faults), submitting the specs through
:meth:`~repro.core.replay.BatchedReplayContext.replay_many` must reproduce
per-fault sequential :meth:`~repro.core.replay.ReplayContext.replay`
exactly — same outcome (corrupted output bits, return value, step count),
same exception type and message for crashes/hangs, and, when both paths
prove golden convergence, a batched convergence op at or before the
sequential one (the lockstep walk detects state re-convergence at the
divergence-death op; sequential only probes at checkpoint positions).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.injector import DeterministicFaultInjector
from repro.core.replay import BatchedReplayContext, ReplayContext
from repro.core.sites import enumerate_fault_sites
from repro.vm.faults import FaultSpec, FaultTarget
from repro.workloads.registry import get_workload, workload_names

#: Reduced problem sizes so the all-workload parity sweep stays fast.
SMALL_KWARGS = {
    "amg": {"n": 6, "m": 2},
    "cg": {"n": 10, "cgitmax": 2},
    "lu": {"n": 8, "niter": 1},
    "lulesh": {"num_elem": 12},
    "matmul": {"n": 5},
    "matmul_abft": {"n": 5},
    "mg": {"nf": 9, "ncycles": 1},
    "pf": {"nparticles": 8, "nframes": 1},
    "pf_abft": {"nparticles": 8, "nframes": 1},
}

ALL_WORKLOADS = workload_names()


def _small(name):
    return get_workload(name, **SMALL_KWARGS.get(name, {}))


def _sample_specs(workload, trace, per_object=24, bit_stride=7):
    """A deterministic, diverse sample of the workload's fault space."""
    specs = []
    for target in workload.target_objects:
        sites = enumerate_fault_sites(trace, target, bit_stride=bit_stride)
        step = max(1, len(sites) // per_object)
        specs.extend(site.to_spec() for site in sites[::step][:per_object])
    # result-target faults exercise the evict-at-birth private path
    for event in list(trace)[:: max(1, len(trace) // 6)]:
        if event.result_value is not None:
            specs.append(FaultSpec(
                dynamic_id=event.dynamic_id,
                bit=17 % max(1, event.result_type.bits),
                target=FaultTarget.RESULT,
            ))
    return specs


def _sequential_outcomes(context, specs):
    out = []
    for spec in specs:
        try:
            outcome = context.replay(spec)
        except Exception as exc:  # noqa: BLE001 - crash parity checked below
            out.append(("error", exc, None))
            continue
        out.append(("ok", outcome, context))
    return out


# --------------------------------------------------------------------- #
# the core property: batched == sequential, bit for bit
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("name", ALL_WORKLOADS)
def test_batched_replay_bit_identical_to_sequential(name):
    workload = _small(name)
    trace = workload.traced_run().trace
    specs = _sample_specs(workload, trace)
    assert specs, "sample must not be empty"

    sequential = ReplayContext(workload)
    expected = _sequential_outcomes(sequential, specs)

    batched = BatchedReplayContext(workload)
    results = batched.replay_many(specs)
    assert len(results) == len(specs)
    assert batched.replays == len(specs)

    for index, (tag, payload, _) in enumerate(expected):
        result = results[index]
        assert result.spec == specs[index]
        if tag == "error":
            assert result.outcome is None
            assert type(result.error) is type(payload), (index, specs[index])
            assert str(result.error) == str(payload), (index, specs[index])
            continue
        assert result.error is None, (index, specs[index], result.error)
        outcome = result.outcome
        assert outcome.return_value == payload.return_value, (index, specs[index])
        assert outcome.steps == payload.steps, (index, specs[index])
        for obj in payload.outputs:
            assert np.array_equal(
                outcome.outputs[obj].view(np.uint8),
                payload.outputs[obj].view(np.uint8),
            ), (index, specs[index], obj, result.via)

    stats = batched.stats
    assert stats.faults == len(specs)
    assert stats.lockstep + stats.evicted == len(specs)
    assert stats.batches >= 1


@pytest.mark.parametrize("name", ["matmul", "cg"])
def test_batched_convergence_op_not_later_than_sequential(name):
    """When both paths prove golden convergence, the batched proof point is
    at or before the sequential checkpoint (never later), and both return
    the golden outcome."""
    workload = _small(name)
    trace = workload.traced_run().trace
    specs = _sample_specs(workload, trace, per_object=16)

    sequential = ReplayContext(workload)
    batched = BatchedReplayContext(workload)
    results = batched.replay_many(specs)

    compared = 0
    for spec, result in zip(specs, results):
        try:
            sequential.replay(spec)
        except Exception:
            continue
        # engine-level convergence telemetry of the sequential path
        seq_converged_at = None
        if sequential.detect_convergence:
            # re-run to read the flag off a fresh engine (replay() hides it)
            from repro.vm.engine import Engine

            engine = Engine(
                sequential.instance.module,
                sequential.instance.memory,
                fault=spec,
                max_steps=workload.max_steps,
            )
            engine.resume(
                sequential.snapshot_for(spec.dynamic_id),
                golden_schedule=sequential.snapshots,
            )
            if engine.converged:
                seq_converged_at = engine.converged_at
        if seq_converged_at is not None and result.converged_at is not None:
            assert result.converged_at <= seq_converged_at, spec
            compared += 1
    assert compared > 0, "sample should contain converging faults"


def test_batched_outcomes_match_injector_classification():
    """End to end through the injector: inject_many == per-spec inject."""
    workload = _small("cg")
    trace = workload.traced_run().trace
    specs = _sample_specs(workload, trace, per_object=12, bit_stride=5)

    sequential = DeterministicFaultInjector(workload, mode="rerun")
    batched = DeterministicFaultInjector(workload)
    batch_results = batched.inject_many(specs)
    assert len(batch_results) == len(specs)
    outcomes = set()
    for spec, got in zip(specs, batch_results):
        want = sequential.inject(spec)
        assert got.outcome is want.outcome, spec
        assert got.detail == want.detail, spec
        outcomes.add(got.outcome)
    assert len(outcomes) >= 2, "sample should exercise several outcome classes"


# --------------------------------------------------------------------- #
# scheduler mechanics
# --------------------------------------------------------------------- #
def test_plan_batches_groups_by_snapshot_interval():
    workload = _small("matmul")
    context = BatchedReplayContext(workload, checkpoint_interval=500)
    trace = workload.traced_run().trace
    specs = [
        site.to_spec()
        for site in enumerate_fault_sites(trace, "C", bit_stride=16)
    ]
    batches = context.plan_batches(specs)
    assert sum(len(batch.specs) for batch in batches) == len(specs)
    positions = [batch.snapshot_dyn for batch in batches]
    assert positions == sorted(positions)
    for batch in batches:
        for spec in batch.specs:
            assert context.snapshot_for(spec.dynamic_id).dyn == batch.snapshot_dyn


def test_memo_answers_repeated_submissions():
    """Divergent replays that record digests are answered by the memo when
    the same states recur — and the answers stay bit-identical."""
    workload = _small("matmul")
    context = BatchedReplayContext(workload)
    trace = workload.traced_run().trace
    specs = [
        site.to_spec()
        for site in enumerate_fault_sites(trace, "C", bit_stride=13)
    ][:40]
    first = context.replay_many(specs)
    second = context.replay_many(specs)
    for a, b in zip(first, second):
        assert (a.error is None) == (b.error is None)
        if a.outcome is not None:
            assert a.outcome.return_value == b.outcome.return_value
            assert a.outcome.steps == b.outcome.steps
            for obj in a.outcome.outputs:
                assert np.array_equal(a.outcome.outputs[obj], b.outcome.outputs[obj])
    assert context.stats.batches == 2
    assert context.stats.faults == 2 * len(specs)


def test_memo_hit_on_divergent_resubmission():
    """A fault that evicts into a private replay and completes records its
    digest tail in the convergence memo; resubmitting the same spec is
    answered from the memo, bit-identically.  Low-bit ``colidx`` flips on
    small cg diverge control flow (the gather walks a different column)
    without leaving the address space, which is exactly the
    evict-then-complete shape the memo exists for."""
    workload = _small("cg")
    trace = workload.traced_run().trace
    sites = enumerate_fault_sites(trace, "colidx", bit_stride=7)
    for site in sites[:12]:
        spec = site.to_spec()
        context = BatchedReplayContext(workload)
        first = context.replay_many([spec])[0]
        if not context.stats.evicted or first.error is not None:
            continue
        second = context.replay_many([spec])[0]
        assert context.stats.memo_hits >= 1
        assert second.outcome.return_value == first.outcome.return_value
        assert second.outcome.steps == first.outcome.steps
        for obj in first.outcome.outputs:
            assert np.array_equal(
                second.outcome.outputs[obj].view(np.uint8),
                first.outcome.outputs[obj].view(np.uint8),
            )
        break
    else:
        pytest.fail(
            "no divergent, completing colidx fault in the probe window"
        )


def test_duplicate_specs_in_one_batch():
    """Sampling with replacement submits identical specs; each resolves
    independently and identically."""
    workload = _small("matmul")
    trace = workload.traced_run().trace
    site = enumerate_fault_sites(trace, "C", bit_stride=11)[3]
    spec = site.to_spec()
    context = BatchedReplayContext(workload)
    results = context.replay_many([spec, spec, spec])
    reference = ReplayContext(workload).replay(spec)
    for result in results:
        assert result.error is None
        assert result.outcome.return_value == reference.return_value
        for obj in reference.outputs:
            assert np.array_equal(result.outcome.outputs[obj], reference.outputs[obj])


def test_detect_convergence_off_still_bit_identical():
    workload = _small("matmul")
    trace = workload.traced_run().trace
    specs = [
        site.to_spec()
        for site in enumerate_fault_sites(trace, "C", bit_stride=17)
    ][:20]
    sequential = ReplayContext(workload, detect_convergence=False)
    batched = BatchedReplayContext(workload, detect_convergence=False)
    results = batched.replay_many(specs)
    assert batched.stats.memo_hits == 0
    for spec, result in zip(specs, results):
        reference = sequential.replay(spec)
        assert result.outcome.steps == reference.steps
        for obj in reference.outputs:
            assert np.array_equal(
                result.outcome.outputs[obj].view(np.uint8),
                reference.outputs[obj].view(np.uint8),
            )


def test_empty_submission():
    workload = _small("matmul")
    context = BatchedReplayContext(workload)
    assert context.replay_many([]) == []
    assert context.stats.batches == 0
