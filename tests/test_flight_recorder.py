"""Campaign flight recorder: span persistence, timeline rendering, CLI."""

from __future__ import annotations

import pytest

from repro.campaigns.cli import main
from repro.campaigns.orchestrator import CampaignOrchestrator
from repro.campaigns.plans import FixedRandomPlan
from repro.campaigns.store import CampaignStore
from repro.obs.spans import (
    clear_span_context,
    disable_recording,
    drain_span_records,
    get_span_context,
    recording_enabled,
)
from repro.reporting import format_timeline

WORKLOAD = "matmul"
KWARGS = {"n": 4}


@pytest.fixture(autouse=True)
def _clean_recorder():
    yield
    disable_recording()
    clear_span_context()


def _orchestrator(store, tests=24, **kw):
    kw.setdefault("workers", 1)
    kw.setdefault("shard_size", 8)
    return CampaignOrchestrator(
        store, WORKLOAD, workload_kwargs=KWARGS,
        plan=FixedRandomPlan(tests=tests, seed=3), **kw
    )


class TestSpanPersistence:
    def test_run_persists_correlated_phase_spans(self, tmp_path):
        db = str(tmp_path / "store.sqlite")
        with CampaignStore(db) as store:
            orch = _orchestrator(store)
            result = orch.run()
            assert result.status == "complete"
            cid = orch.campaign_id
            run_ids = [row[0] for row in store.status(cid).runs]
        (run_id,) = run_ids

        # read back through a *fresh* store handle: the timeline must work
        # after the orchestrator (and its process, in real life) is gone
        with CampaignStore(db) as store:
            spans = store.run_spans(cid)
            assert spans, "campaign left no flight recording"
            names = {s.name for s in spans}
            assert {"campaign.trace", "campaign.analysis",
                    "campaign.shard", "campaign.run"} <= names
            for record in spans:
                assert record.run_id == run_id
                assert record.labels["campaign"] == cid
                assert record.labels["run"] == str(run_id)
                assert record.pid > 0
                assert record.duration_s >= 0
            # shard spans carry their shard; run-scoped phases are orphans
            shard_spans = [s for s in spans if s.name == "campaign.shard"]
            assert sorted(s.shard_index for s in shard_spans) == [0, 1, 2]
            for phase in ("campaign.trace", "campaign.analysis",
                          "campaign.run"):
                (record,) = [s for s in spans if s.name == phase]
                assert record.shard_index == -1
            # the run umbrella span covers every shard span
            (run_span,) = [s for s in spans if s.name == "campaign.run"]
            for shard in shard_spans:
                assert run_span.start_ts <= shard.start_ts
                assert shard.end_ts <= run_span.end_ts + 1e-6

            # and the waterfall renders purely from those rows
            rendered = format_timeline([
                {
                    "run_id": s.run_id, "name": s.name, "depth": s.depth,
                    "pid": s.pid, "shard_index": s.shard_index,
                    "start_ts": s.start_ts, "duration_s": s.duration_s,
                    "labels": s.labels,
                }
                for s in spans
            ])
            assert f"run {run_id}: {len(spans)} spans" in rendered
            assert "campaign.shard" in rendered and "#" in rendered

    def test_resume_records_its_own_run(self, tmp_path):
        db = str(tmp_path / "store.sqlite")
        with CampaignStore(db) as store:
            orch = _orchestrator(store)
            assert orch.run(max_shards=1).status == "interrupted"
            assert orch.resume().status == "complete"
            spans = store.run_spans(orch.campaign_id)
            by_run = {s.run_id for s in spans}
            assert by_run == {1, 2}
            # each run recorded its own umbrella span
            assert sum(s.name == "campaign.run" for s in spans) == 2

    def test_worker_processes_ship_their_spans(self, tmp_path):
        db = str(tmp_path / "store.sqlite")
        with CampaignStore(db) as store:
            orch = _orchestrator(store, tests=48, workers=2, shard_size=12)
            assert orch.run().status == "complete"
            spans = store.run_spans(orch.campaign_id)
            injects = [s for s in spans if s.name == "worker.inject"]
            assert injects, "workers shipped no spans"
            # worker spans are stamped with the shard that ran them and
            # keep the worker's own pid + the campaign correlation labels
            assert {s.shard_index for s in injects} == {0, 1, 2, 3}
            for record in injects:
                assert record.labels["campaign"] == orch.campaign_id
                assert record.labels["workload"] == WORKLOAD

    def test_recorder_state_restored_after_run(self):
        assert not recording_enabled()
        store = CampaignStore(":memory:")
        _orchestrator(store, tests=8).run()
        assert not recording_enabled()
        assert get_span_context() == {}
        assert drain_span_records() == []


class TestTimelineRendering:
    @staticmethod
    def _record(name, start, duration, depth=0, shard=-1, pid=100, run=1,
                **labels):
        return {
            "run_id": run, "name": name, "depth": depth, "pid": pid,
            "shard_index": shard, "start_ts": start, "duration_s": duration,
            "labels": {k: str(v) for k, v in labels.items()},
        }

    def test_golden_waterfall(self):
        records = [
            self._record("campaign.run", 0.0, 10.0),
            self._record("campaign.trace", 0.0, 2.0, depth=1),
            self._record("campaign.shard", 2.0, 4.0, depth=1, shard=0,
                         object="C"),
            self._record("campaign.shard", 6.0, 4.0, depth=1, shard=1,
                         object="C"),
        ]
        rendered = format_timeline(records, width=10)
        assert rendered.splitlines()[0] == "run 1: 4 spans"
        # each phase's bar is positioned and scaled against the run's wall
        assert "|##########|" in rendered  # campaign.run spans the window
        assert "|##        |" in rendered  # trace: first fifth
        assert "|  ####    |" in rendered  # shard 0: middle
        assert "|      ####|" in rendered  # shard 1: end
        assert "wall 10.000s" in rendered
        # one pid executed everything: no concurrency despite the overlap
        assert "peak concurrency 1" in rendered

    def test_concurrency_summary_counts_distinct_pids(self):
        records = [
            self._record("worker.inject", 0.0, 4.0, pid=101, shard=0),
            self._record("worker.inject", 1.0, 4.0, pid=102, shard=1),
        ]
        rendered = format_timeline(records)
        assert "2 pids" in rendered
        assert "peak concurrency 2" in rendered

    def test_limit_truncates_rows(self):
        records = [
            self._record(f"s{i}", float(i), 1.0) for i in range(5)
        ]
        rendered = format_timeline(records, limit=2)
        assert "showing first 2" in rendered
        assert "s0" in rendered and "s4" not in rendered

    def test_empty_recording(self):
        assert "no spans recorded" in format_timeline([])


class TestTimelineCli:
    def test_timeline_command_renders_from_store(self, tmp_path, capsys):
        store_path = str(tmp_path / "store.sqlite")
        assert main(
            ["campaign", "run", "matmul", "--plan", "fixed:16",
             "--shard-size", "8", "--store", store_path, "--workers", "1"]
        ) == 0
        capsys.readouterr()
        assert main(
            ["timeline", "matmul", "--plan", "fixed:16", "--shard-size", "8",
             "--store", store_path]
        ) == 0
        out = capsys.readouterr().out
        assert "recorded spans" in out
        assert "campaign.shard" in out
        assert "peak concurrency" in out
