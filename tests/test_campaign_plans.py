"""Sampling plans: determinism, serialization round-trips, CLI parsing."""

import pytest

from repro.campaigns.plans import (
    AdaptivePlan,
    ExhaustivePlan,
    FixedRandomPlan,
    StratifiedPlan,
    parse_plan,
    plan_from_dict,
)
from repro.core.sites import enumerate_fault_sites
from repro.workloads.matmul import MatmulWorkload


@pytest.fixture(scope="module")
def matmul_trace():
    return MatmulWorkload(n=4).traced_run().trace


class TestSerialization:
    @pytest.mark.parametrize(
        "plan",
        [
            ExhaustivePlan(bit_stride=8),
            FixedRandomPlan(tests=64, seed=7, objects=("C",)),
            StratifiedPlan(per_stratum=5, intervals=3, seed=2),
            AdaptivePlan(target_half_width=0.08, batch_size=16, max_batches=10),
        ],
    )
    def test_round_trip(self, plan):
        rebuilt = plan_from_dict(plan.to_dict())
        assert rebuilt == plan
        assert rebuilt.to_dict() == plan.to_dict()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown plan kind"):
            plan_from_dict({"kind": "bogus"})

    def test_kind_tag_present(self):
        assert ExhaustivePlan().to_dict()["kind"] == "exhaustive"
        assert AdaptivePlan().to_dict()["kind"] == "adaptive"


class TestParsing:
    def test_parse_each_kind(self):
        assert parse_plan("exhaustive") == ExhaustivePlan()
        assert parse_plan("exhaustive:8") == ExhaustivePlan(bit_stride=8)
        assert parse_plan("fixed:64") == FixedRandomPlan(tests=64)
        assert parse_plan("fixed:500@7") == FixedRandomPlan(tests=500, seed=7)
        assert parse_plan("stratified:8x4") == StratifiedPlan(per_stratum=8, intervals=4)
        assert parse_plan("adaptive:0.05") == AdaptivePlan(target_half_width=0.05)
        assert parse_plan("adaptive:0.1x16@3") == AdaptivePlan(
            target_half_width=0.1, batch_size=16, seed=3
        )

    def test_parse_objects_threaded_through(self):
        plan = parse_plan("fixed:10", objects=["C", "A"])
        assert plan.objects == ("C", "A")

    @pytest.mark.parametrize(
        "bad", ["bogus:1", "fixed", "fixed:x", "adaptive:oops", "exhaustive:8@3"]
    )
    def test_parse_errors(self, bad):
        with pytest.raises(ValueError):
            parse_plan(bad)


class TestStaticPlans:
    def test_exhaustive_covers_all_sites(self, matmul_trace):
        plan = ExhaustivePlan(bit_stride=16)
        specs = plan.specs_for(matmul_trace, "C")
        sites = enumerate_fault_sites(matmul_trace, "C", bit_stride=16)
        assert specs == [s.to_spec() for s in sites]

    def test_fixed_is_deterministic_and_seed_sensitive(self, matmul_trace):
        a = FixedRandomPlan(tests=20, seed=1).specs_for(matmul_trace, "C")
        b = FixedRandomPlan(tests=20, seed=1).specs_for(matmul_trace, "C")
        c = FixedRandomPlan(tests=20, seed=2).specs_for(matmul_trace, "C")
        assert a == b
        assert a != c
        assert len(a) == 20

    def test_fixed_differs_per_object(self, matmul_trace):
        plan = FixedRandomPlan(tests=20, seed=1)
        assert plan.specs_for(matmul_trace, "A") != plan.specs_for(matmul_trace, "B")

    def test_stratified_covers_dynamic_intervals(self, matmul_trace):
        intervals = 4
        plan = StratifiedPlan(per_stratum=3, intervals=intervals, seed=0)
        specs = plan.specs_for(matmul_trace, "C")
        assert specs == plan.specs_for(matmul_trace, "C")  # deterministic
        sites = enumerate_fault_sites(matmul_trace, "C")
        first = min(s.participation.event_id for s in sites)
        last = max(s.participation.event_id for s in sites)
        span = last - first + 1
        hit = {
            min((spec.dynamic_id - first) * intervals // span, intervals - 1)
            for spec in specs
        }
        # every populated stratum contributed samples
        assert hit == set(range(intervals))
        assert len(specs) <= 3 * intervals

    def test_empty_object_rejected(self, matmul_trace):
        with pytest.raises(ValueError):
            FixedRandomPlan(tests=5).specs_for(matmul_trace, "nonexistent")


class TestAdaptivePlan:
    def test_batches_deterministic_and_distinct(self, matmul_trace):
        plan = AdaptivePlan(batch_size=8, seed=4)
        sites = plan.site_pool(matmul_trace, "C")
        b0 = plan.batch_specs(sites, "C", 0)
        assert b0 == plan.batch_specs(sites, "C", 0)
        assert b0 != plan.batch_specs(sites, "C", 1)
        assert len(b0) == 8

    def test_satisfied_uses_wilson_half_width(self):
        plan = AdaptivePlan(target_half_width=0.12, confidence=0.95)
        assert not plan.satisfied(0, 0)
        assert not plan.satisfied(5, 10)       # half-width ~0.26
        assert plan.satisfied(90, 100)         # half-width ~0.060
        # a high-precision target needs many more samples
        tight = AdaptivePlan(target_half_width=0.01)
        assert not tight.satisfied(90, 100)

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptivePlan(target_half_width=0.0)
        with pytest.raises(ValueError):
            AdaptivePlan(batch_size=0)
        with pytest.raises(ValueError):
            AdaptivePlan(confidence=0.5)

    def test_objects_for_defaults_to_workload_targets(self):
        workload = MatmulWorkload(n=4)
        assert AdaptivePlan().objects_for(workload) == ["C"]
        assert AdaptivePlan(objects=("A",)).objects_for(workload) == ["A"]
