"""Shared fixtures: compiled kernels, traced workloads, small analysis configs.

Heavy artefacts (golden traces) are session-scoped so the suite stays fast;
they are never mutated by tests.
"""

from __future__ import annotations

import pytest

from repro.core.advf import AnalysisConfig
from repro.core.patterns import SingleBitModel
from repro.frontend import compile_kernel
from repro.ir.types import F64, I64
from repro.tracing import Trace
from repro.vm import Interpreter, Memory


@pytest.fixture(autouse=True)
def _isolated_trace_cache(tmp_path, monkeypatch):
    """Point the golden-trace cache at a per-test directory.

    Keeps the suite from writing into (or reading stale artifacts from)
    the user-level ``~/.cache/repro/traces`` default.
    """
    monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "trace-cache"))


# --------------------------------------------------------------------- #
# tiny kernels used across VM / tracing / core tests
# --------------------------------------------------------------------- #
def saxpy(a: "double*", b: "double*", n: "i64", alpha: "double") -> "void":
    for i in range(n):
        b[i] = b[i] + alpha * a[i]


def accumulate(src: "double*", dst: "double*", n: "i64") -> "double":
    total = 0.0
    for i in range(n):
        dst[i] = 0.0
        dst[i] = dst[i] + src[i] * src[i]
        total = total + dst[i]
    return total


def gather(idx: "i64*", src: "double*", dst: "double*", n: "i64") -> "void":
    for i in range(n):
        dst[i] = src[idx[i]]


@pytest.fixture(scope="session")
def saxpy_function():
    return compile_kernel(saxpy)


@pytest.fixture()
def saxpy_setup(saxpy_function):
    """(module, memory, a, b) with fresh memory per test."""
    module = saxpy_function.metadata["module"]
    memory = Memory()
    a = memory.allocate("a", F64, 6, initial=[1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
    b = memory.allocate("b", F64, 6, initial=[10.0] * 6)
    return module, memory, a, b


@pytest.fixture(scope="session")
def accumulate_trace():
    """Traced run of the ``accumulate`` kernel plus its setup objects."""
    function = compile_kernel(accumulate)
    module = function.metadata["module"]
    memory = Memory()
    src = memory.allocate("src", F64, 5, initial=[1.0, -2.0, 3.0, 0.5, 4.0])
    dst = memory.allocate("dst", F64, 5)
    trace = Trace()
    result = Interpreter(module, memory, trace=trace).run(
        "accumulate", {"src": src, "dst": dst, "n": 5}
    )
    return {
        "module": module,
        "memory": memory,
        "trace": trace,
        "return_value": result.return_value,
    }


@pytest.fixture(scope="session")
def gather_trace():
    """Traced run of the index-driven ``gather`` kernel (integer data object)."""
    function = compile_kernel(gather)
    module = function.metadata["module"]
    memory = Memory()
    idx = memory.allocate("idx", I64, 4, initial=[3, 0, 2, 1])
    src = memory.allocate("src", F64, 4, initial=[10.0, 20.0, 30.0, 40.0])
    dst = memory.allocate("dst", F64, 4)
    trace = Trace()
    Interpreter(module, memory, trace=trace).run(
        "gather", {"idx": idx, "src": src, "dst": dst, "n": 4}
    )
    return {"module": module, "memory": memory, "trace": trace}


# --------------------------------------------------------------------- #
# workload-level fixtures
# --------------------------------------------------------------------- #
@pytest.fixture(scope="session")
def lu_workload():
    from repro.workloads.lu import LUWorkload

    return LUWorkload(n=8, niter=1)


@pytest.fixture(scope="session")
def lu_trace(lu_workload):
    return lu_workload.traced_run().trace


@pytest.fixture(scope="session")
def lulesh_workload():
    from repro.workloads.lulesh import LuleshWorkload

    return LuleshWorkload(num_elem=10)


@pytest.fixture(scope="session")
def cg_workload():
    from repro.workloads.cg import CGWorkload

    return CGWorkload(n=10, cgitmax=2)


@pytest.fixture(scope="session")
def fast_config():
    """Analysis configuration tuned for test speed (bounded injections)."""
    return AnalysisConfig(
        max_injections=20,
        equivalence_samples=1,
        injection_samples_per_class=1,
        error_model=SingleBitModel(bit_stride=4),
    )
