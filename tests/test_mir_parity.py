"""Differential parity suite for the MIR superinstruction backend.

The block backend must be *observationally invisible*: for any program the
engine dispatching fused superinstructions has to produce bit-identical
results to the plain op loop and to the tree-walking interpreter — outputs,
return values, step counts, the full trace event stream, and (for crashing
programs) the exception type and message.

Three layers of evidence:

* a seeded **differential fuzzer** generating random kernels in the
  restricted dialect (loops, gathers, integer/float arithmetic, branches,
  mid-run crashes) and running each through interpreter / op engine /
  block engine;
* **structural invariants** of the lowering on all registry workloads —
  every op lands in exactly one segment and the op-index ↔ (segment,
  offset) maps round-trip, so fault-site addressing stays exact;
* targeted parity checks for the three sink fast paths (sink-free,
  counting, traced) and for fault injection on both backends.
"""

from __future__ import annotations

import math
import random

import numpy as np
import pytest

from repro.frontend import compile_kernel_source
from repro.ir.types import F64, I64
from repro.mir import lower_program, mir_program_for
from repro.tracing.columnar import ColumnarTrace
from repro.tracing.events import TraceEvent
from repro.tracing.sinks import CountingSink
from repro.tracing.trace import Trace
from repro.vm.engine import DecodedProgram, Engine
from repro.vm.faults import FaultSpec, FaultTarget
from repro.vm.interpreter import Interpreter
from repro.vm.memory import Memory
from repro.workloads.registry import get_workload, workload_names


# --------------------------------------------------------------------- #
# event-stream comparison (field-by-field; TraceEvent has no __eq__)
# --------------------------------------------------------------------- #
def _values_equal(v1, v2):
    if type(v1) is not type(v2):
        return False
    if isinstance(v1, float):
        return v1 == v2 or (math.isnan(v1) and math.isnan(v2))
    if isinstance(v1, tuple):
        return len(v1) == len(v2) and all(
            _values_equal(a, b) for a, b in zip(v1, v2)
        )
    return v1 == v2


def assert_event_streams_identical(ref_events, got_events, where=""):
    ref_events, got_events = list(ref_events), list(got_events)
    assert len(ref_events) == len(got_events), (
        f"{where}: {len(ref_events)} vs {len(got_events)} events"
    )
    for index, (ref, got) in enumerate(zip(ref_events, got_events)):
        for field in TraceEvent.__slots__:
            rv, gv = getattr(ref, field), getattr(got, field)
            assert _values_equal(rv, gv), (
                f"{where}: event {index} ({ref.opcode}) field {field!r}: "
                f"{rv!r} != {gv!r}"
            )


def assert_outputs_identical(ref, got, where=""):
    assert set(ref) == set(got), where
    for name in ref:
        assert np.array_equal(
            ref[name].view(np.uint8), got[name].view(np.uint8)
        ), f"{where}: output {name!r} differs"


# --------------------------------------------------------------------- #
# seeded kernel fuzzer (restricted dialect)
# --------------------------------------------------------------------- #
_FCONSTS = ["0.5", "1.25", "2.0", "3.75", "-1.5", "0.125"]
_ICONSTS = ["2", "3", "5", "7", "11"]


def _statement(rng: random.Random, loop_var: str) -> str:
    i = loop_var
    choice = rng.randrange(9)
    if choice == 0:
        return f"s = s + a[{i}] * {rng.choice(_FCONSTS)}"
    if choice == 1:
        return f"a[{i}] = s / (a[{i}] * a[{i}] + {rng.choice(_ICONSTS)}.0)"
    if choice == 2:
        return f"t = (t * {rng.choice(_ICONSTS)} + {i}) % 97"
    if choice == 3:
        return f"b[{i}] = (b[{i}] + t) % n"
    if choice == 4:
        # double-mod keeps the gather index in [0, n) for either sign
        # convention of %, so this never faults
        return f"s = s + a[((b[{i}] % n) + n) % n]"
    if choice == 5:
        return f"t = t ^ (t >> {rng.randint(1, 4)})"
    if choice == 6:
        return f"t = (t & 1023) | {rng.choice(_ICONSTS)}"
    if choice == 7:
        return f"s = s - a[{i}] / {rng.choice(_ICONSTS)}.0"
    return f"t = t + {i} * {rng.choice(_ICONSTS)}"


def _conditional(rng: random.Random, loop_var: str) -> list:
    if rng.random() < 0.5:
        test = f"a[{loop_var}] > s"
    else:
        test = f"t > {rng.choice(_ICONSTS)}"
    return [f"if {test}:", "    " + _statement(rng, loop_var)]


def generate_kernel(seed: int, crash: str = ""):
    """A random kernel source plus its deterministic memory setup.

    ``crash`` selects an optional mid-run failure: ``"oob"`` gathers past
    the end of ``a`` halfway through the first loop, ``"div0"`` divides by
    an integer that cancels to zero.  Returns ``(source, name, n, a0, b0)``.
    """
    rng = random.Random(seed)
    n = rng.randint(4, 9)
    name = f"fuzz_{seed}_{crash or 'ok'}"
    lines = [
        f'def {name}(a: "double*", b: "i64*", n: "i64") -> "double":',
        "    s = 0.0",
        "    t = 1",
    ]
    for loop_index in range(rng.randint(1, 2)):
        var = f"i{loop_index}"
        step = rng.choice([1, 1, 1, 2])
        if step == 1:
            lines.append(f"    for {var} in range(n):")
        else:
            lines.append(f"    for {var} in range(0, n, {step}):")
        body = []
        for _ in range(rng.randint(2, 5)):
            if rng.random() < 0.25:
                body.extend(_conditional(rng, var))
            else:
                body.append(_statement(rng, var))
        if crash == "oob" and loop_index == 0:
            body.extend([f"if {var} >= {n // 2}:", "    s = s + a[n + n]"])
        if crash == "div0" and loop_index == 0:
            body.extend([f"if {var} >= {n // 2}:", "    t = t // (t - t)"])
        lines.extend("        " + stmt for stmt in body)
    lines.append("    return s + t")
    a0 = [round(rng.uniform(-4.0, 4.0), 3) for _ in range(n)]
    b0 = [rng.randrange(n) for _ in range(n)]
    return "\n".join(lines), name, n, a0, b0


def _run_one(module, name, n, a0, b0, executor):
    """One fresh execution; returns (outputs, return, steps, events, error)."""
    memory = Memory()
    args = {
        "a": memory.allocate("a", F64, n, initial=a0),
        "b": memory.allocate("b", I64, n, initial=b0),
        "n": n,
    }
    if executor == "interpreter":
        sink = Trace()
        runner = Interpreter(module, memory, trace=sink)
    else:
        sink = ColumnarTrace()
        runner = Engine(module, memory, sink=sink, backend=executor)
    error = None
    return_value = steps = None
    try:
        result = runner.run(name, args)
        return_value, steps = result.return_value, result.steps
    except Exception as exc:  # noqa: BLE001 - crash parity asserted by caller
        error = exc
    outputs = {
        "a": memory.object("a").values(),
        "b": memory.object("b").values(),
    }
    return outputs, return_value, steps, list(sink), error


@pytest.mark.parametrize("crash", ["", "oob", "div0"])
@pytest.mark.parametrize("seed", range(12))
def test_fuzzed_kernels_three_way_parity(seed, crash):
    source, name, n, a0, b0 = generate_kernel(seed, crash)
    function = compile_kernel_source(source)
    module = function.metadata["module"]
    where = f"seed={seed} crash={crash or 'none'}"

    ref = _run_one(module, name, n, a0, b0, "interpreter")
    for backend in ("op", "block"):
        got = _run_one(module, name, n, a0, b0, backend)
        label = f"{where} backend={backend}"
        if ref[4] is not None:
            assert got[4] is not None, f"{label}: expected {type(ref[4]).__name__}"
            assert type(got[4]) is type(ref[4]), label
            assert str(got[4]) == str(ref[4]), label
        else:
            assert got[4] is None, f"{label}: unexpected {got[4]!r}"
            assert _values_equal(ref[1], got[1]), f"{label}: return value"
            assert ref[2] == got[2], f"{label}: steps {ref[2]} vs {got[2]}"
        assert_outputs_identical(ref[0], got[0], label)
        assert_event_streams_identical(ref[3], got[3], label)
    if crash:
        assert isinstance(ref[4], Exception), f"{where}: crash kernel did not crash"


def test_fuzzed_kernels_do_fuse():
    """The fuzzer must generate programs the fuser actually fuses."""
    fused_ops = total_ops = 0
    for seed in range(12):
        source, _, _, _, _ = generate_kernel(seed)
        function = compile_kernel_source(source)
        decoded = DecodedProgram.of(function.metadata["module"])
        program = lower_program(decoded)
        for mf in program.functions.values():
            for seg in mf.segments:
                total_ops += seg.n_ops
                if seg.fused:
                    fused_ops += seg.n_ops
    assert fused_ops > total_ops // 2, (fused_ops, total_ops)


# --------------------------------------------------------------------- #
# lowering invariants on every registry workload
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("name", workload_names())
def test_op_index_block_map_roundtrip(name):
    """Every op lands in exactly one segment; the maps round-trip exactly.

    This is the invariant fault-site addressing rests on: a dynamic id
    resolved to an op index by the op loop must denote the same instruction
    the superinstruction executed at that position.
    """
    workload = get_workload(name)
    decoded = DecodedProgram.of(workload.module())
    program = mir_program_for(decoded)
    for fname, mf in program.functions.items():
        df = decoded.functions[fname]
        seen = {}
        for seg in mf.segments:
            assert seg.n_ops == len(seg.pcs)
            for offset, pc in enumerate(seg.pcs):
                assert pc not in seen, f"{name}/{fname}: pc {pc} in two segments"
                seen[pc] = (seg.index, offset)
                assert mf.location_of(pc) == (seg.index, offset)
                assert mf.pc_at(seg.index, offset) == pc
        assert set(seen) == set(range(len(df.ops))), (
            f"{name}/{fname}: segments do not partition the op array"
        )
        for pc, seg in enumerate(mf.dispatch):
            if seg is not None:
                assert seg.fused and seg.pcs[0] == pc


@pytest.mark.parametrize("name", workload_names())
def test_segment_counts_match_opcodes(name):
    """Per-segment opcode tallies (the counting fast path) are exact."""
    workload = get_workload(name)
    decoded = DecodedProgram.of(workload.module())
    program = mir_program_for(decoded)
    for fname, mf in program.functions.items():
        df = decoded.functions[fname]
        for seg in mf.segments:
            expected = {}
            for pc in seg.pcs:
                key = df.ops[pc].opcode.value
                expected[key] = expected.get(key, 0) + 1
            assert seg.counts == expected, f"{name}/{fname} segment {seg.index}"
            assert sum(seg.counts.values()) == seg.n_ops


# --------------------------------------------------------------------- #
# sink fast paths and fault injection on a real workload
# --------------------------------------------------------------------- #
def _fresh_run(workload, backend, sink=None, fault=None):
    instance = workload.fresh_instance()
    engine = Engine(
        instance.module,
        instance.memory,
        sink=sink,
        fault=fault,
        max_steps=workload.max_steps,
        backend=backend,
    )
    error = None
    return_value = steps = None
    try:
        result = engine.run(workload.entry, instance.args)
        return_value, steps = result.return_value, result.steps
    except Exception as exc:  # noqa: BLE001
        error = exc
    outputs = {
        name: instance.memory.object(name).values()
        for name in workload.output_objects
    }
    return outputs, return_value, steps, error


@pytest.mark.parametrize("name", ["matmul", "cg", "pf"])
def test_workload_counting_sink_parity(name):
    workload = get_workload(name)
    op_sink, block_sink = CountingSink(), CountingSink()
    op = _fresh_run(workload, "op", sink=op_sink)
    block = _fresh_run(workload, "block", sink=block_sink)
    assert op[3] is None and block[3] is None
    assert op[2] == block[2]
    assert op_sink.total == block_sink.total == op[2]
    assert op_sink.by_opcode == block_sink.by_opcode
    assert_outputs_identical(op[0], block[0], name)


@pytest.mark.parametrize("name", ["matmul", "cg", "pf"])
def test_workload_traced_parity(name):
    workload = get_workload(name)
    op_sink, block_sink = ColumnarTrace(), ColumnarTrace()
    op = _fresh_run(workload, "op", sink=op_sink)
    block = _fresh_run(workload, "block", sink=block_sink)
    assert op[3] is None and block[3] is None
    assert op[1] == block[1] and op[2] == block[2]
    assert_outputs_identical(op[0], block[0], name)
    assert_event_streams_identical(op_sink, block_sink, name)


def test_workload_fault_injection_parity():
    """Injected runs agree bit-for-bit across backends, crashes included."""
    workload = get_workload("matmul")
    golden_steps = _fresh_run(workload, "op")[2]
    specs = []
    for dynamic_id in (0, 7, golden_steps // 3, golden_steps // 2, golden_steps - 2):
        specs.append(FaultSpec(dynamic_id=dynamic_id, bit=62))
        specs.append(
            FaultSpec(dynamic_id=dynamic_id, bit=3, target=FaultTarget.RESULT)
        )
    crashes = 0
    for spec in specs:
        op = _fresh_run(workload, "op", fault=spec)
        block = _fresh_run(workload, "block", fault=spec)
        where = repr(spec)
        if op[3] is not None:
            crashes += 1
            assert block[3] is not None, where
            assert type(block[3]) is type(op[3]), where
            assert str(block[3]) == str(op[3]), where
        else:
            assert block[3] is None, f"{where}: {block[3]!r}"
            assert _values_equal(op[1], block[1]), where
            assert op[2] == block[2], where
        assert_outputs_identical(op[0], block[0], where)


def test_checkpoint_schedule_parity():
    """Snapshot schedules (positions *and* state digests) agree.

    Snapshot boundaries land mid-segment from the superinstruction's point
    of view; the dispatch guard must stop short of them so the captured
    state is exactly what the op loop captures.
    """
    from repro.vm.engine import snapshot_digest

    workload = get_workload("matmul")
    schedules = {}
    for backend in ("op", "block"):
        instance = workload.fresh_instance()
        engine = Engine(
            instance.module,
            instance.memory,
            snapshot_interval=500,
            max_steps=workload.max_steps,
            backend=backend,
        )
        result = engine.run(workload.entry, instance.args)
        schedules[backend] = (
            result.steps,
            [(snap.dyn, snapshot_digest(snap)) for snap in engine.snapshots],
            {
                name: instance.memory.object(name).values()
                for name in workload.output_objects
            },
        )
    op, block = schedules["op"], schedules["block"]
    assert op[0] == block[0]
    assert op[1] == block[1]
    assert_outputs_identical(op[2], block[2])


def test_backend_selection_and_validation():
    workload = get_workload("matmul")
    instance = workload.fresh_instance()
    engine = Engine(instance.module, instance.memory, backend="block")
    assert engine.backend == "block"
    assert engine._mir is not None
    op_engine = Engine(instance.module, instance.memory, backend="op")
    assert op_engine._mir is None
    with pytest.raises(ValueError, match="unknown engine backend"):
        Engine(instance.module, instance.memory, backend="jit")


def test_env_var_selects_backend(monkeypatch):
    workload = get_workload("matmul")
    instance = workload.fresh_instance()
    monkeypatch.setenv("REPRO_ENGINE_BACKEND", "op")
    assert Engine(instance.module, instance.memory).backend == "op"
    monkeypatch.setenv("REPRO_ENGINE_BACKEND", "block")
    assert Engine(instance.module, instance.memory).backend == "block"
    monkeypatch.delenv("REPRO_ENGINE_BACKEND")
    assert Engine(instance.module, instance.memory).backend == "block"
