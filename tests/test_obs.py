"""Telemetry subsystem: registry merge algebra, spans, logging, promfiles."""

from __future__ import annotations

import itertools
import json

import pytest

from repro.obs import log as obs_log
from repro.obs.log import LEVELS, emit_event, get_logger, provenance
from repro.obs.metrics import (
    TIME_BUCKETS,
    MetricsRegistry,
    NullRegistry,
    configure,
    diff_snapshots,
    merge_snapshots,
    metrics_enabled,
    registry,
)
from repro.obs.prom import render_promfile
from repro.obs import spans as obs_spans
from repro.obs.spans import (
    clear_span_context,
    current_span,
    disable_recording,
    drain_span_records,
    enable_recording,
    get_span_context,
    recording_enabled,
    set_span_context,
    span,
    span_context,
)
from repro.reporting import format_metrics_table


@pytest.fixture(autouse=True)
def _fresh_registry():
    """Every test starts with an enabled, empty process registry."""
    configure(True)
    yield
    configure(None)
    obs_log.reset()
    disable_recording()
    clear_span_context()


def _worker_snapshot(seed: int):
    """A plausible worker delta: counters, a gauge, a histogram."""
    reg = MetricsRegistry()
    reg.inc("engine.ops", 100 * seed, backend="block")
    reg.inc("replay.memo_hits", seed, workload="matmul")
    reg.gauge("campaign.peak_rss", 10.0 * seed)
    for i in range(seed):
        reg.observe("span_seconds", 0.001 * (i + 1), span="replay.batch")
    return reg.to_dict()


class TestRegistry:
    def test_counters_add_and_label_series_are_distinct(self):
        reg = MetricsRegistry()
        reg.inc("engine.ops", 5, backend="block")
        reg.inc("engine.ops", 7, backend="block")
        reg.inc("engine.ops", 11, backend="op")
        assert reg.counter_value("engine.ops", backend="block") == 12
        assert reg.counter_value("engine.ops", backend="op") == 11
        assert reg.counter_total("engine.ops") == 23

    def test_histogram_buckets_fixed_and_deterministic(self):
        reg = MetricsRegistry()
        reg.observe("span_seconds", 0.0003, span="x")
        reg.observe("span_seconds", 1e9, span="x")  # lands in +Inf
        hist = reg.histogram("span_seconds", span="x")
        assert hist.bounds == TIME_BUCKETS
        assert len(hist.bucket_counts) == len(TIME_BUCKETS) + 1
        assert hist.bucket_counts[-1] == 1
        assert hist.count == 2

    def test_to_dict_is_deterministic_across_recording_order(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("x", 1, k="1")
        a.inc("y", 2)
        b.inc("y", 2)
        b.inc("x", 1, k="1")
        assert a.to_dict() == b.to_dict()
        assert json.dumps(a.to_dict(), sort_keys=True) == json.dumps(
            b.to_dict(), sort_keys=True
        )

    def test_merge_fold_is_order_independent(self):
        """Counters add, gauges max, buckets add — any fold order agrees.

        Histogram sums are carried as exact compensated partials, so the
        agreement is *bit-identical* — including the float ``sum`` — not
        merely to rounding.
        """
        snaps = [_worker_snapshot(seed) for seed in (1, 2, 3)]
        merged = []
        for order in itertools.permutations(range(3)):
            acc = MetricsRegistry()
            for i in order:
                acc.merge(snaps[i])
            merged.append(json.loads(json.dumps(acc.to_dict())))
        first = merged[0]
        for other in merged[1:]:
            assert other == first
        assert json.loads(json.dumps(merge_snapshots(*snaps))) == first
        # and the semantics themselves:
        acc = MetricsRegistry()
        for snap in snaps:
            acc.merge(snap)
        assert acc.counter_value("engine.ops", backend="block") == 600
        assert acc.gauge_value("campaign.peak_rss") == 30.0
        assert acc.histogram("span_seconds", span="replay.batch").count == 6

    def test_merge_rejects_mismatched_histogram_bounds(self):
        a = MetricsRegistry()
        a.observe("t", 0.5)
        b = MetricsRegistry()
        b.observe("t", 0.5, buckets=(1.0, 2.0))
        with pytest.raises(ValueError, match="bucket bounds differ"):
            a.merge(b.to_dict())

    def test_snapshot_delta_streams_reconstruct_cumulative_state(self):
        reg = MetricsRegistry()
        reg.inc("a", 1)
        first = reg.snapshot_delta("w")
        reg.inc("a", 2)
        reg.inc("b", 5)
        reg.observe("t", 0.1)
        second = reg.snapshot_delta("w")
        # first call: full state; second: only the new activity
        assert first["counters"] == [{"name": "a", "labels": {}, "value": 1}]
        assert {e["name"]: e["value"] for e in second["counters"]} == {
            "a": 2, "b": 5,
        }
        rebuilt = merge_snapshots(first, second)
        assert rebuilt == reg.to_dict()
        # an idle cursor produces an empty delta
        empty = reg.snapshot_delta("w")
        assert empty["counters"] == [] and empty["histograms"] == []

    def test_diff_snapshots_drops_unchanged_series(self):
        reg = MetricsRegistry()
        reg.inc("stable", 3)
        reg.inc("moving", 1)
        before = reg.to_dict()
        reg.inc("moving", 4)
        delta = diff_snapshots(before, reg.to_dict())
        assert delta["counters"] == [
            {"name": "moving", "labels": {}, "value": 4}
        ]


class TestNoOpMode:
    def test_configure_false_installs_null_registry(self):
        reg = configure(False)
        assert isinstance(reg, NullRegistry)
        assert not metrics_enabled()
        reg.inc("engine.ops", 100)
        reg.observe("t", 0.1)
        reg.merge(_worker_snapshot(2))
        snap = reg.to_dict()
        assert snap["counters"] == [] and snap["histograms"] == []

    def test_env_disables_registry(self, monkeypatch):
        monkeypatch.setenv("REPRO_METRICS", "0")
        assert isinstance(configure(None), NullRegistry)
        monkeypatch.setenv("REPRO_METRICS", "1")
        assert not isinstance(configure(None), NullRegistry)

    def test_span_still_nests_when_disabled(self):
        configure(False)
        with span("outer"):
            with span("inner") as inner:
                assert inner.parent == "outer"
        assert registry().to_dict()["histograms"] == []


class TestSpans:
    def test_nesting_parent_depth_and_duration(self):
        with span("campaign.run", campaign="c01") as outer:
            assert current_span() is outer
            assert outer.depth == 0 and outer.parent is None
            with span("campaign.shard", shard=3) as inner:
                assert inner.parent == "campaign.run"
                assert inner.depth == 1
        assert current_span() is None
        assert outer.duration_s is not None and outer.duration_s >= 0
        payload = inner.to_dict()
        assert payload["type"] == "span"
        assert payload["span"] == "campaign.shard"
        assert payload["shard"] == "3"  # labels are stringified

    def test_span_observes_labelled_histogram(self):
        with span("replay.batch", shard=1):
            pass
        hist = registry().histogram("span_seconds", span="replay.batch", shard=1)
        assert hist is not None and hist.count == 1

    def test_span_exports_even_when_body_raises(self):
        with pytest.raises(RuntimeError):
            with span("doomed") as entry:
                raise RuntimeError("boom")
        assert entry.duration_s is not None
        assert registry().histogram("span_seconds", span="doomed").count == 1


class TestFlightRecorderBuffer:
    def test_recording_buffers_context_stamped_records(self):
        assert not recording_enabled()
        enable_recording()
        set_span_context(campaign="c01", run=1)
        with span("campaign.shard", shard=3, object="matmul"):
            with span("worker.inject", specs=8):
                pass
        records = drain_span_records()
        assert [r["name"] for r in records] == [
            "worker.inject", "campaign.shard",  # exit order: inner first
        ]
        inner, outer = records
        assert inner["parent"] == "campaign.shard" and inner["depth"] == 1
        assert outer["parent"] is None and outer["depth"] == 0
        for record in records:
            assert record["labels"]["campaign"] == "c01"
            assert record["labels"]["run"] == "1"  # stringified
            assert record["pid"] > 0
            assert record["duration_s"] >= 0
            assert record["start_ts"] > 0
        assert inner["labels"]["specs"] == "8"
        # the drain cleared the buffer; recording itself stays on
        assert drain_span_records() == []
        assert recording_enabled()

    def test_disabled_recording_buffers_nothing(self):
        with span("ignored"):
            pass
        assert drain_span_records() == []

    def test_buffer_drops_oldest_past_cap(self, monkeypatch):
        monkeypatch.setattr(obs_spans, "_RECORD_CAP", 3)
        enable_recording()
        for i in range(5):
            with span("s", i=i):
                pass
        records = drain_span_records()
        assert len(records) == 3
        assert [r["labels"]["i"] for r in records] == ["2", "3", "4"]

    def test_span_context_scoping_restores_prior(self):
        set_span_context(campaign="c01")
        with span_context(campaign="c02", shard=5):
            assert get_span_context() == {"campaign": "c02", "shard": "5"}
        assert get_span_context() == {"campaign": "c01"}
        set_span_context(campaign=None)
        assert get_span_context() == {}


class TestStructuredLog:
    def test_level_gates_stderr(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_LOG_LEVEL", "warning")
        obs_log.reset()
        logger = get_logger("campaign")
        logger.info("progress", "quiet line")
        logger.warning("trouble", "loud line")
        err = capsys.readouterr().err
        assert "quiet line" not in err
        assert "loud line" in err

    def test_quiet_silences_everything(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_LOG_LEVEL", "quiet")
        obs_log.reset()
        get_logger("campaign").error("fatal", "even errors")
        assert capsys.readouterr().err == ""

    def test_bad_level_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG_LEVEL", "chatty")
        obs_log.reset()
        with pytest.raises(ValueError, match="REPRO_LOG_LEVEL"):
            get_logger("campaign").info("x", "y")

    def test_jsonl_export_has_provenance_header(self, monkeypatch, tmp_path):
        path = tmp_path / "events.jsonl"
        monkeypatch.setenv("REPRO_LOG", str(path))
        obs_log.reset()
        get_logger("campaign").info(
            "shard.done", "shard 3 done", shard=3, campaign_id="c01"
        )
        with span("campaign.trace", campaign="c01"):
            pass
        emit_event({"type": "custom", "k": "v"})
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert lines[0]["type"] == "meta"
        assert lines[0]["repro_version"] == provenance()["repro_version"]
        assert lines[0]["store_schema_version"] == (
            provenance()["store_schema_version"]
        )
        by_type = {line["type"] for line in lines}
        assert {"meta", "log", "span", "custom"} <= by_type
        log_line = next(l for l in lines if l["type"] == "log")
        assert log_line["component"] == "campaign"
        assert log_line["event"] == "shard.done"
        assert log_line["shard"] == 3
        span_line = next(l for l in lines if l["type"] == "span")
        assert span_line["span"] == "campaign.trace"
        assert span_line["duration_s"] >= 0
        assert all("ts" in line for line in lines)

    def test_levels_cover_aliases(self):
        assert LEVELS["warn"] == LEVELS["warning"]
        assert LEVELS["quiet"] == LEVELS["off"]

    def test_jsonl_rotation_caps_growth(self, monkeypatch, tmp_path):
        path = tmp_path / "events.jsonl"
        monkeypatch.setenv("REPRO_LOG", str(path))
        monkeypatch.setenv("REPRO_LOG_MAX_BYTES", "600")
        obs_log.reset()
        for i in range(40):
            emit_event({"type": "custom", "i": i, "pad": "x" * 40})
        rotated = tmp_path / "events.jsonl.1"
        assert rotated.exists()
        # one-deep rotation bounds total disk to ~2x the cap
        assert path.stat().st_size <= 600
        assert rotated.stat().st_size <= 600
        # both files restart with a fresh meta (provenance) header
        for f in (path, rotated):
            first = json.loads(f.read_text().splitlines()[0])
            assert first["type"] == "meta"
            assert first["repro_version"] == provenance()["repro_version"]
        # old events age out (bounded growth) but the surviving window is
        # contiguous and ends at the newest event
        seen = [
            json.loads(l)["i"]
            for f in (rotated, path)
            for l in f.read_text().splitlines()
            if json.loads(l)["type"] == "custom"
        ]
        assert seen == list(range(seen[0], 40))

    def test_rotation_never_touches_stderr_destination(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_LOG", "stderr")
        monkeypatch.setenv("REPRO_LOG_MAX_BYTES", "10")
        obs_log.reset()
        for i in range(5):
            emit_event({"type": "custom", "i": i})
        err = capsys.readouterr().err
        assert err.count('"type": "custom"') == 5

    def test_event_sinks_fan_out_and_survive_broken_subscribers(self):
        received = []

        def broken(event):
            raise RuntimeError("subscriber bug")

        obs_log.add_event_sink(broken)
        obs_log.add_event_sink(received.append)
        try:
            emit_event({"type": "custom", "k": "v"})
        finally:
            obs_log.remove_event_sink(broken)
            obs_log.remove_event_sink(received.append)
        assert len(received) == 1
        assert received[0]["k"] == "v" and "ts" in received[0]
        emit_event({"type": "custom", "k": "after"})
        assert len(received) == 1  # removed sinks stop receiving


class TestPromfile:
    def test_render_counters_gauges_histograms(self):
        reg = MetricsRegistry()
        reg.inc("engine.ops", 42, backend="block")
        reg.gauge("campaign.workers", 4)
        reg.observe("span_seconds", 0.0002, buckets=(0.001, 1.0), span="s")
        reg.observe("span_seconds", 5.0, buckets=(0.001, 1.0), span="s")
        text = render_promfile(reg.to_dict())
        assert "# TYPE repro_engine_ops counter" in text
        assert 'repro_engine_ops{backend="block"} 42' in text
        assert "# TYPE repro_campaign_workers gauge" in text
        # cumulative le buckets + the +Inf/count/sum triplet
        assert 'repro_span_seconds_bucket{span="s",le="0.001"} 1' in text
        assert 'repro_span_seconds_bucket{span="s",le="1"} 1' in text
        assert 'repro_span_seconds_bucket{span="s",le="+Inf"} 2' in text
        assert 'repro_span_seconds_count{span="s"} 2' in text
        assert 'repro_span_seconds_sum{span="s"} 5.0002' in text

    def test_rendering_is_deterministic(self):
        snap = _worker_snapshot(3)
        assert render_promfile(snap) == render_promfile(snap)

    def test_empty_snapshot_renders_empty(self):
        assert render_promfile(MetricsRegistry().to_dict()) == ""


class TestMetricsTable:
    def test_renders_all_three_kinds(self):
        reg = MetricsRegistry()
        reg.inc("engine.ops", 10, backend="block")
        reg.gauge("campaign.workers", 2)
        reg.observe("span_seconds", 0.5, span="x")
        text = format_metrics_table(reg.to_dict())
        assert "engine.ops" in text and "backend=block" in text
        assert "counter" in text and "gauge" in text and "histogram" in text
        assert "0.5000" in text  # histogram mean column


class TestEngineCounters:
    def test_golden_run_counts_ops_and_segments(self, saxpy_setup):
        from repro.vm import Engine

        module, memory, a, b = saxpy_setup
        engine = Engine(module, memory, backend="block")
        result = engine.run("saxpy", {"a": a, "b": b, "n": 6, "alpha": 2.0})
        reg = registry()
        assert reg.counter_value("engine.ops", backend="block") == result.steps
        assert reg.counter_value("engine.segment_dispatches", backend="block") > 0
        assert (
            reg.counter_value("engine.segment_ops", backend="block")
            <= result.steps
        )

    def test_disabled_registry_records_nothing(self, saxpy_setup):
        from repro.vm import Engine

        configure(False)
        module, memory, a, b = saxpy_setup
        Engine(module, memory, backend="block").run(
            "saxpy", {"a": a, "b": b, "n": 6, "alpha": 2.0}
        )
        assert registry().to_dict()["counters"] == []
