"""Exact unit tests for the Wilson interval helpers (campaigns/stats.py)."""

import math

import pytest

from repro.campaigns.stats import (
    fixed_sample_size_for_half_width,
    wilson_half_width,
    wilson_interval,
    z_for_confidence,
)


class TestWilsonInterval:
    def test_textbook_value_5_of_10(self):
        # Classical Wilson interval for p̂ = 5/10 at z = 1.96.
        low, high = wilson_interval(5, 10, z=1.96)
        assert low == pytest.approx(0.2365896, abs=1e-6)
        assert high == pytest.approx(0.7634104, abs=1e-6)

    def test_exact_formula_agreement(self):
        # Recompute from the closed form for an asymmetric case.
        successes, trials, z = 37, 48, 1.96
        p = successes / trials
        z2 = z * z
        denom = 1.0 + z2 / trials
        center = (p + z2 / (2 * trials)) / denom
        half = z * math.sqrt(p * (1 - p) / trials + z2 / (4 * trials**2)) / denom
        low, high = wilson_interval(successes, trials, z)
        assert low == pytest.approx(center - half, abs=1e-12)
        assert high == pytest.approx(center + half, abs=1e-12)

    def test_zero_trials_is_vacuous(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)

    def test_extremes_stay_in_unit_interval_with_nonzero_width(self):
        low0, high0 = wilson_interval(0, 20)
        lowN, highN = wilson_interval(20, 20)
        assert low0 == 0.0 and 0.0 < high0 < 0.5
        assert highN == 1.0 and 0.5 < lowN < 1.0
        # unlike the Wald interval, the width never collapses to zero
        assert high0 - low0 > 0.0 and highN - lowN > 0.0

    def test_interval_contains_point_estimate(self):
        for successes, trials in [(1, 7), (3, 9), (50, 60), (999, 1000)]:
            low, high = wilson_interval(successes, trials)
            assert low <= successes / trials <= high

    def test_half_width_shrinks_with_samples(self):
        widths = [wilson_half_width(n // 2, n) for n in (10, 40, 160, 640)]
        assert widths == sorted(widths, reverse=True)
        # asymptotically ~ z/(2*sqrt(n))
        assert widths[-1] == pytest.approx(1.96 / (2 * math.sqrt(640)), rel=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 4)
        with pytest.raises(ValueError):
            wilson_interval(-1, 4)
        with pytest.raises(ValueError):
            wilson_interval(1, -4)
        with pytest.raises(ValueError):
            wilson_interval(1, 4, z=0.0)


class TestSizingHelpers:
    def test_z_for_confidence(self):
        assert z_for_confidence(0.95) == pytest.approx(1.96, abs=1e-3)
        assert z_for_confidence(0.99) > z_for_confidence(0.90)
        with pytest.raises(ValueError):
            z_for_confidence(0.42)

    def test_fixed_sample_size_worst_case(self):
        # n = z^2 * 0.25 / h^2 at the planning worst case p = 0.5
        assert fixed_sample_size_for_half_width(0.05, z=1.96) == 385
        assert fixed_sample_size_for_half_width(0.12, z=1.96) == 67
        with pytest.raises(ValueError):
            fixed_sample_size_for_half_width(0.0)

    def test_fixed_plan_never_beats_its_own_target(self):
        # at the fixed-plan size, even p = 0.5 meets the target half-width
        for h in (0.05, 0.1, 0.2):
            n = fixed_sample_size_for_half_width(h)
            assert wilson_half_width(n // 2, n) <= h + 1e-9
