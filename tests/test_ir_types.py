"""Unit tests for the IR type system."""

import pytest

from repro.ir.types import (
    F32,
    F64,
    I1,
    I8,
    I16,
    I32,
    I64,
    PointerType,
    VOID,
    parse_type,
    pointer_to,
)


class TestScalarTypes:
    def test_integer_classification(self):
        for t in (I1, I8, I16, I32, I64):
            assert t.is_integer and not t.is_float and not t.is_pointer

    def test_float_classification(self):
        for t in (F32, F64):
            assert t.is_float and not t.is_integer

    def test_void(self):
        assert VOID.is_void
        assert VOID.size_bytes == 0

    def test_bool_detection(self):
        assert I1.is_bool
        assert not I64.is_bool

    @pytest.mark.parametrize(
        "t,size", [(I1, 1), (I8, 1), (I16, 2), (I32, 4), (I64, 8), (F32, 4), (F64, 8)]
    )
    def test_size_bytes(self, t, size):
        assert t.size_bytes == size

    def test_signed_range_i8(self):
        assert I8.signed_min == -128
        assert I8.signed_max == 127
        assert I8.unsigned_max == 255

    def test_signed_range_i64(self):
        assert I64.signed_min == -(2**63)
        assert I64.signed_max == 2**63 - 1

    def test_float_has_no_integer_range(self):
        with pytest.raises(TypeError):
            _ = F64.signed_min


class TestPointerTypes:
    def test_pointer_is_cached(self):
        assert pointer_to(F64) is pointer_to(F64)
        assert pointer_to(F64) is not pointer_to(I64)

    def test_pointer_properties(self):
        p = pointer_to(F64)
        assert isinstance(p, PointerType)
        assert p.is_pointer
        assert p.bits == 64
        assert p.element_size == 8
        assert p.pointee is F64

    def test_pointer_to_void_rejected(self):
        with pytest.raises(TypeError):
            pointer_to(VOID)

    def test_pointer_name(self):
        assert pointer_to(I32).name == "i32*"


class TestParseType:
    @pytest.mark.parametrize(
        "spelling,expected",
        [
            ("i1", I1),
            ("i8", I8),
            ("i16", I16),
            ("i32", I32),
            ("i64", I64),
            ("float", F32),
            ("double", F64),
            ("void", VOID),
        ],
    )
    def test_scalars(self, spelling, expected):
        assert parse_type(spelling) is expected

    def test_pointers(self):
        assert parse_type("double*") is pointer_to(F64)
        assert parse_type("i64*") is pointer_to(I64)

    def test_nested_pointer(self):
        assert parse_type("double**").pointee is pointer_to(F64)

    def test_whitespace_tolerated(self):
        assert parse_type("  i64 ") is I64

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError):
            parse_type("quadword")
