"""Unit and property tests for bit manipulation and the memory model."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.types import F32, F64, I8, I16, I32, I64
from repro.vm.bits import (
    bits_to_value,
    flip_bit,
    float64_from_bits,
    float64_to_bits,
    hamming_distance,
    to_signed,
    to_unsigned,
    value_to_bits,
)
from repro.vm.errors import SegmentationFault
from repro.vm.memory import DataObject, Memory


class TestBits:
    def test_float64_roundtrip_known(self):
        assert float64_from_bits(float64_to_bits(1.5)) == 1.5
        assert float64_to_bits(0.0) == 0
        assert float64_to_bits(-0.0) == 1 << 63

    def test_signed_unsigned(self):
        assert to_unsigned(-1, 8) == 255
        assert to_signed(255, 8) == -1
        assert to_signed(127, 8) == 127
        assert to_unsigned(-(2**63), 64) == 2**63

    @pytest.mark.parametrize("t", [I8, I16, I32, I64])
    def test_flip_bit_int_changes_value(self, t):
        assert flip_bit(0, 0, t) == 1
        assert flip_bit(0, t.bits - 1, t) == t.signed_min

    def test_flip_bit_float_sign(self):
        assert flip_bit(2.5, 63, F64) == -2.5

    def test_flip_bit_out_of_range(self):
        with pytest.raises(ValueError):
            flip_bit(1.0, 64, F64)
        with pytest.raises(ValueError):
            flip_bit(1, -1, I64)

    def test_hamming_distance(self):
        assert hamming_distance(0, 0b1011, I64) == 3
        assert hamming_distance(1.0, 1.0, F64) == 0

    @given(st.floats(allow_nan=False, allow_infinity=False), st.integers(0, 63))
    @settings(max_examples=60)
    def test_flip_bit_is_involution_f64(self, value, bit):
        flipped = flip_bit(value, bit, F64)
        assert flip_bit(flipped, bit, F64) == value

    @given(st.integers(-(2**31), 2**31 - 1), st.integers(0, 31))
    @settings(max_examples=60)
    def test_flip_bit_is_involution_i32(self, value, bit):
        flipped = flip_bit(value, bit, I32)
        assert flip_bit(flipped, bit, I32) == value

    @given(st.integers(-(2**63), 2**63 - 1))
    @settings(max_examples=60)
    def test_value_bits_roundtrip_i64(self, value):
        assert bits_to_value(value_to_bits(value, I64), I64) == value

    @given(st.floats(width=32, allow_nan=False))
    @settings(max_examples=60)
    def test_value_bits_roundtrip_f32(self, value):
        assert bits_to_value(value_to_bits(value, F32), F32) == value


class TestDataObject:
    def test_addressing(self):
        memory = Memory()
        obj = memory.allocate("a", F64, 4, initial=[1, 2, 3, 4])
        assert obj.address_of(0) == obj.base
        assert obj.address_of(3) == obj.base + 24
        assert obj.index_of(obj.base + 16) == 2
        with pytest.raises(IndexError):
            obj.address_of(4)

    def test_misaligned_access(self):
        memory = Memory()
        obj = memory.allocate("a", F64, 4)
        with pytest.raises(SegmentationFault):
            obj.index_of(obj.base + 3)

    def test_get_set_types(self):
        memory = Memory()
        ints = memory.allocate("i", I64, 2)
        ints.set(0, -5)
        assert isinstance(ints.get(0), int) and ints.get(0) == -5
        floats = memory.allocate("f", F64, 2)
        floats.set(1, 2.5)
        assert isinstance(floats.get(1), float)

    def test_fill_from_shape_check(self):
        memory = Memory()
        obj = memory.allocate("a", F64, 3)
        with pytest.raises(ValueError):
            obj.fill_from([1.0, 2.0])


class TestMemory:
    def test_duplicate_name_rejected(self):
        memory = Memory()
        memory.allocate("a", F64, 1)
        with pytest.raises(ValueError):
            memory.allocate("a", F64, 1)

    def test_zero_count_rejected(self):
        with pytest.raises(ValueError):
            Memory().allocate("a", F64, 0)

    def test_resolve_and_guard_gap(self):
        memory = Memory()
        a = memory.allocate("a", F64, 2)
        b = memory.allocate("b", F64, 2)
        obj, idx = memory.resolve(a.address_of(1))
        assert obj.name == "a" and idx == 1
        with pytest.raises(SegmentationFault):
            memory.resolve(a.end + 1)  # guard gap between objects
        with pytest.raises(SegmentationFault):
            memory.resolve(b.end + 1000)

    def test_load_store_roundtrip(self):
        memory = Memory()
        a = memory.allocate("a", F64, 3)
        memory.store(a.address_of(1), F64, 7.25)
        assert memory.load(a.address_of(1), F64) == 7.25

    def test_type_mismatch_is_fault(self):
        memory = Memory()
        a = memory.allocate("a", F64, 3)
        with pytest.raises(SegmentationFault):
            memory.load(a.base, I64)

    def test_flip_bit_at(self):
        memory = Memory()
        a = memory.allocate("a", F64, 1, initial=[1.0])
        memory.flip_bit_at(a.base, 63)
        assert a.get(0) == -1.0

    def test_stack_objects_excluded_from_data_objects(self):
        memory = Memory()
        memory.allocate("a", F64, 1)
        memory.allocate_stack("tmp", I64, 1)
        names = [o.name for o in memory.data_objects()]
        assert names == ["a"]
        assert len(memory.data_objects(include_stack=True)) == 2

    def test_release(self):
        memory = Memory()
        tmp = memory.allocate_stack("tmp", I64, 4)
        memory.release(tmp)
        with pytest.raises(SegmentationFault):
            memory.resolve(tmp.base)

    def test_snapshot_restore(self):
        memory = Memory()
        a = memory.allocate("a", F64, 3, initial=[1.0, 2.0, 3.0])
        snap = memory.snapshot()
        a.set(0, 99.0)
        memory.restore(snap)
        assert list(a.values()) == [1.0, 2.0, 3.0]

    def test_integer_wrapping_store(self):
        memory = Memory()
        a = memory.allocate("a", I8, 1)
        a.set(0, 200)  # wraps to signed 8-bit
        assert a.get(0) == to_signed(200, 8)

    @given(st.lists(st.floats(allow_nan=False, allow_infinity=False), min_size=1, max_size=16))
    @settings(max_examples=40)
    def test_values_roundtrip_property(self, values):
        memory = Memory()
        obj = memory.allocate("a", F64, len(values), initial=values)
        assert np.allclose(obj.values(), np.asarray(values))
