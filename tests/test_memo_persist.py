"""Persisted convergence memo: artifact round-trips + cross-process warm starts.

The :class:`~repro.core.replay.ReplayMemo` a batched replay context grows
is serialisable (``to_payload`` / ``consume_delta`` / ``merge_payload``)
and persisted by :class:`~repro.tracing.cache.MemoCache` keyed by trace
digest + engine backend + format version.  The bar: entries survive the
JSON round trip **bit-exactly** (output arrays compared as raw bytes,
numpy scalar dtypes preserved, crash entries reconstructing exception
type + message), merges are order-independent on disjoint deltas, any
key mismatch reads as a *cold* memo (never a crash), and a fresh
process — campaign worker, resumed campaign, fresh-store rerun — answers
replays from the persisted artifact (``memo_persist_hits``).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.campaigns.cli import main
from repro.campaigns.store import CampaignStore
from repro.core.injector import DeterministicFaultInjector
from repro.core.replay import (
    MEMO_FORMAT_VERSION,
    ReplayMemo,
    _MemoEntry,
)
from repro.core.sites import enumerate_fault_sites
from repro.obs.metrics import configure
from repro.tracing.cache import MemoCache, trace_digest
from repro.vm.engine import default_backend
from repro.vm.errors import SegmentationFault, VMError
from repro.workloads.registry import get_workload


@pytest.fixture(autouse=True)
def _fresh_registry():
    """Every test starts with an enabled, empty process registry."""
    configure(True)
    yield
    configure(None)


def _key(position, seed):
    return (position, bytes([seed] * 8))


def _outcome_entry():
    return _MemoEntry(
        "outcome",
        outputs={
            "C": np.arange(6, dtype=np.float32).reshape(2, 3) * 1.25,
            "v": np.array([1, -7, 42], dtype=np.int64),
        },
        return_value=np.float64(3.141592653589793),
        steps=128,
    )


def _round_trip(payload):
    """Through JSON text, as the artifact file stores it."""
    return json.loads(json.dumps(payload))


class TestMemoRoundTrip:
    def test_outcome_entry_round_trips_bit_exact(self):
        memo = ReplayMemo()
        memo.record([_key(10, 1), _key(20, 2)], _outcome_entry())
        payload = _round_trip(memo.to_payload())

        fresh = ReplayMemo()
        assert fresh.merge_payload(payload) == 2
        for key in (_key(10, 1), _key(20, 2)):
            entry = fresh.lookup(*key)
            original = memo.lookup(*key)
            assert entry.kind == "outcome"
            assert entry.steps == original.steps
            assert type(entry.return_value) is np.float64
            assert entry.return_value == original.return_value
            for name, array in original.outputs.items():
                restored = entry.outputs[name]
                assert restored.dtype == array.dtype
                assert restored.shape == array.shape
                assert np.array_equal(
                    restored.view(np.uint8), array.view(np.uint8)
                )
        # both keys point at ONE shared entry, exactly like the original
        assert fresh.lookup(*_key(10, 1)) is fresh.lookup(*_key(20, 2))

    def test_error_entry_reconstructs_exception(self):
        memo = ReplayMemo()
        error = SegmentationFault(0xDEADBEEF, note="gather out of bounds")
        memo.record([_key(5, 3)], _MemoEntry("error", error=error))
        fresh = ReplayMemo()
        fresh.merge_payload(_round_trip(memo.to_payload()))
        restored = fresh.lookup(*_key(5, 3)).error
        assert type(restored) is SegmentationFault
        assert str(restored) == str(error)

    def test_unknown_error_type_falls_back_to_vmerror(self):
        payload = {
            "format": MEMO_FORMAT_VERSION,
            "entries": [
                {"kind": "error", "error_type": "NotARealError",
                 "error_message": "boom"}
            ],
            "keys": [[7, bytes([9] * 8).hex(), 0]],
        }
        memo = ReplayMemo()
        assert memo.merge_payload(payload) == 1
        restored = memo.lookup(*_key(7, 9)).error
        assert type(restored) is VMError
        assert str(restored) == "boom"

    def test_golden_entry_round_trips(self):
        memo = ReplayMemo()
        memo.record([_key(1, 4)], _MemoEntry("golden", converged_at=321))
        fresh = ReplayMemo()
        fresh.merge_payload(_round_trip(memo.to_payload()))
        entry = fresh.lookup(*_key(1, 4))
        assert entry.kind == "golden" and entry.converged_at == 321

    def test_fifo_eviction_and_counter(self):
        memo = ReplayMemo(max_entries=3)
        for seed in range(4):
            evicted = memo.record([_key(seed, seed)], _outcome_entry())
        assert evicted == 1
        assert memo.evictions == 1
        assert len(memo) == 3
        assert memo.lookup(*_key(0, 0)) is None  # oldest went first
        assert memo.lookup(*_key(3, 3)) is not None

    def test_version_mismatch_reads_cold(self):
        memo = ReplayMemo()
        memo.record([_key(2, 2)], _outcome_entry())
        payload = memo.to_payload()
        payload["format"] = MEMO_FORMAT_VERSION + 1
        fresh = ReplayMemo()
        assert fresh.merge_payload(payload) == 0
        assert len(fresh) == 0

    def test_delta_ships_only_locally_learned_entries(self):
        source = ReplayMemo()
        source.record([_key(1, 1)], _outcome_entry())
        delta = source.consume_delta()
        assert delta is not None and len(delta["keys"]) == 1
        assert source.consume_delta() is None  # consumed

        warm = ReplayMemo()
        warm.merge_payload(delta)
        assert warm.consume_delta() is None  # warm merges are not dirty
        warm.record([_key(9, 9)], _MemoEntry("golden", converged_at=7))
        fresh_delta = warm.consume_delta()
        assert [tuple(row[:2]) for row in fresh_delta["keys"]] == [
            (9, bytes([9] * 8).hex())
        ]

    def test_merge_payloads_order_independent_on_disjoint_deltas(self):
        a = ReplayMemo()
        a.record([_key(1, 1)], _outcome_entry())
        b = ReplayMemo()
        b.record([_key(2, 2)], _MemoEntry("golden", converged_at=11))
        delta_a, delta_b = a.consume_delta(), b.consume_delta()

        ab = ReplayMemo.merge_payloads(
            ReplayMemo.merge_payloads(None, delta_a), delta_b
        )
        ba = ReplayMemo.merge_payloads(
            ReplayMemo.merge_payloads(None, delta_b), delta_a
        )
        memo_ab, memo_ba = ReplayMemo(), ReplayMemo()
        assert memo_ab.merge_payload(_round_trip(ab)) == 2
        assert memo_ba.merge_payload(_round_trip(ba)) == 2
        for key in (_key(1, 1), _key(2, 2)):
            one, two = memo_ab.lookup(*key), memo_ba.lookup(*key)
            assert one.kind == two.kind
            assert one.steps == two.steps and one.converged_at == two.converged_at


class TestMemoCache:
    def _payload(self):
        memo = ReplayMemo()
        memo.record([_key(3, 3)], _outcome_entry())
        return memo.to_payload()

    def test_store_load_round_trip(self, tmp_path):
        cache = MemoCache(tmp_path)
        path = cache.store("tdigest", "block", self._payload())
        assert path.name == (
            f"tdigest.memo.block.v{MEMO_FORMAT_VERSION}.json"
        )
        loaded = cache.load("tdigest", "block")
        assert loaded is not None
        assert loaded["backend"] == "block" and loaded["trace"] == "tdigest"
        memo = ReplayMemo()
        assert memo.merge_payload(loaded) == 1

    def test_mismatches_read_cold(self, tmp_path):
        cache = MemoCache(tmp_path)
        cache.store("tdigest", "block", self._payload())
        # backend participates in the file name: other backends miss
        assert cache.load("tdigest", "mir") is None
        # a payload whose stamped backend disagrees with the name misses
        stale = self._payload()
        stale["backend"] = "mir"
        with open(cache.path_for("t2", "block"), "w") as fh:
            json.dump(stale, fh)
        assert cache.load("t2", "block") is None
        # corrupt artifacts miss instead of crashing
        cache.path_for("t3", "block").write_text("not json{")
        assert cache.load("t3", "block") is None
        # format version participates in the file name too
        wrong = self._payload()
        wrong["format"] = MEMO_FORMAT_VERSION + 1
        with open(cache.path_for("t4", "block"), "w") as fh:
            json.dump(wrong, fh)
        assert cache.load("t4", "block") is None

    def test_from_env_follows_trace_cache(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_MEMO_CACHE", raising=False)
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "traces"))
        cache = MemoCache.from_env()
        assert cache is not None and cache.root == tmp_path / "traces"
        monkeypatch.setenv("REPRO_MEMO_CACHE", str(tmp_path / "memos"))
        assert MemoCache.from_env().root == tmp_path / "memos"
        for off in ("0", "off", "none", "DISABLED"):
            monkeypatch.setenv("REPRO_MEMO_CACHE", off)
            assert MemoCache.from_env() is None

    def test_merge_store_commutes_on_disjoint_deltas(self, tmp_path):
        a = ReplayMemo()
        a.record([_key(1, 1)], _outcome_entry())
        b = ReplayMemo()
        b.record([_key(2, 2)], _MemoEntry("golden", converged_at=5))
        delta_a, delta_b = a.consume_delta(), b.consume_delta()

        one, two = MemoCache(tmp_path / "ab"), MemoCache(tmp_path / "ba")
        one.merge_store("t", "block", delta_a)
        one.merge_store("t", "block", delta_b)
        two.merge_store("t", "block", delta_b)
        two.merge_store("t", "block", delta_a)
        memo_ab, memo_ba = ReplayMemo(), ReplayMemo()
        assert memo_ab.merge_payload(one.load("t", "block")) == 2
        assert memo_ba.merge_payload(two.load("t", "block")) == 2
        for key in (_key(1, 1), _key(2, 2)):
            assert memo_ab.lookup(*key).kind == memo_ba.lookup(*key).kind


def _divergent_specs(workload, limit=40):
    """Low-bit colidx flips on small cg: divergent control flow that runs
    to completion — the evict-then-complete shape the memo records."""
    trace = workload.traced_run().trace
    sites = enumerate_fault_sites(trace, "colidx", bit_stride=7)
    return [site.to_spec() for site in sites[:limit]]


class TestInjectorWarmStart:
    def test_fresh_injector_answers_from_persisted_memo(
        self, tmp_path, monkeypatch
    ):
        """The pinned cross-process path: injector A learns entries and
        ships a delta; the orchestrator-side merge persists it; a fresh
        injector B (new context, same trace digest) warm-starts and
        answers divergent replays from the artifact, bit-identically."""
        monkeypatch.setenv("REPRO_MEMO_CACHE", str(tmp_path))
        digest = trace_digest("cg", {"n": 6})
        workload = get_workload("cg", n=6)
        specs = _divergent_specs(workload)

        learner = DeterministicFaultInjector(workload, memo_key=digest)
        first = learner.inject_many(specs)
        delta = learner.consume_memo_delta()
        assert delta is not None and delta["keys"]
        assert delta["trace"] == digest
        assert delta["backend"] == default_backend()
        MemoCache.from_env().merge_store(digest, default_backend(), delta)

        fresh = DeterministicFaultInjector(
            get_workload("cg", n=6), memo_key=digest
        )
        second = fresh.inject_many(specs)
        stats = fresh.context.stats
        assert stats.memo_persist_hits >= 1
        assert stats.memo_persist_hits <= stats.memo_hits
        for a, b in zip(first, second):
            assert a.outcome == b.outcome and a.detail == b.detail

    def test_no_memo_key_never_touches_the_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_MEMO_CACHE", str(tmp_path))
        workload = get_workload("cg", n=6)
        injector = DeterministicFaultInjector(workload)
        injector.inject_many(_divergent_specs(workload, limit=8))
        assert injector.consume_memo_delta() is None
        assert list(tmp_path.iterdir()) == []


CAMPAIGN_ARGS = [
    "campaign", "run", "cg", "--plan", "exhaustive:7",
    "--objects", "colidx", "--set", "n=6",
]


def _memo_counters(store_path, run_id=None):
    with CampaignStore(store_path) as store:
        (record,) = store.campaigns()
        if run_id is None:
            merged = store.campaign_metrics(record.campaign_id)
        else:
            merged = store.run_metrics(record.campaign_id)[run_id]
    totals = {}
    for entry in merged.get("counters", []):
        totals[entry["name"]] = totals.get(entry["name"], 0) + entry["value"]
    return totals


def _histogram(store_path):
    with CampaignStore(store_path) as store:
        (record,) = store.campaigns()
        return store.outcome_histograms(record.campaign_id)


class TestCampaignWarmStart:
    @pytest.fixture()
    def caches(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "trace"))
        monkeypatch.setenv("REPRO_MEMO_CACHE", str(tmp_path / "memo"))
        return tmp_path

    def test_fresh_store_rerun_with_workers_answers_from_memo(
        self, caches, capsys
    ):
        """A completed campaign persists the memo artifact; rerunning the
        identical campaign into a *fresh* store (fresh injectors, pooled
        workers) answers replays from it — identical outcome histogram."""
        seed_store = str(caches / "seed.sqlite")
        assert main([*CAMPAIGN_ARGS, "--workers", "1",
                     "--store", seed_store]) == 0
        artifact = (caches / "memo") / (
            f"{trace_digest('cg', {'n': 6})}.memo."
            f"{default_backend()}.v{MEMO_FORMAT_VERSION}.json"
        )
        assert artifact.exists()
        seed = _memo_counters(seed_store)
        assert seed.get("replay.memo_persist_merges", 0) >= 1

        rerun_store = str(caches / "rerun.sqlite")
        assert main([*CAMPAIGN_ARGS, "--workers", "2",
                     "--store", rerun_store]) == 0
        capsys.readouterr()
        rerun = _memo_counters(rerun_store)
        assert rerun.get("replay.memo_persist_hits", 0) >= 1
        assert _histogram(rerun_store) == _histogram(seed_store)

        # the stats command surfaces the persisted-memo warm-start line
        assert main(["stats", "cg", "--plan", "exhaustive:7",
                     "--objects", "colidx", "--set", "n=6",
                     "--store", rerun_store]) == 0
        out = capsys.readouterr().out
        assert "memo store" in out and "warm-start hits" in out
        assert "speculation" in out

    def test_resumed_campaign_answers_from_memo(self, caches, capsys):
        """An interrupted campaign resumes with a warm memo: the artifact
        persisted by earlier runs answers replays in the resumed run."""
        seed_store = str(caches / "seed.sqlite")
        assert main([*CAMPAIGN_ARGS, "--workers", "1",
                     "--store", seed_store]) == 0

        store_path = str(caches / "resumable.sqlite")
        assert main([*CAMPAIGN_ARGS, "--workers", "1", "--max-shards", "2",
                     "--store", store_path]) == 0
        assert main(["campaign", "resume", "cg", "--plan", "exhaustive:7",
                     "--objects", "colidx", "--set", "n=6", "--workers", "1",
                     "--store", store_path]) == 0
        capsys.readouterr()
        with CampaignStore(store_path) as store:
            (record,) = store.campaigns()
            resumed_run = max(store.run_metrics(record.campaign_id))
        resumed = _memo_counters(store_path, run_id=resumed_run)
        assert resumed.get("replay.memo_persist_loads", 0) >= 1
        assert resumed.get("replay.memo_persist_hits", 0) >= 1
