"""CLI smoke tests: `python -m repro protect plan|apply|validate|report`.

Also covers the campaign store's v2 → v3 migration: opening a pre-existing
v2 store must upgrade it in place (adding the empty protection tables)
while keeping every campaign row readable.
"""

import os
import sqlite3
import subprocess
import sys

import pytest

from repro.campaigns.cli import main
from repro.campaigns.store import SCHEMA_VERSION, CampaignStore, StoreVersionError

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")

PLAN_ARGS = [
    "protect", "plan", "matmul", "--set", "n=4", "--budget", "2.0",
    "--max-injections", "20", "--bit-stride", "8",
]


@pytest.fixture()
def store_path(tmp_path):
    return str(tmp_path / "campaigns.sqlite")


class TestProtectInProcess:
    def test_plan_apply_validate_report_loop(self, store_path, capsys):
        assert main([*PLAN_ARGS, "--store", store_path]) == 0
        out = capsys.readouterr().out
        assert "object(s) protected" in out and "under budget 2x" in out
        plan_id = out.split()[1]
        assert plan_id.startswith("p")

        # planning again lands on the same content-addressed plan
        assert main([*PLAN_ARGS, "--store", store_path]) == 0
        assert plan_id in capsys.readouterr().out

        assert main(["protect", "apply", plan_id, "--store", store_path]) == 0
        out = capsys.readouterr().out
        assert "measured overhead" in out
        assert "bit-identical to the baseline" in out

        assert main(
            ["protect", "validate", plan_id, "--tests", "25",
             "--bit-stride", "8", "--store", store_path]
        ) == 0
        out = capsys.readouterr().out
        assert "validation complete" in out
        assert "prot masked" in out

        # report renders plan + residual tables from the store alone
        assert main(["protect", "report", plan_id, "--store", store_path]) == 0
        out = capsys.readouterr().out
        assert "status   : validated" in out
        assert "predicted total" in out
        assert "delta" in out

        # a workload name resolves to its latest plan
        assert main(["protect", "report", "matmul", "--store", store_path]) == 0
        assert plan_id in capsys.readouterr().out

        # the bare listing shows the plan row
        assert main(["protect", "report", "--store", store_path]) == 0
        listing = capsys.readouterr().out
        assert plan_id in listing and "validated" in listing

    def test_plan_from_campaign_reports(self, store_path, capsys):
        """--campaign reuses stored aDVF rows and adopts the campaign kwargs."""
        assert main(
            ["campaign", "run", "matmul", "--plan", "fixed:8", "--set", "n=4",
             "--store", store_path, "--workers", "1"]
        ) == 0
        campaign_id = capsys.readouterr().out.split()[1].rstrip(":")
        assert main(
            ["campaign", "report", campaign_id, "--max-injections", "10",
             "--bit-stride", "16", "--store", store_path, "--workers", "1"]
        ) == 0
        capsys.readouterr()

        assert main(
            ["protect", "plan", "matmul", "--campaign", campaign_id,
             "--budget", "2.0", "--store", store_path]
        ) == 0
        out = capsys.readouterr().out
        assert "object(s) protected" in out

        # workload/kwargs mismatches are rejected instead of silently mixed
        with pytest.raises(SystemExit, match="measured workload"):
            main(["protect", "plan", "cg", "--campaign", campaign_id,
                  "--store", store_path])
        with pytest.raises(SystemExit, match="drop --set"):
            main(["protect", "plan", "matmul", "--campaign", campaign_id,
                  "--set", "n=6", "--store", store_path])
        with pytest.raises(SystemExit, match="no campaign"):
            main(["protect", "plan", "matmul", "--campaign", "cmissing",
                  "--store", store_path])

    def test_error_paths(self, store_path, capsys):
        with pytest.raises(SystemExit, match="neither a protection plan"):
            main(["protect", "apply", "nonsense", "--store", store_path])
        # typos in --objects / --schemes fail fast, before any analysis
        with pytest.raises(SystemExit, match="unknown data object"):
            main(["protect", "plan", "matmul", "--set", "n=4",
                  "--objects", "colix", "--store", store_path])
        with pytest.raises(SystemExit, match="unknown protection scheme"):
            main(["protect", "plan", "matmul", "--set", "n=4",
                  "--schemes", "bogus", "--store", store_path])
        with pytest.raises(SystemExit, match="no protection plans"):
            main(["protect", "validate", "matmul", "--store", store_path])
        with pytest.raises(SystemExit):
            main(["protect", "plan", "not-a-workload", "--store", store_path])
        main(["protect", "report", "--store", store_path])
        assert "no protection plans" in capsys.readouterr().out


class TestProtectSubprocess:
    def test_module_entry_point(self, store_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-m", "repro", *PLAN_ARGS, "--store", store_path],
            capture_output=True, text=True, env=env, cwd=REPO_ROOT, timeout=600,
        )
        assert proc.returncode == 0, proc.stderr
        assert "object(s) protected" in proc.stdout


class TestStoreMigrationChain:
    def _make_v2_store(self, path, campaign_id="cdeadbeef00000000"):
        """Fabricate a v2-era store file with one campaign + one shard."""
        with CampaignStore(path) as store:
            store.ensure_campaign("matmul", {"n": 4}, {"kind": "exhaustive"}, 8)
        conn = sqlite3.connect(path)
        with conn:
            conn.execute(
                "UPDATE meta SET value = '2' WHERE key = 'schema_version'"
            )
            conn.execute("DROP TABLE protection_plans")
            conn.execute("DROP TABLE validation_runs")
        conn.close()

    def _make_v3_store(self, path):
        """Fabricate a v3-era store: no replay-batch columns anywhere."""
        with CampaignStore(path) as store:
            campaign_id = store.ensure_campaign(
                "matmul", {"n": 4}, {"kind": "exhaustive"}, 8
            )
        conn = sqlite3.connect(path)
        with conn:
            conn.execute(
                "UPDATE meta SET value = '3' WHERE key = 'schema_version'"
            )
            for column in ("batches", "memo_hits", "memo_misses"):
                conn.execute(f"ALTER TABLE shards DROP COLUMN {column}")
            conn.execute("ALTER TABLE validation_runs DROP COLUMN campaign_id")
            conn.execute(
                "INSERT INTO shards (campaign_id, shard_index, object_name, "
                "batch, run_id, spec_count, duration_s, analysis_s, "
                "recorded_at) VALUES (?, 0, 'C', 0, 1, 8, 0.5, 0.1, 0)",
                (campaign_id,),
            )
            conn.execute(
                "INSERT INTO validation_runs (plan_id, object_name, variant, "
                "scheme, tests, successes, histogram, recorded_at) "
                "VALUES ('p1', 'C', 'baseline', 'abft_checksum', 10, 5, "
                "'{}', 0)"
            )
        conn.close()
        return campaign_id

    def test_v2_migration_preserves_campaigns_and_adds_tables(self, tmp_path):
        path = str(tmp_path / "old.sqlite")
        self._make_v2_store(path)

        with CampaignStore(path) as store:
            assert store.schema_version == SCHEMA_VERSION == 7
            # old campaign rows survive untouched
            (record,) = store.campaigns()
            assert record.workload == "matmul"
            # the new tables exist and start empty
            assert store.protection_plans() == []
            store.save_protection_plan("p123", "matmul", {"n": 4}, 2.0, {"x": 1})
            assert store.protection_plan("p123").plan == {"x": 1}

    def test_v3_migration_defaults_replay_batch_columns(self, tmp_path):
        path = str(tmp_path / "v3.sqlite")
        campaign_id = self._make_v3_store(path)

        with CampaignStore(path) as store:
            assert store.schema_version == SCHEMA_VERSION == 7
            # pre-batching shard rows read back with zeroed counters
            (shard,) = store.completed_shards(campaign_id).values()
            assert shard.spec_count == 8 and shard.duration_s == 0.5
            assert shard.batches == 0
            assert shard.memo_hits == 0 and shard.memo_misses == 0
            assert shard.faults_per_restore == 0.0
            # pre-orchestrator validation rows carry an empty campaign link
            (run,) = store.validation_runs("p1")
            assert run.tests == 10 and run.campaign_id == ""
            # new writes land with the columns populated
            store.save_validation_run(
                "p2", "C", "protected", "abft_checksum", 4, 4, {},
                campaign_id="c123",
            )
            assert store.validation_runs("p2")[0].campaign_id == "c123"

    def test_protect_plan_on_migrated_store(self, tmp_path, capsys):
        path = str(tmp_path / "old.sqlite")
        self._make_v2_store(path)
        assert main([*PLAN_ARGS, "--store", path]) == 0
        assert "object(s) protected" in capsys.readouterr().out
        with CampaignStore(path) as store:
            assert store.schema_version == 7
            assert len(store.protection_plans()) == 1

    def test_future_versions_still_rejected(self, tmp_path):
        path = str(tmp_path / "future.sqlite")
        with CampaignStore(path):
            pass
        conn = sqlite3.connect(path)
        with conn:
            conn.execute("UPDATE meta SET value = '99' WHERE key = 'schema_version'")
        conn.close()
        with pytest.raises(StoreVersionError):
            CampaignStore(path)
