"""The columnar trace store: event fidelity, persistence, cache, fallback.

Contracts under test:

* ``ColumnarTrace`` reconstructs an event stream identical to the full
  ``Trace`` of the same (deterministic) execution;
* ``.npz`` and ``.jsonl`` artifacts round-trip every event field;
* the trace cache is content-addressed, hit/miss accounted, and honours
  ``REPRO_TRACE_CACHE`` (including the ``off`` switch);
* the pure-python fallback (NumPy masked out) keeps the store fully
  functional with ``columns()`` degrading to ``None``;
* direct ``Trace.events`` access warns (deprecated in favour of the
  ``TraceLike`` protocol).
"""

from __future__ import annotations

import pytest

import repro.tracing.columnar as columnar_module
from repro.tracing import (
    ColumnarTrace,
    ColumnarTraceSink,
    Trace,
    TraceCache,
    trace_digest,
)
from repro.tracing.events import TraceEvent
from repro.workloads.registry import get_workload

_EVENT_FIELDS = TraceEvent.__slots__


def _assert_streams_equal(a, b):
    assert len(a) == len(b)
    for x, y in zip(a, b):
        for field in _EVENT_FIELDS:
            assert getattr(x, field) == getattr(y, field), (x.dynamic_id, field)


@pytest.fixture()
def matmul_traces():
    workload = get_workload("matmul")
    full = workload.traced_run().trace
    columnar = workload.traced_run(columnar=True).trace
    return full, columnar


# --------------------------------------------------------------------- #
# event fidelity and columns
# --------------------------------------------------------------------- #
class TestColumnarTrace:
    def test_promoted_sink_is_the_columnar_trace(self):
        assert ColumnarTraceSink is ColumnarTrace

    def test_event_stream_matches_full_trace(self, matmul_traces):
        full, columnar = matmul_traces
        _assert_streams_equal(full, columnar)

    def test_events_are_memoised(self, matmul_traces):
        _, columnar = matmul_traces
        assert columnar[7] is columnar[7]

    @pytest.mark.skipif(
        not columnar_module.have_numpy(), reason="columns need NumPy"
    )
    def test_columns_are_consistent_with_events(self, matmul_traces):
        full, columnar = matmul_traces
        cols = columnar.columns()
        assert cols is not None
        assert len(cols.opcode) == len(full)
        assert cols.offsets[0] == 0 and cols.offsets[-1] == len(cols.producers)
        # spot-check a store event's columns against the event view
        store = next(e for e in full if e.is_store)
        i = store.dynamic_id
        assert cols.opcode[i] == columnar_module.STORE_CODE
        assert cols.element[i] == store.element_index
        assert cols.address[i] == store.address
        names = {oid: name for name, oid in cols.object_index.items()}
        assert names[int(cols.object_id[i])] == store.object_name

    def test_per_field_accessors(self, matmul_traces):
        full, columnar = matmul_traces
        event = full[42]
        assert columnar.opcode_of(42) is event.opcode
        assert columnar.static_uid_of(42) == event.static_uid
        assert columnar.operand_count(42) == event.operand_count()
        for i in range(event.operand_count()):
            assert columnar.operand_value(42, i) == event.operand_values[i]
            assert columnar.operand_type(42, i) == event.operand_types[i]
        assert columnar.operand_producers_of(42) == list(event.operand_producers)

    def test_out_of_order_append_rejected(self, matmul_traces):
        full, _ = matmul_traces
        trace = ColumnarTrace()
        with pytest.raises(ValueError, match="in order"):
            trace.append(full[5])


# --------------------------------------------------------------------- #
# persistence
# --------------------------------------------------------------------- #
class TestPersistence:
    @pytest.mark.parametrize("suffix", [".npz", ".jsonl"])
    def test_roundtrip(self, matmul_traces, tmp_path, suffix):
        if suffix == ".npz" and not columnar_module.have_numpy():
            pytest.skip(".npz artifacts need NumPy")
        _, columnar = matmul_traces
        path = columnar.save(tmp_path / f"trace{suffix}")
        reloaded = ColumnarTrace.load(path)
        _assert_streams_equal(columnar, reloaded)

    def test_jsonl_version_check(self, matmul_traces, tmp_path):
        _, columnar = matmul_traces
        path = columnar.save(tmp_path / "trace.jsonl")
        text = path.read_text().splitlines()
        text[0] = text[0].replace('"version": 1', '"version": 999')
        path.write_text("\n".join(text))
        with pytest.raises(ValueError, match="version"):
            ColumnarTrace.load(path)


# --------------------------------------------------------------------- #
# trace cache
# --------------------------------------------------------------------- #
class TestTraceCache:
    def test_digest_is_stable_and_kwarg_sensitive(self):
        assert trace_digest("matmul", {}) == trace_digest("matmul", {})
        assert trace_digest("matmul", {}) != trace_digest("matmul", {"n": 4})
        assert trace_digest("matmul", {}) != trace_digest("cg", {})

    def test_get_or_build_hits_after_miss(self, matmul_traces, tmp_path):
        _, columnar = matmul_traces
        cache = TraceCache(tmp_path / "cache")
        digest = trace_digest("matmul", {})
        built, hit = cache.get_or_build(digest, lambda: columnar)
        assert not hit and built is columnar
        served, hit = cache.get_or_build(
            digest, lambda: pytest.fail("must not rebuild on a hit")
        )
        assert hit
        _assert_streams_equal(columnar, served)
        assert (cache.hits, cache.misses) == (1, 1)

    def test_from_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "c"))
        cache = TraceCache.from_env()
        assert cache is not None and cache.root == tmp_path / "c"
        monkeypatch.setenv("REPRO_TRACE_CACHE", "off")
        assert TraceCache.from_env() is None


# --------------------------------------------------------------------- #
# pure-python fallback
# --------------------------------------------------------------------- #
class TestPurePythonFallback:
    @pytest.fixture()
    def no_numpy(self, monkeypatch):
        monkeypatch.setattr(columnar_module, "_np", None)

    def test_columns_degrade_to_none(self, matmul_traces, no_numpy):
        full, _ = matmul_traces
        trace = ColumnarTrace.from_events(full)
        assert trace.columns() is None
        _assert_streams_equal(full, trace)

    def test_jsonl_fallback_roundtrip(self, matmul_traces, tmp_path, no_numpy):
        full, _ = matmul_traces
        trace = ColumnarTrace.from_events(full)
        assert columnar_module.artifact_suffix() == ".jsonl"
        reloaded = ColumnarTrace.load(trace.save(tmp_path / "t.jsonl"))
        _assert_streams_equal(trace, reloaded)

    def test_npz_requires_numpy(self, matmul_traces, tmp_path, no_numpy):
        full, _ = matmul_traces
        trace = ColumnarTrace.from_events(full)
        with pytest.raises(RuntimeError, match="NumPy"):
            trace.save(tmp_path / "t.npz")

    @pytest.mark.skipif(
        not columnar_module.have_numpy(), reason="needs NumPy to write the .npz"
    )
    def test_cache_skips_foreign_npz_artifacts(
        self, matmul_traces, tmp_path, monkeypatch
    ):
        _, columnar = matmul_traces
        cache = TraceCache(tmp_path / "cache")
        digest = trace_digest("matmul", {})
        cache.store(digest, columnar)
        assert cache.find(digest).suffix == ".npz"
        monkeypatch.setattr(columnar_module, "_np", None)
        assert cache.find(digest) is None  # unreadable without numpy


# --------------------------------------------------------------------- #
# Trace.events deprecation shim
# --------------------------------------------------------------------- #
def test_trace_events_access_is_deprecated(matmul_traces):
    full, _ = matmul_traces
    with pytest.warns(DeprecationWarning, match="TraceLike"):
        events = full.events
    assert len(events) == len(full)
