"""Deterministic fault injector (§IV).

The injector executes a workload from identical initial state with one
single-bit fault applied at a specific dynamic instruction operand, runs it
to completion, and classifies the outcome against the golden run using the
workload's acceptance criterion.  MOARD uses it for the analyses the trace
analysis tool cannot resolve statically: algorithm-level masking, corrupted
control flow / addressing, and value-overshadowing confirmation.

Two execution strategies are available:

``mode="replay"`` (default)
    Checkpointed replay via :class:`~repro.core.replay.ReplayContext`: the
    golden run and a snapshot schedule are computed once, each injection
    restores the snapshot nearest the fault site and runs only the suffix,
    and executions that converge back onto the golden state stop early.
    Outcomes are bit-identical to full re-runs (asserted by the test suite).

``mode="rerun"``
    The seed behaviour — a fresh instance executed from scratch per fault
    by the tree-walking interpreter.  Kept as the ground-truth oracle for
    equivalence tests and benchmarks; it deliberately avoids the decoded
    engine so an engine bug cannot hide in a replay-vs-rerun comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

import numpy as np

from repro.core.acceptance import OutcomeClass, ScalarResultCheck, classify_outcome
from repro.core.replay import BatchedReplayContext, ReplayContext
from repro.vm.errors import StepLimitExceeded, VMError
from repro.vm.faults import FaultSpec

if TYPE_CHECKING:  # pragma: no cover - import only needed for typing
    from repro.workloads.base import RunOutcome, Workload



@dataclass
class FaultInjectionResult:
    """Classification of one faulty run."""

    spec: FaultSpec
    outcome: OutcomeClass
    detail: str = ""

    @property
    def masked(self) -> bool:
        return self.outcome.is_masked

    def to_row(self) -> Dict[str, object]:
        """Flat-dict form matching the campaign store's outcome columns."""
        row = self.spec.to_dict()
        row["outcome"] = self.outcome.value
        row["detail"] = self.detail
        return row

    @classmethod
    def from_row(cls, row: Dict[str, object]) -> "FaultInjectionResult":
        """Inverse of :meth:`to_row`."""
        return cls(
            spec=FaultSpec.from_dict(row),
            outcome=OutcomeClass(row["outcome"]),
            detail=str(row.get("detail", "")),
        )


class DeterministicFaultInjector:
    """Run a workload with single, precisely-placed bit flips."""

    def __init__(
        self,
        workload: Workload,
        check_return_value: Optional[bool] = None,
        mode: str = "replay",
        checkpoint_interval: Optional[int] = None,
        target_checkpoints: int = 64,
        context: Optional[ReplayContext] = None,
        memo_key: Optional[str] = None,
    ) -> None:
        if mode not in ("replay", "rerun"):
            raise ValueError(f"unknown injection mode {mode!r}")
        if checkpoint_interval is not None and checkpoint_interval < 1:
            raise ValueError(
                f"checkpoint_interval must be >= 1, got {checkpoint_interval}"
            )
        if context is not None and mode != "replay":
            raise ValueError("a prebuilt ReplayContext requires mode='replay'")
        self.workload = workload
        if check_return_value is None:
            check_return_value = getattr(workload, "check_return_value", True)
        self.check_return_value = check_return_value
        self.mode = mode
        self.checkpoint_interval = checkpoint_interval
        self.target_checkpoints = target_checkpoints
        self._golden: Optional[RunOutcome] = None
        #: A caller-supplied golden run + snapshot schedule may be shared
        #: (e.g. the aDVF engine records its golden trace during the same
        #: execution that captures the checkpoints).
        self._context: Optional[ReplayContext] = context
        #: Trace digest keying the persisted convergence-memo artifact
        #: (``None`` disables memo persistence for this injector).
        self.memo_key = memo_key
        self.runs = 0
        self._stats_seen: Dict[str, int] = {}
        self._warmed = False
        self._memo_backend: Optional[str] = None
        #: aDVF speculation telemetry folded into :meth:`consume_batch_stats`
        #: (stamped per shard next to the scheduler counters).
        self._speculation: Dict[str, int] = {}

    # ------------------------------------------------------------------ #
    @property
    def context(self) -> ReplayContext:
        """The shared golden run + snapshot schedule (built on first use).

        Lazily-built contexts are :class:`BatchedReplayContext`, so
        :meth:`inject_many` can route through the batch scheduler;
        caller-supplied plain :class:`ReplayContext` instances stay on the
        per-fault sequential path.
        """
        if self._context is None:
            self._context = BatchedReplayContext(
                self.workload,
                checkpoint_interval=self.checkpoint_interval,
                target_checkpoints=self.target_checkpoints,
            )
        self._warm_start()
        return self._context

    def _warm_start(self) -> None:
        """Merge the persisted memo artifact into the context's memo, once.

        A no-op without a ``memo_key``, a batch-capable context, or a
        configured :class:`~repro.tracing.cache.MemoCache`; a missing or
        mismatched artifact just leaves the memo cold.
        """
        if self._warmed:
            return
        self._warmed = True
        if self.memo_key is None:
            return
        context = self._context
        if not isinstance(context, BatchedReplayContext):
            return
        memo = context.memo
        if memo is None:
            return
        from repro.tracing.cache import MemoCache
        from repro.vm.engine import default_backend

        cache = MemoCache.from_env()
        if cache is None:
            return
        self._memo_backend = default_backend()
        memo.merge_payload(cache.load(self.memo_key, self._memo_backend))

    @property
    def golden(self) -> RunOutcome:
        """The cached fault-free reference run.

        Each mode classifies against a golden produced by its own executor,
        so ``rerun`` stays a fully interpreter-based oracle — an engine bug
        cannot leak into its baseline.
        """
        if self._golden is None:
            if self.mode == "replay":
                self._golden = self.context.golden_outcome()
            else:
                self._golden = self.workload.fresh_instance().run(
                    executor="interpreter"
                )
        return self._golden

    def inject(self, spec: FaultSpec) -> FaultInjectionResult:
        """Execute one faulty run and classify the outcome."""
        self.runs += 1
        outcome = None
        error: Optional[BaseException] = None
        try:
            if self.mode == "replay":
                outcome = self.context.replay(spec)
            else:
                outcome = self.workload.fresh_instance().run(
                    fault=spec, executor="interpreter"
                )
        except (StepLimitExceeded, VMError) as exc:
            error = exc
        return self._classify(spec, outcome, error)

    def inject_many(self, specs: Sequence[FaultSpec]) -> List[FaultInjectionResult]:
        """Inject every spec, batched through the replay scheduler.

        In ``replay`` mode with a batch-capable context the specs are
        submitted as one batch: grouped by snapshot interval, driven
        through a shared lockstep suffix walk, and answered by the
        convergence memo where possible — outcome-identical to a
        sequential :meth:`inject` loop (the parity suite asserts it) but
        amortizing snapshot restores and suffix execution across the
        batch.  Other modes fall back to the sequential loop.  See
        :mod:`repro.parallel` for the multiprocessing campaign runner.
        """
        specs = list(specs)
        if self.mode != "replay" or len(specs) < 2:
            return [self.inject(spec) for spec in specs]
        context = self.context
        if not isinstance(context, BatchedReplayContext):
            # sequential fallback: batch the per-replay counter increments
            # into local ints, flushed once at the end of the loop
            with context.deferred_metrics():
                return [self.inject(spec) for spec in specs]
        self.runs += len(specs)
        replayed = context.replay_many(specs)
        return [
            self._classify(result.spec, result.outcome, result.error)
            for result in replayed
        ]

    def consume_batch_stats(self) -> Dict[str, int]:
        """Batch-scheduler counter deltas since the previous call.

        Returns an empty dict when the injector has no batch-capable
        context (rerun mode, or a caller-supplied plain context).  Used by
        campaign workers to stamp per-shard scheduler telemetry (batches,
        memo hit rate) into the store.
        """
        context = self._context
        if not isinstance(context, BatchedReplayContext):
            return {}
        current = context.stats.to_dict()
        delta = {
            key: value - self._stats_seen.get(key, 0)
            for key, value in current.items()
        }
        self._stats_seen = current
        if self._speculation:
            for key, value in self._speculation.items():
                delta[key] = delta.get(key, 0) + value
            self._speculation = {}
        return delta

    def record_speculation(self, counts: Dict[str, int]) -> None:
        """Accumulate aDVF speculation telemetry (``speculated`` /
        ``spec_discards`` / ``spec_windows``) for the next
        :meth:`consume_batch_stats`, which stamps it into shard rows."""
        for key, value in counts.items():
            if value:
                self._speculation[key] = self._speculation.get(key, 0) + value

    def consume_memo_delta(self) -> Optional[Dict[str, object]]:
        """Payload of memo entries learned since the previous call.

        ``None`` when nothing new was recorded, the context has no memo,
        or the injector has no ``memo_key`` (persistence disabled).
        Campaign workers return this per chunk; the orchestrator folds
        the deltas into the persisted artifact via
        :meth:`repro.tracing.cache.MemoCache.merge_store`.
        """
        if self.memo_key is None:
            return None
        context = self._context
        if not isinstance(context, BatchedReplayContext):
            return None
        memo = context.memo
        if memo is None:
            return None
        delta = memo.consume_delta()
        if delta is not None:
            from repro.vm.engine import default_backend

            delta["trace"] = self.memo_key
            delta["backend"] = self._memo_backend or default_backend()
        return delta

    def _classify(
        self,
        spec: FaultSpec,
        outcome: Optional["RunOutcome"],
        error: Optional[BaseException],
    ) -> FaultInjectionResult:
        """Classify one faulty run (shared by the per-fault and batch paths)."""
        golden = self.golden
        crashed = hung = False
        detail = ""
        outputs: Dict[str, np.ndarray] = {}
        return_value = None
        if error is not None:
            if isinstance(error, StepLimitExceeded):
                hung = True
                detail = str(error)
            elif isinstance(error, VMError):
                crashed = True
                detail = str(error)
            else:
                # a non-VM failure is a harness bug, not an injection
                # outcome — surface it exactly like the sequential path
                raise error
        else:
            outputs = outcome.outputs
            return_value = outcome.return_value

        classification = classify_outcome(
            self.workload.acceptance,
            golden.outputs,
            outputs,
            crashed=crashed,
            hung=hung,
            golden_return=golden.return_value,
            faulty_return=return_value,
            return_check=ScalarResultCheck() if self.check_return_value else None,
        )
        return FaultInjectionResult(spec=spec, outcome=classification, detail=detail)

    # ------------------------------------------------------------------ #
    def outcome_histogram(
        self, results: Sequence[FaultInjectionResult]
    ) -> Dict[OutcomeClass, int]:
        histogram: Dict[OutcomeClass, int] = {}
        for result in results:
            histogram[result.outcome] = histogram.get(result.outcome, 0) + 1
        return histogram
