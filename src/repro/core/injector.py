"""Deterministic fault injector (§IV).

The injector re-executes a workload from identical initial state with one
single-bit fault applied at a specific dynamic instruction operand, runs it
to completion, and classifies the outcome against the golden run using the
workload's acceptance criterion.  MOARD uses it for the analyses the trace
analysis tool cannot resolve statically: algorithm-level masking, corrupted
control flow / addressing, and value-overshadowing confirmation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

import numpy as np

from repro.core.acceptance import OutcomeClass, ScalarResultCheck, classify_outcome
from repro.vm.errors import StepLimitExceeded, VMError
from repro.vm.faults import FaultSpec

if TYPE_CHECKING:  # pragma: no cover - import only needed for typing
    from repro.workloads.base import RunOutcome, Workload



@dataclass
class FaultInjectionResult:
    """Classification of one faulty run."""

    spec: FaultSpec
    outcome: OutcomeClass
    detail: str = ""

    @property
    def masked(self) -> bool:
        return self.outcome.is_masked


class DeterministicFaultInjector:
    """Run a workload with single, precisely-placed bit flips."""

    def __init__(self, workload: Workload, check_return_value: Optional[bool] = None) -> None:
        self.workload = workload
        if check_return_value is None:
            check_return_value = getattr(workload, "check_return_value", True)
        self.check_return_value = check_return_value
        self._golden: Optional[RunOutcome] = None
        self.runs = 0

    # ------------------------------------------------------------------ #
    @property
    def golden(self) -> RunOutcome:
        """The cached fault-free reference run."""
        if self._golden is None:
            self._golden = self.workload.golden_run()
        return self._golden

    def inject(self, spec: FaultSpec) -> FaultInjectionResult:
        """Execute one faulty run and classify the outcome."""
        golden = self.golden
        instance = self.workload.fresh_instance()
        self.runs += 1
        crashed = hung = False
        detail = ""
        outputs: Dict[str, np.ndarray] = {}
        return_value = None
        try:
            outcome = instance.run(fault=spec)
            outputs = outcome.outputs
            return_value = outcome.return_value
        except StepLimitExceeded as exc:
            hung = True
            detail = str(exc)
        except VMError as exc:
            crashed = True
            detail = str(exc)

        classification = classify_outcome(
            self.workload.acceptance,
            golden.outputs,
            outputs,
            crashed=crashed,
            hung=hung,
            golden_return=golden.return_value,
            faulty_return=return_value,
            return_check=ScalarResultCheck() if self.check_return_value else None,
        )
        return FaultInjectionResult(spec=spec, outcome=classification, detail=detail)

    def inject_many(self, specs: Sequence[FaultSpec]) -> List[FaultInjectionResult]:
        """Inject every spec (sequentially); see :mod:`repro.parallel` for the
        multiprocessing campaign runner."""
        return [self.inject(spec) for spec in specs]

    # ------------------------------------------------------------------ #
    def outcome_histogram(
        self, results: Sequence[FaultInjectionResult]
    ) -> Dict[OutcomeClass, int]:
        histogram: Dict[OutcomeClass, int] = {}
        for result in results:
            histogram[result.outcome] = histogram.get(result.outcome, 0) + 1
        return histogram
