"""Error patterns (§III-C, §VII-B).

An *error pattern* describes how erroneous bits are distributed within one
corrupted data element.  The evaluation of the paper uses single-bit flips
("they are the most common errors"); §VII-B sketches the extension to
multi-bit patterns (spatially contiguous or separated).  Both are modelled
here so the aDVF engine can be parameterised by an :class:`ErrorModel`.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple, Union

from repro.ir.types import IRType
from repro.vm.bits import bits_to_value, value_to_bits

Number = Union[int, float]


class BitClass(enum.Enum):
    """Coarse grouping of bit positions, used for error equivalence.

    For IEEE-754 doubles the behavioural difference between flipping the
    sign, an exponent bit, a high mantissa bit or a low mantissa bit is much
    larger than the difference between two neighbouring mantissa bits;
    grouping by class is what lets the equivalence cache (and the injection
    budget) stay small without changing the shape of the results.
    """

    SIGN = "sign"
    EXPONENT = "exponent"
    MANTISSA_HIGH = "mantissa_high"
    MANTISSA_LOW = "mantissa_low"
    INT_HIGH = "int_high"
    INT_MID = "int_mid"
    INT_LOW = "int_low"


def classify_bit(bit: int, ir_type: IRType) -> BitClass:
    """Map a bit position to its :class:`BitClass` for ``ir_type``."""
    if ir_type.is_float and ir_type.bits == 64:
        if bit == 63:
            return BitClass.SIGN
        if bit >= 52:
            return BitClass.EXPONENT
        if bit >= 26:
            return BitClass.MANTISSA_HIGH
        return BitClass.MANTISSA_LOW
    if ir_type.is_float and ir_type.bits == 32:
        if bit == 31:
            return BitClass.SIGN
        if bit >= 23:
            return BitClass.EXPONENT
        if bit >= 12:
            return BitClass.MANTISSA_HIGH
        return BitClass.MANTISSA_LOW
    width = ir_type.bits
    if bit >= 2 * width // 3:
        return BitClass.INT_HIGH
    if bit >= width // 3:
        return BitClass.INT_MID
    return BitClass.INT_LOW


@dataclass(frozen=True)
class ErrorPattern:
    """A specific set of bit positions flipped within one data element."""

    bits: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.bits:
            raise ValueError("an error pattern must flip at least one bit")
        if len(set(self.bits)) != len(self.bits):
            raise ValueError("an error pattern cannot flip the same bit twice")

    @property
    def is_single_bit(self) -> bool:
        return len(self.bits) == 1

    @property
    def primary_bit(self) -> int:
        """The lowest flipped bit (used for equivalence-class lookups)."""
        return min(self.bits)

    def apply(self, value: Number, ir_type: IRType) -> Number:
        """Return ``value`` with this pattern's bits flipped under ``ir_type``."""
        raw = value_to_bits(value, ir_type)
        for bit in self.bits:
            if bit >= ir_type.bits:
                raise ValueError(
                    f"bit {bit} outside {ir_type.bits}-bit type {ir_type}"
                )
            raw ^= 1 << bit
        return bits_to_value(raw, ir_type)

    def describe(self) -> str:
        return "+".join(str(b) for b in sorted(self.bits))


class ErrorModel(ABC):
    """Enumerates the error patterns considered for a value of a given type."""

    name: str = "abstract"

    @abstractmethod
    def patterns_for(self, ir_type: IRType) -> List[ErrorPattern]:
        """All error patterns this model considers for ``ir_type`` values."""

    def pattern_count(self, ir_type: IRType) -> int:
        return len(self.patterns_for(ir_type))

    def __iter__(self) -> Iterator[str]:  # pragma: no cover - trivial
        yield self.name


class SingleBitModel(ErrorModel):
    """One pattern per bit position — the paper's evaluation model.

    ``bit_stride`` > 1 subsamples the positions evenly (every ``stride``-th
    bit); aDVF then treats each sampled pattern as representative of its
    stride group, which keeps analysis cost proportional while preserving
    the per-bit-class behaviour.
    """

    def __init__(self, bit_stride: int = 1) -> None:
        if bit_stride < 1:
            raise ValueError("bit_stride must be >= 1")
        self.bit_stride = bit_stride
        self.name = "single-bit" if bit_stride == 1 else f"single-bit/{bit_stride}"
        self._cache: dict = {}

    def patterns_for(self, ir_type: IRType) -> List[ErrorPattern]:
        # Memoised per type: the aDVF loop asks once per participation, and
        # rebuilding 64 pattern objects each time dominated small analyses.
        patterns = self._cache.get(ir_type.name)
        if patterns is None:
            width = ir_type.bits
            patterns = self._cache[ir_type.name] = [
                ErrorPattern((bit,)) for bit in range(0, width, self.bit_stride)
            ]
        return patterns


class MultiBitModel(ErrorModel):
    """Two-bit patterns: spatially contiguous or separated by ``separation``.

    This implements the §VII-B extension.  For an n-bit type it enumerates
    ``(b, b+1)`` pairs (contiguous) or ``(b, b+separation)`` pairs.
    """

    def __init__(self, separation: int = 1, bit_stride: int = 1) -> None:
        if separation < 1:
            raise ValueError("separation must be >= 1")
        if bit_stride < 1:
            raise ValueError("bit_stride must be >= 1")
        self.separation = separation
        self.bit_stride = bit_stride
        kind = "contiguous" if separation == 1 else f"separated-{separation}"
        self.name = f"double-bit-{kind}"
        self._cache: dict = {}

    def patterns_for(self, ir_type: IRType) -> List[ErrorPattern]:
        patterns = self._cache.get(ir_type.name)
        if patterns is None:
            width = ir_type.bits
            patterns = self._cache[ir_type.name] = [
                ErrorPattern((bit, bit + self.separation))
                for bit in range(0, width - self.separation, self.bit_stride)
            ]
        return patterns


def patterns_by_class(
    model: ErrorModel, ir_type: IRType
) -> List[Tuple[ErrorPattern, BitClass]]:
    """Pair every pattern with the bit class of its primary bit."""
    return [
        (pattern, classify_bit(pattern.primary_bit, ir_type))
        for pattern in model.patterns_for(ir_type)
    ]
