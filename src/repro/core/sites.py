"""Enumeration of valid fault-injection sites for a data object (§V-B).

A *valid fault injection site* is "a bit in an instruction operand or output
that has a value of the target data object".  From a dynamic trace this is
exactly the participation list of the object (consumed operands plus store
destinations), crossed with the bit positions of the element type.  Both the
exhaustive validator and the random fault injector draw their sites from
here so the two campaigns and the aDVF model share one definition of the
fault space.  Any trace-like source works; columnar traces get the
vectorized participation pass automatically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.core.participation import Participation, ParticipationRole, find_participations
from repro.tracing.cursor import TraceLike
from repro.vm.faults import FaultSpec, FaultTarget


@dataclass(frozen=True)
class FaultSite:
    """One valid fault site: a participation crossed with a bit position."""

    participation: Participation
    bit: int

    def to_spec(self) -> FaultSpec:
        """Translate the site into the VM's fault vocabulary."""
        p = self.participation
        if p.role is ParticipationRole.STORE_DEST:
            return FaultSpec(
                dynamic_id=p.event_id,
                bit=self.bit,
                target=FaultTarget.STORE_DEST_OLD,
                note="store destination old value",
            )
        return FaultSpec(
            dynamic_id=p.event_id,
            bit=self.bit,
            target=FaultTarget.OPERAND,
            operand_index=p.operand_index,
            note="consumed operand",
        )


def enumerate_fault_sites(
    trace: TraceLike,
    object_name: str,
    bit_stride: int = 1,
    max_participations: Optional[int] = None,
) -> List[FaultSite]:
    """All valid fault sites of ``object_name`` in ``trace``.

    ``bit_stride`` subsamples bit positions evenly; ``max_participations``
    subsamples dynamic occurrences evenly.  Both keep campaigns tractable
    while sampling the same space the paper defines.
    """
    if bit_stride < 1:
        raise ValueError("bit_stride must be >= 1")
    participations = find_participations(
        trace, object_name, max_participations=max_participations
    )
    sites: List[FaultSite] = []
    for participation in participations:
        width = participation.value_type.bits
        for bit in range(0, width, bit_stride):
            sites.append(FaultSite(participation, bit))
    return sites


def iter_site_specs(sites: List[FaultSite]) -> Iterator[FaultSpec]:
    """Convenience: the :class:`FaultSpec` of every site, in order."""
    for site in sites:
        yield site.to_spec()
