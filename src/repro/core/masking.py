"""Operation-level error-masking analysis (§III-C).

Given one participation of the target data object in one dynamic operation
and one error pattern, decide — from operation semantics and the recorded
runtime values alone — whether the error would be masked, and if so under
which of the paper's three operation-level categories:

1. **Value overwriting** — stores over the erroneous element, truncations
   and shifts that throw the corrupted bits away.
2. **Logical and comparison operations** — the corrupted operand does not
   change the result of the logic/compare/select operation.
3. **Value overshadowing** — the corrupted operand of an addition or
   subtraction is dominated by the other operand, so the result is
   (numerically or practically) unchanged.

When the operation-level evidence is insufficient the verdict marks the
participation for error-propagation analysis and/or deterministic fault
injection, mirroring the decision procedure in Fig. 3 of the paper.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Optional

from repro.ir.instructions import (
    ADDITIVE_OPCODES,
    BITWISE_OPCODES,
    COMPARISON_OPCODES,
    Opcode,
    SHIFT_OPCODES,
)
from repro.core.participation import (
    Participation,
    ParticipationRole,
    is_read_modify_write,
)
from repro.core.patterns import ErrorPattern
from repro.core.reexec import ReexecStatus, reevaluate, results_identical
from repro.tracing.cursor import TraceLike
from repro.tracing.events import TraceEvent


class MaskingLevel(enum.Enum):
    """The paper's three analysis levels."""

    OPERATION = "operation"
    PROPAGATION = "propagation"
    ALGORITHM = "algorithm"


class MaskingCategory(enum.Enum):
    """The paper's operation-level masking categories (Fig. 5)."""

    OVERWRITE = "overwrite"
    LOGIC_COMPARE = "logic_compare"
    OVERSHADOW = "overshadow"
    #: Used for masking that can only be attributed to the algorithm level.
    ALGORITHMIC = "algorithmic"


@dataclass
class MaskingVerdict:
    """Outcome of the operation-level analysis for one (participation, pattern).

    ``masked`` is ``True``/``False`` when the operation-level evidence is
    conclusive and ``None`` when further analysis is needed;
    ``needs_propagation``/``needs_injection`` say which follow-up applies.
    """

    masked: Optional[bool]
    category: Optional[MaskingCategory] = None
    level: Optional[MaskingLevel] = None
    needs_propagation: bool = False
    needs_injection: bool = False
    overshadow_candidate: bool = False
    #: Relative deviation of the recomputed result (additive ops only).
    relative_deviation: Optional[float] = None
    #: Recomputed (corrupted) result, used to seed propagation analysis.
    corrupted_result: Optional[float] = None
    detail: str = ""

    @property
    def resolved(self) -> bool:
        return self.masked is not None and not (
            self.needs_propagation or self.needs_injection
        )


def _relative_deviation(original: float, corrupted: float) -> float:
    if math.isnan(corrupted) or math.isinf(corrupted):
        return math.inf
    if original == 0.0:
        return abs(corrupted)
    return abs(corrupted - original) / max(abs(original), 1e-300)


class OperationMaskingAnalyzer:
    """Implements the §III-C operation-level rules over a dynamic trace."""

    def __init__(self, trace: TraceLike, overshadow_threshold: float = 1e-10) -> None:
        self.trace = trace
        #: Relative deviation below which an additive result is considered a
        #: value-overshadowing candidate (confirmed by injection when enabled).
        self.overshadow_threshold = overshadow_threshold

    # ------------------------------------------------------------------ #
    def analyze(
        self,
        participation: Participation,
        pattern: ErrorPattern,
        event: Optional[TraceEvent] = None,
    ) -> MaskingVerdict:
        """Operation-level verdict for one participation under one pattern.

        ``event`` may carry the pre-materialised trace event of the
        participation (columnar consumers cache these); when omitted it is
        fetched from the trace.
        """
        if participation.role is ParticipationRole.STORE_DEST:
            return self._analyze_store_destination(participation, event=event)
        return self._analyze_consumption(participation, pattern, event=event)

    # ------------------------------------------------------------------ #
    # store destinations: value overwriting
    # ------------------------------------------------------------------ #
    def _analyze_store_destination(
        self,
        participation: Participation,
        event: Optional[TraceEvent] = None,
        rmw: Optional[bool] = None,
    ) -> MaskingVerdict:
        if rmw is None:
            if event is None:
                event = self.trace[participation.event_id]
            rmw = is_read_modify_write(self.trace, event)
        if rmw:
            # The value written back incorporates the (erroneous) old value;
            # the store does not overwrite the error.  The error's effect is
            # accounted for at the consuming operation, so this participation
            # is conclusively unmasked (paper's Statement B).
            return MaskingVerdict(
                masked=False,
                detail="store is a read-modify-write of the same element",
            )
        return MaskingVerdict(
            masked=True,
            category=MaskingCategory.OVERWRITE,
            level=MaskingLevel.OPERATION,
            detail="store overwrites the erroneous element",
        )

    # ------------------------------------------------------------------ #
    # consumed values
    # ------------------------------------------------------------------ #
    def _analyze_consumption(
        self,
        participation: Participation,
        pattern: ErrorPattern,
        event: Optional[TraceEvent] = None,
    ) -> MaskingVerdict:
        if event is None:
            event = self.trace[participation.event_id]
        index = participation.operand_index
        opcode = event.opcode
        original_value = event.operand_values[index]
        value_type = event.operand_types[index]
        corrupted_value = pattern.apply(original_value, value_type)

        # A corrupted value that the operation writes straight to memory:
        # nothing is masked here, the error moves into memory.
        if opcode is Opcode.STORE and index == 0:
            return MaskingVerdict(
                masked=None,
                needs_propagation=True,
                corrupted_result=corrupted_value,
                detail="corrupted value stored to memory",
            )
        # Corrupted address operands (store pointer, load pointer) and
        # corrupted branch conditions change addressing / control flow.
        if opcode is Opcode.STORE and index == 1:
            return MaskingVerdict(
                masked=None, needs_injection=True, detail="store address corrupted"
            )
        if opcode is Opcode.LOAD:
            return MaskingVerdict(
                masked=None, needs_injection=True, detail="load address corrupted"
            )
        if opcode is Opcode.BR:
            return MaskingVerdict(
                masked=None, needs_injection=True, detail="branch condition corrupted"
            )
        if opcode is Opcode.RET:
            return MaskingVerdict(
                masked=None, needs_injection=True, detail="return value corrupted"
            )

        values = list(event.operand_values)
        values[index] = corrupted_value
        reexec = reevaluate(event, values)

        if reexec.status is ReexecStatus.OPAQUE:
            return MaskingVerdict(
                masked=None, needs_injection=True, detail=reexec.detail
            )
        if reexec.status is ReexecStatus.TRAPPED:
            return MaskingVerdict(masked=False, detail=reexec.detail)
        if reexec.status is ReexecStatus.DIVERGED:
            return MaskingVerdict(
                masked=None, needs_injection=True, detail=reexec.detail
            )
        if reexec.status is ReexecStatus.NO_VALUE:
            return MaskingVerdict(
                masked=None, needs_injection=True, detail="unmodelled operation"
            )

        recomputed = reexec.value
        identical = results_identical(event, recomputed)
        category = self._category_for(opcode, index)

        if identical:
            return MaskingVerdict(
                masked=True,
                category=category,
                level=MaskingLevel.OPERATION,
                detail=f"{opcode.value} result unchanged by the corrupted operand",
            )

        # Not masked here.  For additive floating-point operations a small
        # relative deviation is a value-overshadowing candidate: whether the
        # outcome stays acceptable is decided downstream (propagation and, if
        # needed, deterministic injection), but the masking is attributed to
        # overshadowing because it is what shrinks the error (paper §III-C).
        verdict = MaskingVerdict(
            masked=None,
            needs_propagation=True,
            corrupted_result=recomputed,
            detail=f"{opcode.value} result changed; propagate",
        )
        if opcode in ADDITIVE_OPCODES and event.result_type is not None and (
            event.result_type.is_float
        ):
            deviation = _relative_deviation(float(event.result_value), float(recomputed))
            verdict.relative_deviation = deviation
            if deviation <= self.overshadow_threshold:
                verdict.overshadow_candidate = True
                verdict.detail = (
                    f"{opcode.value} deviation {deviation:.2e} below overshadow "
                    f"threshold"
                )
        return verdict

    # ------------------------------------------------------------------ #
    @staticmethod
    def _category_for(opcode: Opcode, operand_index: int) -> MaskingCategory:
        """Operation-level category when the recomputed result is unchanged."""
        if opcode in (Opcode.TRUNC, Opcode.FPTRUNC) or opcode in SHIFT_OPCODES:
            return MaskingCategory.OVERWRITE
        if (
            opcode in COMPARISON_OPCODES
            or opcode in BITWISE_OPCODES
            or opcode is Opcode.SELECT
        ):
            return MaskingCategory.LOGIC_COMPARE
        # additive, multiplicative, conversion and intrinsic absorption are
        # magnitude effects: value overshadowing.
        return MaskingCategory.OVERSHADOW
