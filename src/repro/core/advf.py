"""The aDVF engine (§III-B, §IV): putting the three analyses together.

For every participation of a target data object in the dynamic trace, and
for every error pattern of the configured error model, the engine decides
whether the error would be masked:

1. **operation level** — semantic rules over the recorded operand values
   (:mod:`repro.core.masking`);
2. **error propagation level** — bounded forward re-execution over the trace
   (:mod:`repro.core.propagation`);
3. **algorithm level** — deterministic fault injection plus the workload's
   acceptance criterion (:mod:`repro.core.injector`).

aDVF of a data object is the number of error-masking events divided by the
number of element participations (Eq. 1); the per-level and per-category
breakdowns reproduce Figures 4 and 5 of the paper.  Error-equivalence
caching (:mod:`repro.core.equivalence`) bounds the number of full analyses
and injections, mirroring the Relyzer-style acceleration the paper relies
on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.acceptance import OutcomeClass
from repro.core.equivalence import EquivalenceCache
from repro.core.injector import DeterministicFaultInjector
from repro.core.masking import (
    MaskingCategory,
    MaskingLevel,
    MaskingVerdict,
    OperationMaskingAnalyzer,
)
from repro.core.participation import (
    Participation,
    ParticipationRole,
    find_participations,
)
from repro.core.patterns import ErrorModel, ErrorPattern, SingleBitModel, classify_bit
from repro.core.propagation import PropagationAnalyzer
from repro.core.sites import FaultSite
from repro.tracing.trace import Trace

if TYPE_CHECKING:  # pragma: no cover - import only needed for typing
    from repro.workloads.base import Workload



@dataclass
class AnalysisConfig:
    """Knobs of the aDVF analysis.

    The defaults match the paper's evaluation (single-bit errors, propagation
    bound *k* = 50, deterministic injection for unresolved cases) with
    laptop-scale budgets for the injection campaign.
    """

    #: Maximum number of operations tracked after the target operation (§III-D).
    k_propagation: int = 50
    #: Error model: which error patterns are enumerated per data element.
    error_model: ErrorModel = field(default_factory=SingleBitModel)
    #: Resolve unresolved cases with deterministic fault injection.
    use_injection: bool = True
    #: Upper bound on injections per data object.
    max_injections: int = 400
    #: Full analyses per (static instruction, role, operand, bit) class before
    #: results are reused (error equivalence).
    equivalence_samples: int = 2
    #: Injections per (static instruction, role, operand, bit-class) before
    #: outcomes are reused.
    injection_samples_per_class: int = 2
    #: Relative deviation of an additive result below which the error is a
    #: value-overshadowing candidate.
    overshadow_threshold: float = 1e-10
    #: Evenly subsample the participation list (None = analyse all).
    max_participations: Optional[int] = None
    #: When injection is disabled or out of budget, credit analytic
    #: overshadowing candidates as masked (otherwise they count as unmasked).
    analytic_overshadow_fallback: bool = True
    #: Execution strategy for deterministic injection: ``"replay"`` resolves
    #: each fault by checkpointed replay from the nearest snapshot (fast,
    #: bit-identical); ``"rerun"`` re-executes from scratch (the seed path).
    injection_mode: str = "replay"


@dataclass
class AdvfResult:
    """aDVF of one data object plus its breakdowns (Figures 4 and 5)."""

    object_name: str
    value: float
    participations: int
    masked_events: float
    by_level: Dict[MaskingLevel, float] = field(default_factory=dict)
    by_category: Dict[MaskingCategory, float] = field(default_factory=dict)

    def level_fraction(self, level: MaskingLevel) -> float:
        """Contribution of ``level`` to the aDVF value (Fig. 4 stacking)."""
        if self.participations == 0:
            return 0.0
        return self.by_level.get(level, 0.0) / self.participations

    def category_fraction(self, category: MaskingCategory) -> float:
        """Contribution of ``category`` to the aDVF value (Fig. 5 stacking)."""
        if self.participations == 0:
            return 0.0
        return self.by_category.get(category, 0.0) / self.participations

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable form (enum keys become their string values)."""
        return {
            "object_name": self.object_name,
            "value": self.value,
            "participations": self.participations,
            "masked_events": self.masked_events,
            "by_level": {level.value: v for level, v in self.by_level.items()},
            "by_category": {cat.value: v for cat, v in self.by_category.items()},
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "AdvfResult":
        """Inverse of :meth:`to_dict`."""
        return cls(
            object_name=str(payload["object_name"]),
            value=float(payload["value"]),
            participations=int(payload["participations"]),
            masked_events=float(payload["masked_events"]),
            by_level={
                MaskingLevel(k): float(v)
                for k, v in dict(payload.get("by_level", {})).items()
            },
            by_category={
                MaskingCategory(k): float(v)
                for k, v in dict(payload.get("by_category", {})).items()
            },
        )


@dataclass
class ObjectReport:
    """Full analysis record for one data object."""

    result: AdvfResult
    injections: int
    injection_outcomes: Dict[OutcomeClass, int]
    propagation_checks: int
    unresolved: int
    analyses_performed: int
    analyses_reused: int

    @property
    def advf(self) -> float:
        return self.result.value

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable form stored in campaign-store report rows."""
        return {
            "result": self.result.to_dict(),
            "injections": self.injections,
            "injection_outcomes": {
                outcome.value: n for outcome, n in self.injection_outcomes.items()
            },
            "propagation_checks": self.propagation_checks,
            "unresolved": self.unresolved,
            "analyses_performed": self.analyses_performed,
            "analyses_reused": self.analyses_reused,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ObjectReport":
        """Inverse of :meth:`to_dict`."""
        return cls(
            result=AdvfResult.from_dict(dict(payload["result"])),
            injections=int(payload["injections"]),
            injection_outcomes={
                OutcomeClass(k): int(v)
                for k, v in dict(payload.get("injection_outcomes", {})).items()
            },
            propagation_checks=int(payload["propagation_checks"]),
            unresolved=int(payload["unresolved"]),
            analyses_performed=int(payload["analyses_performed"]),
            analyses_reused=int(payload["analyses_reused"]),
        )


@dataclass
class WorkloadReport:
    """aDVF analysis of (some of) a workload's data objects."""

    workload: str
    objects: Dict[str, ObjectReport]
    trace_events: int
    config: AnalysisConfig

    @property
    def advf(self) -> Dict[str, AdvfResult]:
        return {name: report.result for name, report in self.objects.items()}

    def ranking(self) -> List[str]:
        """Object names from most to least resilient (highest aDVF first)."""
        return sorted(
            self.objects, key=lambda name: self.objects[name].advf, reverse=True
        )


class AdvfEngine:
    """Compute aDVF for the data objects of one workload."""

    def __init__(self, workload: Workload, config: Optional[AnalysisConfig] = None) -> None:
        self.workload = workload
        self.config = config or AnalysisConfig()
        self._trace: Optional[Trace] = None
        self._masking: Optional[OperationMaskingAnalyzer] = None
        self._propagation: Optional[PropagationAnalyzer] = None
        self._injector: Optional[DeterministicFaultInjector] = None

    # ------------------------------------------------------------------ #
    # preparation
    # ------------------------------------------------------------------ #
    @property
    def trace(self) -> Trace:
        """The golden traced execution (computed on first use)."""
        if self._trace is None:
            outcome = self.workload.traced_run()
            self._trace = outcome.trace
        return self._trace

    def _prepare(self) -> None:
        trace = self.trace
        if self._masking is None:
            self._masking = OperationMaskingAnalyzer(
                trace, overshadow_threshold=self.config.overshadow_threshold
            )
        if self._propagation is None:
            self._propagation = PropagationAnalyzer(
                trace,
                k=self.config.k_propagation,
                output_objects=set(self.workload.output_objects),
            )
        if self._injector is None and self.config.use_injection:
            self._injector = DeterministicFaultInjector(
                self.workload, mode=self.config.injection_mode
            )

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def analyze(self, object_names: Optional[Sequence[str]] = None) -> WorkloadReport:
        """Analyse the given data objects (default: the workload's targets)."""
        names = list(object_names) if object_names else list(self.workload.target_objects)
        reports = {name: self.analyze_object(name) for name in names}
        return WorkloadReport(
            workload=self.workload.name,
            objects=reports,
            trace_events=len(self.trace),
            config=self.config,
        )

    def analyze_object(self, object_name: str) -> ObjectReport:
        """Compute aDVF (and its breakdowns) for one data object."""
        self._prepare()
        config = self.config
        participations = find_participations(
            self.trace, object_name, max_participations=config.max_participations
        )

        site_cache = EquivalenceCache(samples_per_class=config.equivalence_samples)
        injection_cache = EquivalenceCache(
            samples_per_class=config.injection_samples_per_class
        )
        state = _ObjectState(injection_cache=injection_cache)

        numerator = 0.0
        by_level: Dict[MaskingLevel, float] = {}
        by_category: Dict[MaskingCategory, float] = {}

        for participation in participations:
            patterns = config.error_model.patterns_for(participation.value_type)
            if not patterns:
                continue
            masked_total = 0.0
            for pattern in patterns:
                key = (
                    participation.static_uid,
                    participation.role.value,
                    participation.operand_index,
                    pattern.primary_bit,
                )
                if site_cache.should_analyze(key):
                    masked, level, category = self._analyze_site(
                        participation, pattern, state
                    )
                    site_cache.record(key, masked, level, category)
                else:
                    masked, level, category = site_cache.estimate(key)
                masked_total += masked
                weight = masked / len(patterns)
                if weight > 0.0 and level is not None:
                    by_level[level] = by_level.get(level, 0.0) + weight
                if weight > 0.0 and category is not None:
                    by_category[category] = by_category.get(category, 0.0) + weight
            numerator += masked_total / len(patterns)

        denominator = len(participations)
        result = AdvfResult(
            object_name=object_name,
            value=(numerator / denominator) if denominator else 0.0,
            participations=denominator,
            masked_events=numerator,
            by_level=by_level,
            by_category=by_category,
        )
        return ObjectReport(
            result=result,
            injections=state.injections,
            injection_outcomes=state.injection_outcomes,
            propagation_checks=state.propagation_checks,
            unresolved=state.unresolved,
            analyses_performed=site_cache.analyses_performed,
            analyses_reused=site_cache.analyses_reused,
        )

    # ------------------------------------------------------------------ #
    # per-site decision procedure (Fig. 3)
    # ------------------------------------------------------------------ #
    def _analyze_site(
        self,
        participation: Participation,
        pattern: ErrorPattern,
        state: "_ObjectState",
    ) -> Tuple[float, Optional[MaskingLevel], Optional[MaskingCategory]]:
        verdict = self._masking.analyze(participation, pattern)
        if verdict.masked is True:
            return 1.0, verdict.level, verdict.category
        if verdict.masked is False and not (
            verdict.needs_propagation or verdict.needs_injection
        ):
            return 0.0, None, None

        if verdict.needs_propagation:
            state.propagation_checks += 1
            propagation = self._propagation.analyze(
                participation, pattern, verdict.corrupted_result
            )
            if propagation.masked is True:
                level = (
                    MaskingLevel.OPERATION
                    if propagation.steps_analyzed == 0
                    else MaskingLevel.PROPAGATION
                )
                category = propagation.category or MaskingCategory.OVERWRITE
                return 1.0, level, category
            # unresolved / survived: fall through to injection

        return self._resolve_by_injection(participation, pattern, verdict, state)

    def _resolve_by_injection(
        self,
        participation: Participation,
        pattern: ErrorPattern,
        verdict: MaskingVerdict,
        state: "_ObjectState",
    ) -> Tuple[float, Optional[MaskingLevel], Optional[MaskingCategory]]:
        config = self.config
        can_inject = (
            config.use_injection
            and self._injector is not None
            and pattern.is_single_bit
        )
        injection_key = (
            participation.static_uid,
            participation.role.value,
            participation.operand_index,
            classify_bit(pattern.primary_bit, participation.value_type),
        )

        if can_inject and state.injections < config.max_injections and (
            state.injection_cache.should_analyze(injection_key)
        ):
            site = FaultSite(participation, pattern.primary_bit)
            result = self._injector.inject(site.to_spec())
            state.injections += 1
            state.injection_outcomes[result.outcome] = (
                state.injection_outcomes.get(result.outcome, 0) + 1
            )
            masked, level, category = self._classify_injection(result.outcome, verdict)
            state.injection_cache.record(injection_key, masked, level, category)
            return masked, level, category

        if injection_key in state.injection_cache.entries and (
            state.injection_cache.entries[injection_key].sample_count > 0
        ):
            return state.injection_cache.estimate(injection_key)

        # Out of budget (or injection disabled): analytic fallback.
        if verdict.overshadow_candidate and config.analytic_overshadow_fallback:
            return 1.0, MaskingLevel.OPERATION, MaskingCategory.OVERSHADOW
        state.unresolved += 1
        return 0.0, None, None

    @staticmethod
    def _classify_injection(
        outcome: OutcomeClass, verdict: MaskingVerdict
    ) -> Tuple[float, Optional[MaskingLevel], Optional[MaskingCategory]]:
        """Paper attribution rules for injection-resolved masking (§III-C/E)."""
        if not outcome.is_success:
            return 0.0, None, None
        if verdict.overshadow_candidate:
            # Overshadowing initiated the masking; attribute it there even if
            # the outcome only becomes acceptable further downstream.
            return 1.0, MaskingLevel.OPERATION, MaskingCategory.OVERSHADOW
        if outcome is OutcomeClass.IDENTICAL:
            # Numerically identical outcome: error propagation masked it.
            return 1.0, MaskingLevel.PROPAGATION, MaskingCategory.OVERWRITE
        return 1.0, MaskingLevel.ALGORITHM, MaskingCategory.ALGORITHMIC


@dataclass
class _ObjectState:
    """Mutable per-object bookkeeping shared across site analyses."""

    injection_cache: EquivalenceCache
    injections: int = 0
    propagation_checks: int = 0
    unresolved: int = 0
    injection_outcomes: Dict[OutcomeClass, int] = field(default_factory=dict)


def analyze_workload(
    workload: Union[str, Workload],
    targets: Optional[Sequence[str]] = None,
    config: Optional[AnalysisConfig] = None,
    **workload_kwargs,
) -> WorkloadReport:
    """Convenience wrapper: aDVF analysis of a workload by name or instance.

    >>> report = analyze_workload("lu", targets=["sum"])      # doctest: +SKIP
    >>> round(report.advf["sum"].value, 2)                     # doctest: +SKIP
    """
    if isinstance(workload, str):
        from repro.workloads.registry import get_workload

        workload = get_workload(workload, **workload_kwargs)
    engine = AdvfEngine(workload, config)
    return engine.analyze(targets)
