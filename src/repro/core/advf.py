"""The aDVF engine (§III-B, §IV): putting the three analyses together.

For every participation of a target data object in the dynamic trace, and
for every error pattern of the configured error model, the engine decides
whether the error would be masked:

1. **operation level** — semantic rules over the recorded operand values
   (:mod:`repro.core.masking`);
2. **error propagation level** — bounded forward re-execution over the trace
   (:mod:`repro.core.propagation`);
3. **algorithm level** — deterministic fault injection plus the workload's
   acceptance criterion (:mod:`repro.core.injector`).

aDVF of a data object is the number of error-masking events divided by the
number of element participations (Eq. 1); the per-level and per-category
breakdowns reproduce Figures 4 and 5 of the paper.  Error-equivalence
caching (:mod:`repro.core.equivalence`) bounds the number of full analyses
and injections, mirroring the Relyzer-style acceleration the paper relies
on.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.acceptance import OutcomeClass
from repro.core.equivalence import EquivalenceCache
from repro.core.injector import DeterministicFaultInjector
from repro.core.masking import (
    MaskingCategory,
    MaskingLevel,
    MaskingVerdict,
    OperationMaskingAnalyzer,
)
from repro.core.participation import (
    Participation,
    ParticipationRole,
    find_participations,
)
from repro.core.patterns import ErrorModel, ErrorPattern, SingleBitModel, classify_bit
from repro.core.passes import OperationPasses
from repro.core.propagation import PropagationAnalyzer
from repro.core.replay import BatchedReplayContext
from repro.core.sites import FaultSite
from repro.obs.metrics import registry as _metrics_registry
from repro.tracing.columnar import ColumnarTrace
from repro.tracing.cursor import TraceLike

if TYPE_CHECKING:  # pragma: no cover - import only needed for typing
    from repro.workloads.base import Workload



@dataclass
class AnalysisConfig:
    """Knobs of the aDVF analysis.

    The defaults match the paper's evaluation (single-bit errors, propagation
    bound *k* = 50, deterministic injection for unresolved cases) with
    laptop-scale budgets for the injection campaign.
    """

    #: Maximum number of operations tracked after the target operation (§III-D).
    k_propagation: int = 50
    #: Error model: which error patterns are enumerated per data element.
    error_model: ErrorModel = field(default_factory=SingleBitModel)
    #: Resolve unresolved cases with deterministic fault injection.
    use_injection: bool = True
    #: Upper bound on injections per data object.
    max_injections: int = 400
    #: Full analyses per (static instruction, role, operand, bit) class before
    #: results are reused (error equivalence).
    equivalence_samples: int = 2
    #: Injections per (static instruction, role, operand, bit-class) before
    #: outcomes are reused.
    injection_samples_per_class: int = 2
    #: Relative deviation of an additive result below which the error is a
    #: value-overshadowing candidate.
    overshadow_threshold: float = 1e-10
    #: Evenly subsample the participation list (None = analyse all).
    max_participations: Optional[int] = None
    #: When injection is disabled or out of budget, credit analytic
    #: overshadowing candidates as masked (otherwise they count as unmasked).
    analytic_overshadow_fallback: bool = True
    #: Execution strategy for deterministic injection: ``"replay"`` resolves
    #: each fault by checkpointed replay from the nearest snapshot (fast,
    #: bit-identical); ``"rerun"`` re-executes from scratch (the seed path).
    injection_mode: str = "replay"
    #: Analysis pipeline: ``"columnar"`` records the golden run into a
    #: :class:`~repro.tracing.columnar.ColumnarTrace` and runs the
    #: vectorized participation/masking passes (bit-identical results);
    #: ``"legacy"`` keeps the original per-event scans over a full
    #: :class:`~repro.tracing.trace.Trace` (the parity oracle).
    pipeline: str = "columnar"
    #: Speculation window for injection resolution: how many predicted
    #: injection sites are collected before they are submitted as one
    #: replay batch (0 disables speculation; ``None`` defers to the
    #: ``REPRO_ADVF_SPECULATION`` environment variable, default
    #: :data:`DEFAULT_SPECULATION_WINDOW`).  Results are bit-identical at
    #: every setting — the window only changes batching.
    speculation_window: Optional[int] = None


#: Speculation window when neither :attr:`AnalysisConfig.speculation_window`
#: nor ``REPRO_ADVF_SPECULATION`` says otherwise.
DEFAULT_SPECULATION_WINDOW = 32

#: ``REPRO_ADVF_SPECULATION`` values that disable speculation.
_SPECULATION_OFF = frozenset({"0", "off", "none", "disabled"})


def resolved_speculation_window(config: AnalysisConfig) -> int:
    """The effective speculation window: config knob, then environment."""
    if config.speculation_window is not None:
        return max(0, int(config.speculation_window))
    raw = os.environ.get("REPRO_ADVF_SPECULATION")
    if raw is None:
        return DEFAULT_SPECULATION_WINDOW
    raw = raw.strip().lower()
    if raw in _SPECULATION_OFF:
        return 0
    try:
        return max(0, int(raw))
    except ValueError:
        return DEFAULT_SPECULATION_WINDOW


@dataclass
class AdvfResult:
    """aDVF of one data object plus its breakdowns (Figures 4 and 5)."""

    object_name: str
    value: float
    participations: int
    masked_events: float
    by_level: Dict[MaskingLevel, float] = field(default_factory=dict)
    by_category: Dict[MaskingCategory, float] = field(default_factory=dict)

    def level_fraction(self, level: MaskingLevel) -> float:
        """Contribution of ``level`` to the aDVF value (Fig. 4 stacking)."""
        if self.participations == 0:
            return 0.0
        return self.by_level.get(level, 0.0) / self.participations

    def category_fraction(self, category: MaskingCategory) -> float:
        """Contribution of ``category`` to the aDVF value (Fig. 5 stacking)."""
        if self.participations == 0:
            return 0.0
        return self.by_category.get(category, 0.0) / self.participations

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable form (enum keys become their string values)."""
        return {
            "object_name": self.object_name,
            "value": self.value,
            "participations": self.participations,
            "masked_events": self.masked_events,
            "by_level": {level.value: v for level, v in self.by_level.items()},
            "by_category": {cat.value: v for cat, v in self.by_category.items()},
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "AdvfResult":
        """Inverse of :meth:`to_dict`."""
        return cls(
            object_name=str(payload["object_name"]),
            value=float(payload["value"]),
            participations=int(payload["participations"]),
            masked_events=float(payload["masked_events"]),
            by_level={
                MaskingLevel(k): float(v)
                for k, v in dict(payload.get("by_level", {})).items()
            },
            by_category={
                MaskingCategory(k): float(v)
                for k, v in dict(payload.get("by_category", {})).items()
            },
        )


@dataclass
class ObjectReport:
    """Full analysis record for one data object."""

    result: AdvfResult
    injections: int
    injection_outcomes: Dict[OutcomeClass, int]
    propagation_checks: int
    unresolved: int
    analyses_performed: int
    analyses_reused: int

    @property
    def advf(self) -> float:
        return self.result.value

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable form stored in campaign-store report rows."""
        return {
            "result": self.result.to_dict(),
            "injections": self.injections,
            "injection_outcomes": {
                outcome.value: n for outcome, n in self.injection_outcomes.items()
            },
            "propagation_checks": self.propagation_checks,
            "unresolved": self.unresolved,
            "analyses_performed": self.analyses_performed,
            "analyses_reused": self.analyses_reused,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ObjectReport":
        """Inverse of :meth:`to_dict`."""
        return cls(
            result=AdvfResult.from_dict(dict(payload["result"])),
            injections=int(payload["injections"]),
            injection_outcomes={
                OutcomeClass(k): int(v)
                for k, v in dict(payload.get("injection_outcomes", {})).items()
            },
            propagation_checks=int(payload["propagation_checks"]),
            unresolved=int(payload["unresolved"]),
            analyses_performed=int(payload["analyses_performed"]),
            analyses_reused=int(payload["analyses_reused"]),
        )


@dataclass
class WorkloadReport:
    """aDVF analysis of (some of) a workload's data objects."""

    workload: str
    objects: Dict[str, ObjectReport]
    trace_events: int
    config: AnalysisConfig

    @property
    def advf(self) -> Dict[str, AdvfResult]:
        return {name: report.result for name, report in self.objects.items()}

    def ranking(self) -> List[str]:
        """Object names from most to least resilient (highest aDVF first)."""
        return sorted(
            self.objects, key=lambda name: self.objects[name].advf, reverse=True
        )


class AdvfEngine:
    """Compute aDVF for the data objects of one workload.

    ``trace`` may inject a pre-built golden trace (e.g. a
    :class:`~repro.tracing.columnar.ColumnarTrace` loaded from the trace
    cache by a campaign worker); otherwise the engine records one itself,
    per :attr:`AnalysisConfig.pipeline`.
    """

    def __init__(
        self,
        workload: Workload,
        config: Optional[AnalysisConfig] = None,
        trace: Optional[TraceLike] = None,
    ) -> None:
        self.workload = workload
        self.config = config or AnalysisConfig()
        if self.config.pipeline not in ("columnar", "legacy"):
            raise ValueError(
                f"unknown analysis pipeline {self.config.pipeline!r}; "
                f"expected 'columnar' or 'legacy'"
            )
        self._trace: Optional[TraceLike] = trace
        self._masking: Optional[OperationMaskingAnalyzer] = None
        self._propagation: Optional[PropagationAnalyzer] = None
        self._injector: Optional[DeterministicFaultInjector] = None
        self._passes: Optional[OperationPasses] = None
        #: Wall-clock seconds per analysis pass (participation discovery,
        #: bulk operation passes, injection resolution), accumulated across
        #: analysed objects.
        self.pass_timings: Dict[str, float] = {}
        #: Speculative-batching telemetry (``speculated`` /
        #: ``spec_discards`` / ``spec_windows`` / ``spec_mispredictions``),
        #: accumulated across analysed objects.
        self.speculation_stats: Dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # preparation
    # ------------------------------------------------------------------ #
    @property
    def trace(self) -> TraceLike:
        """The golden traced execution (computed on first use).

        In the columnar pipeline with replay injection enabled, the golden
        trace is recorded *during* the injector's snapshot run, so the
        workload executes once instead of twice.
        """
        if self._trace is None:
            if self.config.pipeline == "columnar":
                if self.config.use_injection and (
                    self.config.injection_mode == "replay"
                ):
                    sink = ColumnarTrace()
                    context = BatchedReplayContext(self.workload, sink=sink)
                    self._injector = DeterministicFaultInjector(
                        self.workload, mode="replay", context=context
                    )
                    self._trace = sink
                else:
                    self._trace = self.workload.traced_run(columnar=True).trace
                self._trace.columns()  # seal the column views eagerly
            else:
                self._trace = self.workload.traced_run().trace
        return self._trace

    def _prepare(self) -> None:
        trace = self.trace
        if self._masking is None:
            self._masking = OperationMaskingAnalyzer(
                trace, overshadow_threshold=self.config.overshadow_threshold
            )
        if (
            self._passes is None
            and self.config.pipeline == "columnar"
            and isinstance(trace, ColumnarTrace)
        ):
            self._passes = OperationPasses(trace, self._masking)
        if self._propagation is None:
            self._propagation = PropagationAnalyzer(
                trace,
                k=self.config.k_propagation,
                output_objects=set(self.workload.output_objects),
            )
        if self._injector is None and self.config.use_injection:
            self._injector = DeterministicFaultInjector(
                self.workload, mode=self.config.injection_mode
            )

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def analyze(self, object_names: Optional[Sequence[str]] = None) -> WorkloadReport:
        """Analyse the given data objects (default: the workload's targets)."""
        names = list(object_names) if object_names else list(self.workload.target_objects)
        reports = {name: self.analyze_object(name) for name in names}
        return WorkloadReport(
            workload=self.workload.name,
            objects=reports,
            trace_events=len(self.trace),
            config=self.config,
        )

    def analyze_object(self, object_name: str) -> ObjectReport:
        """Compute aDVF (and its breakdowns) for one data object.

        The columnar pipeline runs the same decision procedure with two
        accelerations that leave every number bit-identical:

        * participation discovery and the cheap operation-level categories
          come from the vectorized passes (:mod:`repro.core.passes`);
        * once every error pattern of an equivalence class has collected
          its full sample budget, the class's per-pattern contributions are
          frozen into a *tail* — subsequent occurrences replay the frozen
          terms (the same floats the cache's ``estimate`` would return, in
          the same accumulation order) without re-deriving keys, patterns
          or cache entries.
        """
        self._prepare()
        config = self.config
        start = time.perf_counter()
        participations = find_participations(
            self.trace, object_name, max_participations=config.max_participations
        )
        self.pass_timings["participation"] = (
            self.pass_timings.get("participation", 0.0)
            + (time.perf_counter() - start)
        )
        if self._passes is not None:
            self._passes.prepare(participations)
            self.pass_timings["operation_passes"] = self._passes.timings.get(
                "operation_passes", 0.0
            )

        site_cache = EquivalenceCache(samples_per_class=config.equivalence_samples)
        injection_cache = EquivalenceCache(
            samples_per_class=config.injection_samples_per_class
        )
        state = _ObjectState(injection_cache=injection_cache)

        numerator = 0.0
        by_level: Dict[MaskingLevel, float] = {}
        by_category: Dict[MaskingCategory, float] = {}
        fast = self._passes is not None
        tails: Dict[Tuple, _ClassTail] = {}

        window = resolved_speculation_window(config)
        if (
            window > 0
            and config.use_injection
            and config.injection_mode == "replay"
            and self._injector is not None
            and self._injector.mode == "replay"
        ):
            resolver = _SpeculativeResolver(
                self, site_cache, state, tails, window,
                by_level=by_level, by_category=by_category,
            )
            for participation in participations:
                resolver.scan(participation)
            resolver.finish()
            numerator = resolver.numerator
            return self._object_report(
                object_name, participations, numerator, by_level,
                by_category, state, site_cache, tails,
            )

        for participation in participations:
            patterns = config.error_model.patterns_for(participation.value_type)
            if not patterns:
                continue
            if fast:
                class_key = (
                    participation.static_uid,
                    participation.role.value,
                    participation.operand_index,
                    participation.value_type.name,
                )
                tail = tails.get(class_key)
                if tail is None:
                    tail = _build_class_tail(site_cache, participation, patterns)
                    if tail is not None:
                        tails[class_key] = tail
                if tail is not None:
                    # Additions to different dict slots commute, so the
                    # per-pattern weights are replayed grouped by level /
                    # category (in pattern order within each group) — the
                    # running sum of every slot sees the identical addition
                    # sequence the per-pattern loop would produce.
                    for level, weights in tail.level_weights:
                        acc = by_level.get(level, 0.0)
                        for weight in weights:
                            acc += weight
                        by_level[level] = acc
                    for category, weights in tail.category_weights:
                        acc = by_category.get(category, 0.0)
                        for weight in weights:
                            acc += weight
                        by_category[category] = acc
                    numerator += tail.masked_quotient
                    tail.uses += 1
                    continue
            masked_total = 0.0
            for pattern in patterns:
                key = (
                    participation.static_uid,
                    participation.role.value,
                    participation.operand_index,
                    pattern.primary_bit,
                )
                if site_cache.should_analyze(key):
                    masked, level, category = self._analyze_site(
                        participation, pattern, state
                    )
                    site_cache.record(key, masked, level, category)
                else:
                    masked, level, category = site_cache.estimate(key)
                masked_total += masked
                weight = masked / len(patterns)
                if weight > 0.0 and level is not None:
                    by_level[level] = by_level.get(level, 0.0) + weight
                if weight > 0.0 and category is not None:
                    by_category[category] = by_category.get(category, 0.0) + weight
            numerator += masked_total / len(patterns)

        return self._object_report(
            object_name, participations, numerator, by_level, by_category,
            state, site_cache, tails,
        )

    def _object_report(
        self,
        object_name: str,
        participations: Sequence[Participation],
        numerator: float,
        by_level: Dict[MaskingLevel, float],
        by_category: Dict[MaskingCategory, float],
        state: "_ObjectState",
        site_cache: EquivalenceCache,
        tails: Dict[Tuple, "_ClassTail"],
    ) -> ObjectReport:
        """Settle deferred accounting and assemble the per-object report
        (shared by the sequential and speculative resolution paths)."""
        # The tail fast path defers the equivalence cache's reuse
        # accounting; settle it so coverage statistics stay exact.
        for tail in tails.values():
            if tail.uses:
                for entry, per_use in tail.entry_counts:
                    entry.reused += per_use * tail.uses

        denominator = len(participations)
        result = AdvfResult(
            object_name=object_name,
            value=(numerator / denominator) if denominator else 0.0,
            participations=denominator,
            masked_events=numerator,
            by_level=by_level,
            by_category=by_category,
        )
        return ObjectReport(
            result=result,
            injections=state.injections,
            injection_outcomes=state.injection_outcomes,
            propagation_checks=state.propagation_checks,
            unresolved=state.unresolved,
            analyses_performed=site_cache.analyses_performed,
            analyses_reused=site_cache.analyses_reused,
        )

    # ------------------------------------------------------------------ #
    # per-site decision procedure (Fig. 3)
    # ------------------------------------------------------------------ #
    def _analyze_site(
        self,
        participation: Participation,
        pattern: ErrorPattern,
        state: "_ObjectState",
    ) -> Tuple[float, Optional[MaskingLevel], Optional[MaskingCategory]]:
        if self._passes is not None:
            verdict = self._passes.verdict(participation, pattern)
        else:
            verdict = self._masking.analyze(participation, pattern)
        if verdict.masked is True:
            return 1.0, verdict.level, verdict.category
        if verdict.masked is False and not (
            verdict.needs_propagation or verdict.needs_injection
        ):
            return 0.0, None, None

        if verdict.needs_propagation:
            state.propagation_checks += 1
            propagation = self._propagation.analyze(
                participation, pattern, verdict.corrupted_result
            )
            if propagation.masked is True:
                level = (
                    MaskingLevel.OPERATION
                    if propagation.steps_analyzed == 0
                    else MaskingLevel.PROPAGATION
                )
                category = propagation.category or MaskingCategory.OVERWRITE
                return 1.0, level, category
            # unresolved / survived: fall through to injection

        return self._resolve_by_injection(participation, pattern, verdict, state)

    def _resolve_by_injection(
        self,
        participation: Participation,
        pattern: ErrorPattern,
        verdict: MaskingVerdict,
        state: "_ObjectState",
    ) -> Tuple[float, Optional[MaskingLevel], Optional[MaskingCategory]]:
        config = self.config
        can_inject = (
            config.use_injection
            and self._injector is not None
            and pattern.is_single_bit
        )
        injection_key = (
            participation.static_uid,
            participation.role.value,
            participation.operand_index,
            classify_bit(pattern.primary_bit, participation.value_type),
        )

        if can_inject and state.injections < config.max_injections and (
            state.injection_cache.should_analyze(injection_key)
        ):
            site = FaultSite(participation, pattern.primary_bit)
            start = time.perf_counter()
            result = self._injector.inject(site.to_spec())
            self.pass_timings["injection"] = (
                self.pass_timings.get("injection", 0.0)
                + (time.perf_counter() - start)
            )
            state.injections += 1
            state.injection_outcomes[result.outcome] = (
                state.injection_outcomes.get(result.outcome, 0) + 1
            )
            masked, level, category = self._classify_injection(result.outcome, verdict)
            state.injection_cache.record(injection_key, masked, level, category)
            return masked, level, category

        if injection_key in state.injection_cache.entries and (
            state.injection_cache.entries[injection_key].sample_count > 0
        ):
            return state.injection_cache.estimate(injection_key)

        # Out of budget (or injection disabled): analytic fallback.
        if verdict.overshadow_candidate and config.analytic_overshadow_fallback:
            return 1.0, MaskingLevel.OPERATION, MaskingCategory.OVERSHADOW
        state.unresolved += 1
        return 0.0, None, None

    @staticmethod
    def _classify_injection(
        outcome: OutcomeClass, verdict: MaskingVerdict
    ) -> Tuple[float, Optional[MaskingLevel], Optional[MaskingCategory]]:
        """Paper attribution rules for injection-resolved masking (§III-C/E)."""
        if not outcome.is_success:
            return 0.0, None, None
        if verdict.overshadow_candidate:
            # Overshadowing initiated the masking; attribute it there even if
            # the outcome only becomes acceptable further downstream.
            return 1.0, MaskingLevel.OPERATION, MaskingCategory.OVERSHADOW
        if outcome is OutcomeClass.IDENTICAL:
            # Numerically identical outcome: error propagation masked it.
            return 1.0, MaskingLevel.PROPAGATION, MaskingCategory.OVERWRITE
        return 1.0, MaskingLevel.ALGORITHM, MaskingCategory.ALGORITHMIC


@dataclass
class _ObjectState:
    """Mutable per-object bookkeeping shared across site analyses."""

    injection_cache: EquivalenceCache
    injections: int = 0
    propagation_checks: int = 0
    unresolved: int = 0
    injection_outcomes: Dict[OutcomeClass, int] = field(default_factory=dict)


#: Per-pattern plan for a site predicted to be answered by the site cache.
_CACHED = ("cached",)


class _SpeculativeResolver:
    """Plan-ahead scheduler for injection-resolved sites.

    The equivalence caches' budget decisions — ``should_analyze`` and the
    per-object ``max_injections`` cap — are *count*-based: they depend on
    which sites were analysed before this one, never on what the analyses
    concluded.  So the scan phase can walk participations in order,
    replaying those decisions against shadow counters, and collect every
    predicted injection into a pending window.  When the window fills, the
    whole batch goes through :meth:`DeterministicFaultInjector.inject_many`
    (one snapshot restore + one lockstep suffix walk per interval) and the
    buffered per-site plans are *applied* in exact scan order against the
    real caches: every budget decision is re-made with the actual state,
    and a speculated result is consumed only when the actual decision
    agrees with the prediction.  Disagreement (impossible organically —
    only external cache mutation or a monkeypatched predictor causes it)
    discards that speculated result and resolves the site sequentially, so
    the accumulated numbers are bit-identical to the sequential oracle no
    matter what the predictor said.

    Pure computations (masking verdicts, propagation analysis) run once,
    during the scan, and ride along in the plan; the apply phase only
    touches caches and accumulators, in the sequential path's exact float
    accumulation order.
    """

    #: Hard bound on buffered participation plans per window, so a long
    #: injection drought cannot hold an unbounded op log in memory.
    MAX_OPS = 8192

    def __init__(
        self,
        engine: AdvfEngine,
        site_cache: EquivalenceCache,
        state: _ObjectState,
        tails: Dict[Tuple, "_ClassTail"],
        window: int,
        by_level: Dict[MaskingLevel, float],
        by_category: Dict[MaskingCategory, float],
    ) -> None:
        self.engine = engine
        self.site_cache = site_cache
        self.state = state
        self.tails = tails
        self.window = window
        self.by_level = by_level
        self.by_category = by_category
        self.numerator = 0.0
        # shadow counters the scan predicts budget decisions against
        self._pred_site: Dict[Tuple, int] = {}
        self._pred_inj: Dict[Tuple, int] = {}
        self._pred_injections = 0
        self._pred_saturated: set = set()
        # buffered work: per-participation plans + the pending spec window
        self._ops: List[Tuple] = []
        self._pending: List = []
        # telemetry
        self._speculated = 0
        self._discards = 0
        self._windows = 0
        self._mispredictions = 0

    # ------------------------------------------------------------------ #
    # scan phase: predict decisions, buffer plans, collect specs
    # ------------------------------------------------------------------ #
    def scan(self, participation: Participation) -> None:
        engine = self.engine
        patterns = engine.config.error_model.patterns_for(participation.value_type)
        if not patterns:
            return
        class_key = None
        if engine._passes is not None:
            class_key = (
                participation.static_uid,
                participation.role.value,
                participation.operand_index,
                participation.value_type.name,
            )
            if self._predict_tail(class_key, participation, patterns):
                self._ops.append((participation, patterns, class_key, None))
                self._maybe_flush()
                return
        plans: List[Tuple] = []
        samples = self.site_cache.samples_per_class
        pred_site = self._pred_site
        for pattern in patterns:
            key = (
                participation.static_uid,
                participation.role.value,
                participation.operand_index,
                pattern.primary_bit,
            )
            count = pred_site.get(key, 0)
            if count >= samples:
                plans.append(_CACHED)
                continue
            pred_site[key] = count + 1
            plans.append(self._plan_site(participation, pattern))
        self._ops.append((participation, patterns, class_key, plans))
        self._maybe_flush()

    def _predict_tail(self, class_key, participation, patterns) -> bool:
        """Whether the participation's class is predicted tail-saturated."""
        if class_key in self._pred_saturated:
            return True
        samples = self.site_cache.samples_per_class
        pred_site = self._pred_site
        for pattern in patterns:
            key = (
                participation.static_uid,
                participation.role.value,
                participation.operand_index,
                pattern.primary_bit,
            )
            if pred_site.get(key, 0) < samples:
                return False
        self._pred_saturated.add(class_key)
        return True

    def _plan_site(self, participation: Participation, pattern: ErrorPattern) -> Tuple:
        """Scan-time mirror of :meth:`AdvfEngine._analyze_site`: run the
        pure analyses now, predict the injection decision, defer all cache
        and accumulator effects to the apply phase."""
        engine = self.engine
        if engine._passes is not None:
            verdict = engine._passes.verdict(participation, pattern)
        else:
            verdict = engine._masking.analyze(participation, pattern)
        if verdict.masked is True:
            return ("resolved", 1.0, verdict.level, verdict.category, 0)
        if verdict.masked is False and not (
            verdict.needs_propagation or verdict.needs_injection
        ):
            return ("resolved", 0.0, None, None, 0)
        prop = 0
        if verdict.needs_propagation:
            prop = 1
            propagation = engine._propagation.analyze(
                participation, pattern, verdict.corrupted_result
            )
            if propagation.masked is True:
                level = (
                    MaskingLevel.OPERATION
                    if propagation.steps_analyzed == 0
                    else MaskingLevel.PROPAGATION
                )
                category = propagation.category or MaskingCategory.OVERWRITE
                return ("resolved", 1.0, level, category, prop)
        config = engine.config
        can_inject = (
            config.use_injection
            and engine._injector is not None
            and pattern.is_single_bit
        )
        injection_key = (
            participation.static_uid,
            participation.role.value,
            participation.operand_index,
            classify_bit(pattern.primary_bit, participation.value_type),
        )
        if can_inject and self._predict_inject(injection_key):
            self._pred_injections += 1
            self._pred_inj[injection_key] = (
                self._pred_inj.get(injection_key, 0) + 1
            )
            index = len(self._pending)
            self._pending.append(
                FaultSite(participation, pattern.primary_bit).to_spec()
            )
            return ("inject", index, injection_key, verdict, prop)
        return ("fallback", injection_key, verdict, prop)

    def _predict_inject(self, injection_key) -> bool:
        """Predicted budget decision for one candidate injection.

        A separate method so tests can force mispredictions by patching it;
        organically its answers always match the apply-time re-check."""
        if self._pred_injections >= self.engine.config.max_injections:
            return False
        return (
            self._pred_inj.get(injection_key, 0)
            < self.state.injection_cache.samples_per_class
        )

    # ------------------------------------------------------------------ #
    # apply phase: validate predictions against the real caches, in order
    # ------------------------------------------------------------------ #
    def _maybe_flush(self) -> None:
        if not self._pending:
            # nothing speculated yet: apply immediately so injection-free
            # stretches carry no buffering overhead or memory growth
            self._flush()
        elif len(self._pending) >= self.window or len(self._ops) >= self.MAX_OPS:
            self._flush()

    def finish(self) -> Dict[str, int]:
        """Flush the final window and publish telemetry."""
        self._flush()
        engine = self.engine
        counts = {
            "speculated": self._speculated,
            "spec_discards": self._discards,
            "spec_windows": self._windows,
            "spec_mispredictions": self._mispredictions,
        }
        for key, value in counts.items():
            if value:
                engine.speculation_stats[key] = (
                    engine.speculation_stats.get(key, 0) + value
                )
        reg = _metrics_registry()
        if reg.enabled:
            workload = engine.workload.name
            if self._speculated:
                reg.inc("advf.speculated", self._speculated, workload=workload)
            if self._discards:
                reg.inc(
                    "advf.speculation_discards", self._discards,
                    workload=workload,
                )
            if self._windows:
                reg.inc(
                    "advf.speculation_windows", self._windows,
                    workload=workload,
                )
        if engine._injector is not None:
            engine._injector.record_speculation({
                "speculated": self._speculated,
                "spec_discards": self._discards,
                "spec_windows": self._windows,
            })
        return counts

    def _flush(self) -> None:
        ops, self._ops = self._ops, []
        pending, self._pending = self._pending, []
        results: List = []
        if pending:
            engine = self.engine
            self._windows += 1
            self._speculated += len(pending)
            start = time.perf_counter()
            results = engine._injector.inject_many(pending)
            engine.pass_timings["injection"] = (
                engine.pass_timings.get("injection", 0.0)
                + (time.perf_counter() - start)
            )
        for op in ops:
            self._apply(op, results)
        if pending:
            self._resync()

    def _resync(self) -> None:
        """Re-anchor the shadow counters on the actual caches.

        After a clean window this is a no-op by construction; after a
        forced misprediction it stops the divergence from compounding."""
        self._pred_injections = self.state.injections
        self._pred_inj = {
            key: entry.sample_count
            for key, entry in self.state.injection_cache.entries.items()
        }
        self._pred_site = {
            key: entry.sample_count
            for key, entry in self.site_cache.entries.items()
        }
        self._pred_saturated.clear()

    def _apply(self, op: Tuple, results: List) -> None:
        participation, patterns, class_key, plans = op
        site_cache = self.site_cache
        if class_key is not None:
            # real tail check, exactly where the sequential loop does it
            tails = self.tails
            tail = tails.get(class_key)
            if tail is None:
                tail = _build_class_tail(site_cache, participation, patterns)
                if tail is not None:
                    tails[class_key] = tail
            if tail is not None:
                by_level = self.by_level
                for level, weights in tail.level_weights:
                    acc = by_level.get(level, 0.0)
                    for weight in weights:
                        acc += weight
                    by_level[level] = acc
                by_category = self.by_category
                for category, weights in tail.category_weights:
                    acc = by_category.get(category, 0.0)
                    for weight in weights:
                        acc += weight
                    by_category[category] = acc
                self.numerator += tail.masked_quotient
                tail.uses += 1
                if plans:
                    # the class saturated earlier than predicted: any specs
                    # this participation speculated are never consumed
                    for plan in plans:
                        if plan[0] == "inject":
                            self._mispredictions += 1
                            self._discards += 1
                return
        if plans is None:
            # predicted tail-saturated but the real cache still owes
            # analyses: resolve the whole participation sequentially
            self._mispredictions += 1
            self._sequential_participation(participation, patterns)
            return
        engine = self.engine
        state = self.state
        n = len(patterns)
        masked_total = 0.0
        by_level = self.by_level
        by_category = self.by_category
        for pattern, plan in zip(patterns, plans):
            key = (
                participation.static_uid,
                participation.role.value,
                participation.operand_index,
                pattern.primary_bit,
            )
            if site_cache.should_analyze(key):
                tag = plan[0]
                if tag == "resolved":
                    _, masked, level, category, prop = plan
                    state.propagation_checks += prop
                elif tag == "inject":
                    masked, level, category = self._apply_inject(
                        participation, pattern, plan, results
                    )
                elif tag == "fallback":
                    _, injection_key, verdict, prop = plan
                    state.propagation_checks += prop
                    before = state.injections
                    masked, level, category = engine._resolve_by_injection(
                        participation, pattern, verdict, state
                    )
                    if state.injections != before:
                        # predicted out-of-budget, actually injectable:
                        # resolved by a sequential injection just now
                        self._mispredictions += 1
                else:  # predicted cached, but the cache still owes analyses
                    self._mispredictions += 1
                    masked, level, category = engine._analyze_site(
                        participation, pattern, state
                    )
                site_cache.record(key, masked, level, category)
            else:
                if plan is not _CACHED:
                    self._mispredictions += 1
                    if plan[0] == "inject":
                        self._discards += 1
                masked, level, category = site_cache.estimate(key)
            masked_total += masked
            weight = masked / n
            if weight > 0.0 and level is not None:
                by_level[level] = by_level.get(level, 0.0) + weight
            if weight > 0.0 and category is not None:
                by_category[category] = by_category.get(category, 0.0) + weight
        self.numerator += masked_total / n

    def _apply_inject(
        self, participation: Participation, pattern: ErrorPattern,
        plan: Tuple, results: List,
    ) -> Tuple[float, Optional[MaskingLevel], Optional[MaskingCategory]]:
        """Consume one speculated injection if the actual budget decision
        still agrees; otherwise discard it and resolve sequentially."""
        _, index, injection_key, verdict, prop = plan
        engine = self.engine
        state = self.state
        config = engine.config
        state.propagation_checks += prop
        can_inject = (
            config.use_injection
            and engine._injector is not None
            and pattern.is_single_bit
        )
        if can_inject and state.injections < config.max_injections and (
            state.injection_cache.should_analyze(injection_key)
        ):
            result = results[index]
            state.injections += 1
            state.injection_outcomes[result.outcome] = (
                state.injection_outcomes.get(result.outcome, 0) + 1
            )
            masked, level, category = engine._classify_injection(
                result.outcome, verdict
            )
            state.injection_cache.record(injection_key, masked, level, category)
            return masked, level, category
        self._mispredictions += 1
        self._discards += 1
        return engine._resolve_by_injection(participation, pattern, verdict, state)

    def _sequential_participation(
        self, participation: Participation, patterns: Sequence[ErrorPattern]
    ) -> None:
        """The sequential per-pattern loop, for mispredicted participations."""
        engine = self.engine
        site_cache = self.site_cache
        state = self.state
        n = len(patterns)
        masked_total = 0.0
        by_level = self.by_level
        by_category = self.by_category
        for pattern in patterns:
            key = (
                participation.static_uid,
                participation.role.value,
                participation.operand_index,
                pattern.primary_bit,
            )
            if site_cache.should_analyze(key):
                masked, level, category = engine._analyze_site(
                    participation, pattern, state
                )
                site_cache.record(key, masked, level, category)
            else:
                masked, level, category = site_cache.estimate(key)
            masked_total += masked
            weight = masked / n
            if weight > 0.0 and level is not None:
                by_level[level] = by_level.get(level, 0.0) + weight
            if weight > 0.0 and category is not None:
                by_category[category] = by_category.get(category, 0.0) + weight
        self.numerator += masked_total / n


@dataclass
class _ClassTail:
    """Frozen per-pattern contributions of a saturated equivalence class.

    Once every error pattern of a class has collected its full sample
    budget, no further ``record`` can change the cache entries, so the
    floats ``estimate`` would return are fixed: ``masked_quotient`` is the
    pattern-order fold of the per-pattern masked means divided by the
    pattern count (the exact ``numerator`` increment), and
    ``level_weights`` / ``category_weights`` hold the positive per-pattern
    weights grouped by target slot, in pattern order within each group.
    ``entry_counts`` maps each underlying cache entry to how many of the
    class's patterns it serves, so reuse accounting settles in bulk.
    """

    masked_quotient: float
    level_weights: List[Tuple[MaskingLevel, List[float]]]
    category_weights: List[Tuple[MaskingCategory, List[float]]]
    entry_counts: List[Tuple[object, int]]
    uses: int = 0


def _build_class_tail(
    site_cache: EquivalenceCache,
    participation: Participation,
    patterns: Sequence[ErrorPattern],
) -> Optional["_ClassTail"]:
    """The frozen tail of the participation's class, or ``None`` if any of
    its error patterns still owes full analyses."""
    samples = site_cache.samples_per_class
    entries = site_cache.entries
    n = len(patterns)
    masked_total = 0.0
    level_weights: Dict[MaskingLevel, List[float]] = {}
    category_weights: Dict[MaskingCategory, List[float]] = {}
    counts: Dict[int, List] = {}
    for pattern in patterns:
        key = (
            participation.static_uid,
            participation.role.value,
            participation.operand_index,
            pattern.primary_bit,
        )
        entry = entries.get(key)
        if entry is None or entry.sample_count < samples:
            return None
        masked = entry.masked_mean
        masked_total += masked
        weight = masked / n
        if weight > 0.0:
            if entry.level is not None:
                level_weights.setdefault(entry.level, []).append(weight)
            if entry.category is not None:
                category_weights.setdefault(entry.category, []).append(weight)
        slot = counts.get(id(entry))
        if slot is None:
            counts[id(entry)] = [entry, 1]
        else:
            slot[1] += 1
    return _ClassTail(
        masked_quotient=masked_total / n,
        level_weights=list(level_weights.items()),
        category_weights=list(category_weights.items()),
        entry_counts=[(entry, count) for entry, count in counts.values()],
    )


def analyze_workload(
    workload: Union[str, Workload],
    targets: Optional[Sequence[str]] = None,
    config: Optional[AnalysisConfig] = None,
    **workload_kwargs,
) -> WorkloadReport:
    """Convenience wrapper: aDVF analysis of a workload by name or instance.

    >>> report = analyze_workload("lu", targets=["sum"])      # doctest: +SKIP
    >>> round(report.advf["sum"].value, 2)                     # doctest: +SKIP
    """
    if isinstance(workload, str):
        from repro.workloads.registry import get_workload

        workload = get_workload(workload, **workload_kwargs)
    engine = AdvfEngine(workload, config)
    return engine.analyze(targets)
