"""MOARD core: the aDVF model and its supporting analyses.

This package is the reproduction of the paper's primary contribution
(§III–§IV): the classification of error-masking events, the aDVF metric, the
operation-level / error-propagation / algorithm-level analyses, and the
deterministic, exhaustive and random fault injectors used for resolution,
validation and comparison.

Public API
----------
* :class:`~repro.core.advf.AdvfEngine` / :func:`~repro.core.advf.analyze_workload`
  — compute aDVF for the data objects of a workload.
* :class:`~repro.core.advf.AnalysisConfig` — analysis knobs (propagation
  bound *k*, error model, injection budgets …).
* :mod:`repro.core.masking` — operation-level masking rules.
* :mod:`repro.core.propagation` — bounded error-propagation analysis.
* :mod:`repro.core.injector` / :mod:`repro.core.exhaustive` /
  :mod:`repro.core.rfi` — the three fault-injection modes.
* :mod:`repro.core.replay` — checkpointed replay shared by the injectors
  (golden run + snapshot schedule, suffix-only faulty executions).
* :mod:`repro.core.acceptance` — outcome acceptance criteria.
"""

from repro.core.acceptance import (
    AcceptanceCriterion,
    CompositeCriterion,
    ExactMatch,
    NormRelativeTolerance,
    OutcomeClass,
    RelativeTolerance,
    classify_outcome,
)
from repro.core.patterns import BitClass, ErrorModel, ErrorPattern, SingleBitModel
from repro.core.masking import (
    MaskingCategory,
    MaskingLevel,
    MaskingVerdict,
    OperationMaskingAnalyzer,
)
from repro.core.propagation import PropagationAnalyzer, PropagationResult
from repro.core.replay import (
    BatchedReplayContext,
    BatchReplayResult,
    ReplayBatch,
    ReplayBatchStats,
    ReplayContext,
    ReplayMemo,
)
from repro.core.injector import DeterministicFaultInjector, FaultInjectionResult
from repro.core.exhaustive import ExhaustiveCampaign, ExhaustiveResult
from repro.core.rfi import RandomFaultInjection, RFIResult, required_sample_size
from repro.core.equivalence import EquivalenceCache, bit_class_of
from repro.core.advf import (
    AdvfEngine,
    AdvfResult,
    AnalysisConfig,
    ObjectReport,
    WorkloadReport,
    analyze_workload,
)

__all__ = [
    "AcceptanceCriterion",
    "CompositeCriterion",
    "ExactMatch",
    "NormRelativeTolerance",
    "OutcomeClass",
    "RelativeTolerance",
    "classify_outcome",
    "BitClass",
    "ErrorModel",
    "ErrorPattern",
    "SingleBitModel",
    "MaskingCategory",
    "MaskingLevel",
    "MaskingVerdict",
    "OperationMaskingAnalyzer",
    "PropagationAnalyzer",
    "PropagationResult",
    "ReplayContext",
    "BatchedReplayContext",
    "BatchReplayResult",
    "ReplayBatch",
    "ReplayBatchStats",
    "ReplayMemo",
    "DeterministicFaultInjector",
    "FaultInjectionResult",
    "ExhaustiveCampaign",
    "ExhaustiveResult",
    "RandomFaultInjection",
    "RFIResult",
    "required_sample_size",
    "EquivalenceCache",
    "bit_class_of",
    "AdvfEngine",
    "AdvfResult",
    "AnalysisConfig",
    "ObjectReport",
    "WorkloadReport",
    "analyze_workload",
]
