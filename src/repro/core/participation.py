"""Finding the operations in which a target data object participates.

aDVF (Eq. 1) is defined over "operations with the participation of the
target data object".  At the IR-trace level a participation is either

* an operation that *consumes* a value loaded from the object (the loaded
  value is used, unmodified, as one of the operation's operands), or
* a ``store`` whose destination is an element of the object (the paper's
  "assignment to the data object": the old value at the destination is what
  the injected error would sit in).

Loads themselves are not counted as participations — the loaded value's
*consumer* is — matching the paper's LU walk-through, where
``sum[m] = sum[m] + v*v`` contributes one addition and one assignment (not a
load) to the denominator.

Two implementations share this definition:

* the original per-event scan, which works over any ``TraceLike`` source
  and remains the parity oracle;
* a vectorized pass over the integer columns of a
  :class:`~repro.tracing.columnar.ColumnarTrace` (object-id masks instead
  of per-event Python dispatch), used automatically when the trace exposes
  NumPy columns.  Both produce identical participation lists, in identical
  order — asserted by the parity test suite.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.ir.types import IRType
from repro.tracing.columnar import (
    INSTRUCTION_KIND_CODE,
    LOAD_CODE,
    STORE_CODE,
    ColumnarTrace,
)
from repro.tracing.cursor import TraceLike
from repro.tracing.events import OperandKind, TraceEvent


class ParticipationRole(enum.Enum):
    """How the target data object takes part in the operation."""

    #: One operand of the operation is the value of an element of the object.
    CONSUMED = "consumed"
    #: The operation stores into an element of the object (overwrite site).
    STORE_DEST = "store_dest"


@dataclass(frozen=True)
class Participation:
    """One (operation, element) pair entering the aDVF denominator."""

    event_id: int
    role: ParticipationRole
    #: Operand position of the consumed value (``-1`` for STORE_DEST).
    operand_index: int
    #: Element index within the target data object.
    element_index: int
    #: Dynamic id of the load that produced the consumed value (``-1`` for
    #: STORE_DEST).
    load_event_id: int
    #: IR type of the element value at the point of participation.
    value_type: IRType
    #: Static instruction identity (for error-equivalence grouping).
    static_uid: int


def find_participations(
    trace: TraceLike,
    object_name: str,
    max_participations: Optional[int] = None,
) -> List[Participation]:
    """Enumerate every participation of ``object_name`` in ``trace``.

    Dispatches to the vectorized columnar pass when the trace exposes
    column views, and to the per-event scan otherwise.
    ``max_participations`` caps the result by taking an evenly-strided
    subsample (deterministic), which keeps analysis of very long traces
    bounded; the aDVF value is a ratio, so even subsampling preserves it in
    expectation.
    """
    columns = trace.columns() if isinstance(trace, ColumnarTrace) else None
    if columns is not None:
        participations = _find_participations_columnar(trace, columns, object_name)
    else:
        participations = _find_participations_scan(trace, object_name)

    if max_participations is not None and len(participations) > max_participations:
        stride = len(participations) / max_participations
        participations = [
            participations[int(i * stride)] for i in range(max_participations)
        ]
    return participations


def _operand_is_direct_load_of(
    trace: TraceLike, event: TraceEvent, operand_index: int, object_name: str
) -> Optional[Tuple[int, int]]:
    """``(element index, load id)`` when the operand is a direct load hit.

    Protocol-level version of ``Trace.operand_is_direct_load_of``: works
    against any trace-like source, so the scan path is not tied to the
    full in-memory trace.
    """
    if event.operand_kinds[operand_index] is not OperandKind.INSTRUCTION:
        return None
    producer_id = event.operand_producers[operand_index]
    if producer_id < 0:
        return None
    producer = trace[producer_id]
    if not producer.is_load or producer.object_name != object_name:
        return None
    return (producer.element_index, producer.dynamic_id)  # type: ignore[return-value]


def _find_participations_scan(
    trace: TraceLike, object_name: str
) -> List[Participation]:
    """The original per-event scan (parity oracle for the columnar pass)."""
    participations: List[Participation] = []
    for event in trace:
        if event.is_store and event.object_name == object_name:
            participations.append(
                Participation(
                    event_id=event.dynamic_id,
                    role=ParticipationRole.STORE_DEST,
                    operand_index=-1,
                    element_index=event.element_index,  # type: ignore[arg-type]
                    load_event_id=-1,
                    value_type=event.operand_types[0],
                    static_uid=event.static_uid,
                )
            )
        if event.is_load:
            continue
        for operand_index in range(event.operand_count()):
            hit = _operand_is_direct_load_of(trace, event, operand_index, object_name)
            if hit is None:
                continue
            element_index, load_id = hit
            participations.append(
                Participation(
                    event_id=event.dynamic_id,
                    role=ParticipationRole.CONSUMED,
                    operand_index=operand_index,
                    element_index=element_index,
                    load_event_id=load_id,
                    value_type=event.operand_types[operand_index],
                    static_uid=event.static_uid,
                )
            )
    return participations


def _find_participations_columnar(
    trace: ColumnarTrace, cols, object_name: str
) -> List[Participation]:
    """Vectorized participation discovery over the trace columns.

    Store destinations are an object-id mask over the store events;
    consumptions are found by gathering each instruction-kind operand's
    producer and testing *the producers* (one gather) for "load of the
    target object" — no per-event Python dispatch.  The merged result is
    ordered exactly like the scan: by event id, store destination (operand
    index ``-1``) before consumed operands in operand order.
    """
    import numpy as np

    target = cols.object_index.get(object_name)
    if target is None:
        return []

    store_ids = np.nonzero(
        (cols.opcode == STORE_CODE) & (cols.object_id == target)
    )[0]

    candidates = np.nonzero(
        (cols.kinds == INSTRUCTION_KIND_CODE) & (cols.producers >= 0)
    )[0]
    producer_ids = cols.producers[candidates]
    hits = (cols.opcode[producer_ids] == LOAD_CODE) & (
        cols.object_id[producer_ids] == target
    )
    flat = candidates[hits]
    owners = cols.owner[flat]
    not_load = cols.opcode[owners] != LOAD_CODE
    flat = flat[not_load]
    owners = owners[not_load]
    operand_indices = flat - cols.offsets[owners]
    load_ids = cols.producers[flat]

    event_ids = np.concatenate([store_ids, owners])
    opidx = np.concatenate(
        [np.full(len(store_ids), -1, dtype=np.int64), operand_indices]
    )
    loads = np.concatenate([np.full(len(store_ids), -1, dtype=np.int64), load_ids])
    elements = np.concatenate([cols.element[store_ids], cols.element[load_ids]])
    order = np.lexsort((opidx, event_ids))

    uid_of = trace.static_uid_of
    type_of = trace.operand_type
    out: List[Participation] = []
    for event_id, operand_index, load_id, element in zip(
        event_ids[order].tolist(),
        opidx[order].tolist(),
        loads[order].tolist(),
        elements[order].tolist(),
    ):
        if operand_index < 0:
            out.append(
                Participation(
                    event_id=event_id,
                    role=ParticipationRole.STORE_DEST,
                    operand_index=-1,
                    element_index=element,
                    load_event_id=-1,
                    value_type=type_of(event_id, 0),
                    static_uid=uid_of(event_id),
                )
            )
        else:
            out.append(
                Participation(
                    event_id=event_id,
                    role=ParticipationRole.CONSUMED,
                    operand_index=operand_index,
                    element_index=element,
                    load_event_id=load_id,
                    value_type=type_of(event_id, operand_index),
                    static_uid=uid_of(event_id),
                )
            )
    return out


def is_read_modify_write(
    trace: TraceLike, store_event: TraceEvent, max_depth: int = 32
) -> bool:
    """Whether the value stored by ``store_event`` depends on the destination.

    Walks the producer chain of the stored value looking for a load of the
    same ``(object, element)``.  An accumulation such as ``x[i] = x[i] + v``
    is a read-modify-write: the store does *not* overwrite an error sitting
    in ``x[i]`` because the error has already been folded into the value
    being written back.
    """
    target = store_event.touches
    if target is None:
        return False
    worklist = [store_event.operand_producers[0]]
    seen = set()
    depth = 0
    while worklist and depth < max_depth:
        depth += 1
        producer_id = worklist.pop()
        if producer_id < 0 or producer_id in seen:
            continue
        seen.add(producer_id)
        producer = trace[producer_id]
        if producer.is_load and producer.touches == target:
            return True
        worklist.extend(producer.operand_producers)
    return False


def participation_counts_by_role(
    participations: List[Participation],
) -> Dict[ParticipationRole, int]:
    """Histogram of participations by role (used in reports and tests)."""
    counts: Dict[ParticipationRole, int] = {}
    for participation in participations:
        counts[participation.role] = counts.get(participation.role, 0) + 1
    return counts
