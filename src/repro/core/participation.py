"""Finding the operations in which a target data object participates.

aDVF (Eq. 1) is defined over "operations with the participation of the
target data object".  At the IR-trace level a participation is either

* an operation that *consumes* a value loaded from the object (the loaded
  value is used, unmodified, as one of the operation's operands), or
* a ``store`` whose destination is an element of the object (the paper's
  "assignment to the data object": the old value at the destination is what
  the injected error would sit in).

Loads themselves are not counted as participations — the loaded value's
*consumer* is — matching the paper's LU walk-through, where
``sum[m] = sum[m] + v*v`` contributes one addition and one assignment (not a
load) to the denominator.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.ir.instructions import Opcode
from repro.ir.types import IRType
from repro.tracing.events import OperandKind, TraceEvent
from repro.tracing.trace import Trace


class ParticipationRole(enum.Enum):
    """How the target data object takes part in the operation."""

    #: One operand of the operation is the value of an element of the object.
    CONSUMED = "consumed"
    #: The operation stores into an element of the object (overwrite site).
    STORE_DEST = "store_dest"


@dataclass(frozen=True)
class Participation:
    """One (operation, element) pair entering the aDVF denominator."""

    event_id: int
    role: ParticipationRole
    #: Operand position of the consumed value (``-1`` for STORE_DEST).
    operand_index: int
    #: Element index within the target data object.
    element_index: int
    #: Dynamic id of the load that produced the consumed value (``-1`` for
    #: STORE_DEST).
    load_event_id: int
    #: IR type of the element value at the point of participation.
    value_type: IRType
    #: Static instruction identity (for error-equivalence grouping).
    static_uid: int


def find_participations(
    trace: Trace,
    object_name: str,
    max_participations: Optional[int] = None,
) -> List[Participation]:
    """Enumerate every participation of ``object_name`` in ``trace``.

    ``max_participations`` caps the result by taking an evenly-strided
    subsample (deterministic), which keeps analysis of very long traces
    bounded; the aDVF value is a ratio, so even subsampling preserves it in
    expectation.
    """
    participations: List[Participation] = []

    for event in trace:
        if event.is_store and event.object_name == object_name:
            participations.append(
                Participation(
                    event_id=event.dynamic_id,
                    role=ParticipationRole.STORE_DEST,
                    operand_index=-1,
                    element_index=event.element_index,  # type: ignore[arg-type]
                    load_event_id=-1,
                    value_type=event.operand_types[0],
                    static_uid=event.static_uid,
                )
            )
        if event.is_load:
            continue
        for operand_index in range(event.operand_count()):
            if event.operand_kinds[operand_index] is not OperandKind.INSTRUCTION:
                continue
            hit = trace.operand_is_direct_load_of(event, operand_index, object_name)
            if hit is None:
                continue
            element_index, load_id = hit
            participations.append(
                Participation(
                    event_id=event.dynamic_id,
                    role=ParticipationRole.CONSUMED,
                    operand_index=operand_index,
                    element_index=element_index,
                    load_event_id=load_id,
                    value_type=event.operand_types[operand_index],
                    static_uid=event.static_uid,
                )
            )

    if max_participations is not None and len(participations) > max_participations:
        stride = len(participations) / max_participations
        participations = [
            participations[int(i * stride)] for i in range(max_participations)
        ]
    return participations


def is_read_modify_write(trace: Trace, store_event: TraceEvent, max_depth: int = 32) -> bool:
    """Whether the value stored by ``store_event`` depends on the destination.

    Walks the producer chain of the stored value looking for a load of the
    same ``(object, element)``.  An accumulation such as ``x[i] = x[i] + v``
    is a read-modify-write: the store does *not* overwrite an error sitting
    in ``x[i]`` because the error has already been folded into the value
    being written back.
    """
    target = store_event.touches
    if target is None:
        return False
    worklist = [store_event.operand_producers[0]]
    seen = set()
    depth = 0
    while worklist and depth < max_depth:
        depth += 1
        producer_id = worklist.pop()
        if producer_id < 0 or producer_id in seen:
            continue
        seen.add(producer_id)
        producer = trace[producer_id]
        if producer.is_load and producer.touches == target:
            return True
        worklist.extend(producer.operand_producers)
    return False


def participation_counts_by_role(
    participations: List[Participation],
) -> Dict[ParticipationRole, int]:
    """Histogram of participations by role (used in reports and tests)."""
    counts: Dict[ParticipationRole, int] = {}
    for participation in participations:
        counts[participation.role] = counts.get(participation.role, 0) + 1
    return counts
