"""Error-equivalence acceleration (§IV, following Relyzer/GangES [7],[20]).

Analysing every (dynamic occurrence × bit position) is what makes exhaustive
approaches intractable; MOARD leans on *error equivalence*: dynamic
occurrences of the same static instruction, holding values whose corrupted
bit falls into the same behavioural class, tend to mask (or not) the same
way.  The :class:`EquivalenceCache` analyses a configurable number of
representative occurrences per ``(static instruction, role, operand, bit
class)`` group and reuses the averaged result for the rest, recording how
often it did so, so reports can state the achieved coverage honestly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.masking import MaskingCategory, MaskingLevel
from repro.core.patterns import BitClass, classify_bit
from repro.ir.types import IRType


def bit_class_of(bit: int, ir_type: IRType) -> BitClass:
    """Public re-export of the bit classifier (kept here for discoverability)."""
    return classify_bit(bit, ir_type)


#: Cache key: (static instruction uid, role, operand index, bit class)
EquivalenceKey = Tuple[int, str, int, BitClass]


@dataclass
class EquivalenceEntry:
    """Accumulated samples for one equivalence class."""

    masked_samples: List[float] = field(default_factory=list)
    level: Optional[MaskingLevel] = None
    category: Optional[MaskingCategory] = None
    reused: int = 0

    @property
    def sample_count(self) -> int:
        return len(self.masked_samples)

    @property
    def masked_mean(self) -> float:
        if not self.masked_samples:
            return 0.0
        return sum(self.masked_samples) / len(self.masked_samples)


@dataclass
class EquivalenceCache:
    """Per-class sampling budget and result reuse.

    ``samples_per_class`` dynamic occurrences of each class are analysed in
    full; further occurrences reuse the mean masked fraction (and the level /
    category of the first sample).
    """

    samples_per_class: int = 2
    entries: Dict[EquivalenceKey, EquivalenceEntry] = field(default_factory=dict)

    def should_analyze(self, key: EquivalenceKey) -> bool:
        """Whether this occurrence should be analysed in full."""
        entry = self.entries.get(key)
        if entry is None:
            return True
        return entry.sample_count < self.samples_per_class

    def record(
        self,
        key: EquivalenceKey,
        masked_fraction: float,
        level: Optional[MaskingLevel],
        category: Optional[MaskingCategory],
    ) -> None:
        """Store the fully-analysed result of one occurrence."""
        entry = self.entries.setdefault(key, EquivalenceEntry())
        entry.masked_samples.append(masked_fraction)
        if entry.level is None:
            entry.level = level
        if entry.category is None:
            entry.category = category

    def estimate(
        self, key: EquivalenceKey
    ) -> Tuple[float, Optional[MaskingLevel], Optional[MaskingCategory]]:
        """Reused estimate for an occurrence that was not analysed in full."""
        entry = self.entries[key]
        entry.reused += 1
        return entry.masked_mean, entry.level, entry.category

    # ------------------------------------------------------------------ #
    # statistics for reports
    # ------------------------------------------------------------------ #
    @property
    def classes(self) -> int:
        return len(self.entries)

    @property
    def analyses_performed(self) -> int:
        return sum(e.sample_count for e in self.entries.values())

    @property
    def analyses_reused(self) -> int:
        return sum(e.reused for e in self.entries.values())

    def coverage_summary(self) -> Dict[str, int]:
        return {
            "classes": self.classes,
            "analyzed": self.analyses_performed,
            "reused": self.analyses_reused,
        }
