"""Local re-evaluation of trace events with substituted operand values.

Both the operation-level masking rules and the error-propagation analysis
answer the question "what would this instruction have produced if operand
*i* held a corrupted value?" *without running the program*.  This module
maps a recorded :class:`~repro.tracing.events.TraceEvent` plus substituted
operand values onto the shared arithmetic in :mod:`repro.vm.semantics`.

Events that cannot be re-evaluated locally (user-function calls, loads and
stores whose *address* operand changed, branches) are reported as such so the
caller can fall back to deterministic fault injection.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Sequence, Union

from repro.ir.instructions import (
    FCmpPredicate,
    ICmpPredicate,
    Opcode,
)
from repro.ir.types import PointerType
from repro.frontend.intrinsics import INTRINSICS
from repro.tracing.cursor import TraceCursor, TraceLike
from repro.tracing.events import TraceEvent
from repro.vm import semantics
from repro.vm.errors import ArithmeticFault

Number = Union[int, float]


class ReexecStatus(enum.Enum):
    """How the local re-evaluation of one event went."""

    #: A value-producing instruction was recomputed; ``value`` holds the result.
    VALUE = "value"
    #: The event produces no value to track (e.g. ``ret`` in the entry
    #: function, unconditional ``br``); nothing to do.
    NO_VALUE = "no_value"
    #: Re-evaluation would change control flow or memory addressing; the
    #: analysis cannot continue locally.
    DIVERGED = "diverged"
    #: The instruction would have trapped (integer division by zero).
    TRAPPED = "trapped"
    #: The event cannot be modelled locally (user-function call result).
    OPAQUE = "opaque"


@dataclass
class ReexecResult:
    status: ReexecStatus
    value: Optional[Number] = None
    detail: str = ""


_ICMP_BY_NAME = {p.value: p for p in ICmpPredicate}
_FCMP_BY_NAME = {p.value: p for p in FCmpPredicate}


def reevaluate(event: TraceEvent, values: Sequence[Number]) -> ReexecResult:
    """Re-evaluate ``event`` as if its operands held ``values``.

    ``values`` must have one entry per original operand (pass the recorded
    values for operands that are not perturbed).
    """
    opcode = event.opcode
    try:
        if opcode is Opcode.ICMP:
            predicate = _ICMP_BY_NAME[event.predicate or "eq"]
            result = semantics.eval_icmp(predicate, event.operand_types[0], values)
            return ReexecResult(ReexecStatus.VALUE, result)
        if opcode is Opcode.FCMP:
            predicate = _FCMP_BY_NAME[event.predicate or "oeq"]
            result = semantics.eval_fcmp(predicate, values)
            return ReexecResult(ReexecStatus.VALUE, result)
        if opcode is Opcode.SELECT:
            return ReexecResult(ReexecStatus.VALUE, semantics.eval_select(values))
        if opcode is Opcode.FNEG:
            return ReexecResult(ReexecStatus.VALUE, semantics.eval_fneg(values[0]))
        if opcode is Opcode.GEP:
            pointee = event.operand_types[0]
            assert isinstance(pointee, PointerType)
            result = semantics.eval_gep(pointee.element_size, values)
            return ReexecResult(ReexecStatus.VALUE, result)
        if opcode is Opcode.CALL:
            callee = event.callee or ""
            if callee in INTRINSICS and event.result_type is not None:
                result = semantics.eval_intrinsic(callee, event.result_type, values)
                return ReexecResult(ReexecStatus.VALUE, result)
            return ReexecResult(
                ReexecStatus.OPAQUE, detail=f"call to user function {callee!r}"
            )
        if opcode in (
            Opcode.TRUNC,
            Opcode.ZEXT,
            Opcode.SEXT,
            Opcode.FPTOSI,
            Opcode.SITOFP,
            Opcode.FPTRUNC,
            Opcode.FPEXT,
            Opcode.BITCAST,
        ):
            result = semantics.eval_conversion(
                opcode, event.operand_types[0], event.result_type, values[0]
            )
            return ReexecResult(ReexecStatus.VALUE, result)
        if opcode is Opcode.LOAD:
            # A load's operand is its address; a perturbed address means the
            # access pattern itself changed, which cannot be replayed locally.
            if int(values[0]) != int(event.operand_values[0]):
                return ReexecResult(ReexecStatus.DIVERGED, detail="load address changed")
            return ReexecResult(ReexecStatus.VALUE, event.result_value)
        if opcode is Opcode.STORE:
            if int(values[1]) != int(event.operand_values[1]):
                return ReexecResult(ReexecStatus.DIVERGED, detail="store address changed")
            return ReexecResult(ReexecStatus.NO_VALUE)
        if opcode is Opcode.BR:
            if values and event.operand_values and bool(values[0]) != bool(
                event.operand_values[0]
            ):
                return ReexecResult(
                    ReexecStatus.DIVERGED, detail="branch direction changed"
                )
            return ReexecResult(ReexecStatus.NO_VALUE)
        if opcode in (Opcode.RET, Opcode.ALLOCA, Opcode.PHI):
            return ReexecResult(ReexecStatus.NO_VALUE)
        # generic binary arithmetic
        result = semantics.eval_binary(opcode, event.result_type, values)
        return ReexecResult(ReexecStatus.VALUE, result)
    except ArithmeticFault as exc:
        return ReexecResult(ReexecStatus.TRAPPED, detail=str(exc))


def reevaluate_at(
    source: TraceLike, dynamic_id: int, values: Sequence[Number]
) -> ReexecResult:
    """Re-evaluate the event at ``dynamic_id`` of any trace-like source.

    Cursor-API companion of :func:`reevaluate`: works against the full
    in-memory trace or a columnar sink without the caller materialising the
    event first.
    """
    event = TraceCursor(source, dynamic_id).peek()
    if event is None:
        raise IndexError(
            f"dynamic id {dynamic_id} out of range for trace of {len(source)}"
        )
    return reevaluate(event, values)


def results_identical(event: TraceEvent, recomputed: Optional[Number]) -> bool:
    """Whether a recomputed result matches the recorded one bit-for-bit.

    NaN is treated as equal to NaN: from the point of view of downstream
    consumers a NaN stays a NaN regardless of payload.
    """
    original = event.result_value
    if original is None or recomputed is None:
        return original is None and recomputed is None
    if isinstance(original, float) or isinstance(recomputed, float):
        of, rf = float(original), float(recomputed)
        if of != of and rf != rf:  # both NaN
            return True
        return of == rf
    return int(original) == int(recomputed)
