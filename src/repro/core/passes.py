"""Vectorized analysis passes over a columnar trace (§III-C, accelerated).

The legacy aDVF loop re-derived the same facts per ``(participation,
error pattern)`` — 64 times per participation for double-precision data:
whether a store destination is a read-modify-write (a producer-chain walk),
which trivial category a consumed operand falls into (address / branch /
return / stored value), and the materialised trace event itself.  All of
these are properties of the *participation*, not the pattern.

:class:`OperationPasses` computes them once per data object, array-at-a-time
where the trace exposes NumPy columns:

* **value-overwriting pass** — store-destination participations are
  screened with a vectorized depth-1 read-modify-write predicate (is the
  stored value directly the load of the same element?); only the undecided
  remainder falls back to the per-event producer-chain walk, and every
  result is memoised per store event;
* **trivial-consumption pass** — consumed participations are bulk-classified
  by opcode/operand-index arrays into the categories the decision procedure
  resolves without re-execution (corrupted stored value, corrupted
  store/load address, branch condition, return value);
* everything else (logic/compare re-evaluation, overshadowing threshold
  tests) goes through the unchanged
  :class:`~repro.core.masking.OperationMaskingAnalyzer` rules with a cached
  event materialisation — the "undecided remainder" of Fig. 3.

Verdicts are identical, field for field, to the legacy analyzer's — the
parity suite asserts it on every registered workload.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional

from repro.core.masking import MaskingVerdict, OperationMaskingAnalyzer
from repro.core.participation import Participation, ParticipationRole
from repro.core.patterns import ErrorPattern
from repro.ir.instructions import Opcode
from repro.tracing.columnar import ColumnarTrace, LOAD_CODE, STORE_CODE

#: Trivial-consumption classes (what the decision procedure does with a
#: corrupted operand before any re-execution is attempted).
GENERIC = 0          #: needs per-pattern re-evaluation (the remainder)
STORED_VALUE = 1     #: store operand 0 — the corrupted value goes to memory
STORE_ADDRESS = 2    #: store operand 1 — addressing changes
LOAD_ADDRESS = 3     #: load operand — addressing changes
BRANCH_CONDITION = 4 #: br operand — control flow changes
RETURN_VALUE = 5     #: ret operand


def _rmw_walk(trace: ColumnarTrace, store_id: int, max_depth: int = 32) -> bool:
    """Column-backed read-modify-write walk.

    Replicates :func:`~repro.core.participation.is_read_modify_write` —
    same stack order, same ``seen`` set, same pop-count bound — over the
    raw columns, so no :class:`TraceEvent` is materialised per visited
    producer.  Results are identical by construction (and asserted by the
    parity suite).
    """
    target_object = trace.object_name_of(store_id)
    target_element = trace.element_index_of(store_id)
    if target_object is None or target_element is None:
        return False
    opcode_of = trace.opcode_of
    producers_of = trace.operand_producers_of
    worklist = [producers_of(store_id)[0]]
    seen = set()
    depth = 0
    while worklist and depth < max_depth:
        depth += 1
        producer_id = worklist.pop()
        if producer_id < 0 or producer_id in seen:
            continue
        seen.add(producer_id)
        if (
            opcode_of(producer_id) is Opcode.LOAD
            and trace.object_name_of(producer_id) == target_object
            and trace.element_index_of(producer_id) == target_element
        ):
            return True
        worklist.extend(producers_of(producer_id))
    return False


class OperationPasses:
    """Compute-once/share-everywhere operation-level passes for one trace.

    One instance serves every data object analysed against the same golden
    trace; per-object preparation (:meth:`prepare`) only touches the
    participations of that object.  ``timings`` accumulates wall-clock
    seconds per pass for reporting.
    """

    def __init__(
        self, trace: ColumnarTrace, masking: OperationMaskingAnalyzer
    ) -> None:
        self.trace = trace
        self.masking = masking
        #: store event id -> is the store a read-modify-write?
        self._rmw: Dict[int, bool] = {}
        #: (event id, operand index) -> trivial-consumption class
        self._consumption: Dict[tuple, int] = {}
        self.timings: Dict[str, float] = {}

    # ------------------------------------------------------------------ #
    # bulk passes
    # ------------------------------------------------------------------ #
    def prepare(self, participations: Iterable[Participation]) -> None:
        """Run the bulk passes for one object's participation list."""
        start = time.perf_counter()
        stores: List[int] = []
        consumed: List[Participation] = []
        for participation in participations:
            if participation.role is ParticipationRole.STORE_DEST:
                if participation.event_id not in self._rmw:
                    stores.append(participation.event_id)
            elif (participation.event_id, participation.operand_index) not in (
                self._consumption
            ):
                consumed.append(participation)
        self._store_overwrite_pass(stores)
        self._trivial_consumption_pass(consumed)
        self.timings["operation_passes"] = (
            self.timings.get("operation_passes", 0.0)
            + (time.perf_counter() - start)
        )

    def _store_overwrite_pass(self, store_ids: List[int]) -> None:
        """Vectorized depth-1 RMW screen; chain walk for the remainder."""
        if not store_ids:
            return
        undecided = store_ids
        cols = self.trace.columns()
        if cols is not None:
            import numpy as np

            sids = np.asarray(store_ids, dtype=np.int64)
            producer0 = cols.producers[cols.offsets[sids]]
            valid = producer0 >= 0
            resolved = (cols.object_id[sids] >= 0) & (cols.element[sids] >= 0)
            depth1 = np.zeros(len(sids), dtype=bool)
            pv = producer0[valid]
            sv = sids[valid]
            depth1[valid] = (
                (cols.opcode[pv] == LOAD_CODE)
                & (cols.object_id[pv] == cols.object_id[sv])
                & (cols.element[pv] == cols.element[sv])
            )
            depth1 &= resolved
            undecided = []
            for event_id, is_rmw in zip(store_ids, depth1.tolist()):
                if is_rmw:
                    self._rmw[event_id] = True
                else:
                    undecided.append(event_id)
        for event_id in undecided:
            self._rmw[event_id] = _rmw_walk(self.trace, event_id)

    def _trivial_consumption_pass(self, consumed: List[Participation]) -> None:
        opcode_of = self.trace.opcode_of
        for participation in consumed:
            opcode = opcode_of(participation.event_id)
            index = participation.operand_index
            if opcode is Opcode.STORE and index == 0:
                klass = STORED_VALUE
            elif opcode is Opcode.STORE and index == 1:
                klass = STORE_ADDRESS
            elif opcode is Opcode.LOAD:
                klass = LOAD_ADDRESS
            elif opcode is Opcode.BR:
                klass = BRANCH_CONDITION
            elif opcode is Opcode.RET:
                klass = RETURN_VALUE
            else:
                klass = GENERIC
            self._consumption[(participation.event_id, index)] = klass

    # ------------------------------------------------------------------ #
    # per-site verdicts (pass-backed, legacy-identical)
    # ------------------------------------------------------------------ #
    def store_rmw(self, event_id: int) -> bool:
        flag = self._rmw.get(event_id)
        if flag is None:
            flag = self._rmw[event_id] = _rmw_walk(self.trace, event_id)
        return flag

    def verdict(
        self, participation: Participation, pattern: ErrorPattern
    ) -> MaskingVerdict:
        """The operation-level verdict, served from the precomputed passes.

        Field-identical to ``OperationMaskingAnalyzer.analyze`` — trivially
        classified sites are answered straight from the pass results
        (without materialising the event), the remainder delegates to the
        analyzer with a cached event.
        """
        if participation.role is ParticipationRole.STORE_DEST:
            return self.masking._analyze_store_destination(
                participation, rmw=self.store_rmw(participation.event_id)
            )
        key = (participation.event_id, participation.operand_index)
        klass = self._consumption.get(key)
        if klass is None:
            self._trivial_consumption_pass([participation])
            klass = self._consumption[key]
        if klass == STORED_VALUE:
            corrupted = pattern.apply(
                self.trace.operand_value(participation.event_id, 0),
                participation.value_type,
            )
            return MaskingVerdict(
                masked=None,
                needs_propagation=True,
                corrupted_result=corrupted,
                detail="corrupted value stored to memory",
            )
        if klass == STORE_ADDRESS:
            return MaskingVerdict(
                masked=None, needs_injection=True, detail="store address corrupted"
            )
        if klass == LOAD_ADDRESS:
            return MaskingVerdict(
                masked=None, needs_injection=True, detail="load address corrupted"
            )
        if klass == BRANCH_CONDITION:
            return MaskingVerdict(
                masked=None, needs_injection=True, detail="branch condition corrupted"
            )
        if klass == RETURN_VALUE:
            return MaskingVerdict(
                masked=None, needs_injection=True, detail="return value corrupted"
            )
        return self.masking._analyze_consumption(
            participation, pattern, event=self.trace[participation.event_id]
        )
