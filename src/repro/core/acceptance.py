"""Outcome classification and acceptance criteria.

The paper's fault model (§II-A) defines application-outcome correctness as
either *precise numerical integrity* or *satisfying a minimum fidelity
threshold* (e.g. an iterative solver's convergence criterion).  The classes
here encode both notions so every workload can declare what "acceptable"
means for it, and the injectors can classify each faulty run into one of the
:class:`OutcomeClass` buckets the evaluation section reasons about.
"""

from __future__ import annotations

import enum
import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np


class OutcomeClass(enum.Enum):
    """What a (possibly faulty) execution did, relative to the golden run."""

    #: Bit-for-bit identical outputs — the error was fully masked before it
    #: reached any output (operation-level or propagation-level masking).
    IDENTICAL = "identical"
    #: Numerically different but within the workload's acceptance criterion —
    #: algorithm-level masking.
    ACCEPTABLE = "acceptable"
    #: Numerically different and outside the acceptance criterion — silent
    #: data corruption.
    UNACCEPTABLE = "unacceptable"
    #: The run raised a VM fault (segmentation fault, division by zero …).
    CRASH = "crash"
    #: The run exceeded its dynamic-instruction budget (corrupted loop bound).
    HANG = "hang"

    @property
    def is_success(self) -> bool:
        """Counted as success by fault-injection campaigns (paper's "correct")."""
        return self in (OutcomeClass.IDENTICAL, OutcomeClass.ACCEPTABLE)

    @property
    def is_masked(self) -> bool:
        return self.is_success


Outputs = Dict[str, np.ndarray]


class AcceptanceCriterion(ABC):
    """Decides whether faulty outputs are acceptable relative to golden ones."""

    @abstractmethod
    def acceptable(self, golden: Outputs, faulty: Outputs) -> bool:
        """True when the faulty outputs satisfy the workload's fidelity needs."""

    def identical(self, golden: Outputs, faulty: Outputs) -> bool:
        """True when outputs are bit-for-bit identical (NaNs compare equal)."""
        if golden.keys() != faulty.keys():
            return False
        for name, gold in golden.items():
            fault = faulty[name]
            if gold.shape != fault.shape:
                return False
            if not np.array_equal(gold, fault, equal_nan=True):
                return False
        return True

    def describe(self) -> str:
        return type(self).__name__


class ExactMatch(AcceptanceCriterion):
    """Only bit-identical outputs are acceptable (precise numerical integrity)."""

    def acceptable(self, golden: Outputs, faulty: Outputs) -> bool:
        return self.identical(golden, faulty)

    def describe(self) -> str:
        return "exact match"


class RelativeTolerance(AcceptanceCriterion):
    """Element-wise relative/absolute tolerance on every output object."""

    def __init__(self, rtol: float = 1e-6, atol: float = 1e-9) -> None:
        if rtol < 0 or atol < 0:
            raise ValueError("tolerances must be non-negative")
        self.rtol = rtol
        self.atol = atol

    def acceptable(self, golden: Outputs, faulty: Outputs) -> bool:
        if golden.keys() != faulty.keys():
            return False
        for name, gold in golden.items():
            fault = faulty[name]
            if gold.shape != fault.shape:
                return False
            if np.issubdtype(gold.dtype, np.floating):
                if not np.allclose(gold, fault, rtol=self.rtol, atol=self.atol,
                                   equal_nan=False):
                    return False
                if np.isnan(fault).any() != np.isnan(gold).any():
                    return False
            else:
                if not np.array_equal(gold, fault):
                    return False
        return True

    def describe(self) -> str:
        return f"element-wise tolerance (rtol={self.rtol:g}, atol={self.atol:g})"


class NormRelativeTolerance(AcceptanceCriterion):
    """Acceptance on the relative L2 error of each output vector.

    This is the fidelity notion iterative solvers use (CG, MG, AMG …): the
    answer is acceptable as long as ``||x_faulty - x_golden|| / ||x_golden||``
    stays below a threshold, mirroring a convergence test.
    """

    def __init__(self, threshold: float = 1e-4) -> None:
        if threshold < 0:
            raise ValueError("threshold must be non-negative")
        self.threshold = threshold

    def acceptable(self, golden: Outputs, faulty: Outputs) -> bool:
        if golden.keys() != faulty.keys():
            return False
        for name, gold in golden.items():
            fault = faulty[name]
            if gold.shape != fault.shape:
                return False
            if not np.issubdtype(gold.dtype, np.floating):
                if not np.array_equal(gold, fault):
                    return False
                continue
            if np.isnan(fault).any() or np.isinf(fault).any():
                return False
            scale = float(np.linalg.norm(gold))
            error = float(np.linalg.norm(fault - gold))
            if scale == 0.0:
                if error > self.threshold:
                    return False
            elif error / scale > self.threshold:
                return False
        return True

    def describe(self) -> str:
        return f"relative L2 error <= {self.threshold:g}"


class CompositeCriterion(AcceptanceCriterion):
    """All member criteria must accept (logical AND)."""

    def __init__(self, members: Sequence[AcceptanceCriterion]) -> None:
        if not members:
            raise ValueError("composite criterion needs at least one member")
        self.members = list(members)

    def acceptable(self, golden: Outputs, faulty: Outputs) -> bool:
        return all(member.acceptable(golden, faulty) for member in self.members)

    def describe(self) -> str:
        return " AND ".join(member.describe() for member in self.members)


@dataclass
class ScalarResultCheck:
    """Optional check on the entry function's scalar return value."""

    rtol: float = 1e-6
    atol: float = 1e-9

    def acceptable(self, golden: Optional[float], faulty: Optional[float]) -> bool:
        if golden is None and faulty is None:
            return True
        if golden is None or faulty is None:
            return False
        if isinstance(golden, float) and (math.isnan(faulty) or math.isinf(faulty)):
            return False
        return math.isclose(float(faulty), float(golden), rel_tol=self.rtol,
                            abs_tol=self.atol)


def classify_outcome(
    criterion: AcceptanceCriterion,
    golden: Outputs,
    faulty: Outputs,
    crashed: bool = False,
    hung: bool = False,
    golden_return: Optional[float] = None,
    faulty_return: Optional[float] = None,
    return_check: Optional[ScalarResultCheck] = None,
) -> OutcomeClass:
    """Bucket one faulty execution into an :class:`OutcomeClass`.

    ``crashed``/``hung`` short-circuit the comparison; otherwise the outputs
    (and optionally the scalar return value) are compared against the golden
    run using ``criterion``.
    """
    if crashed:
        return OutcomeClass.CRASH
    if hung:
        return OutcomeClass.HANG
    return_identical = True
    return_acceptable = True
    if return_check is not None:
        return_acceptable = return_check.acceptable(golden_return, faulty_return)
        if golden_return is None or faulty_return is None:
            return_identical = golden_return is faulty_return
        else:
            gr, fr = float(golden_return), float(faulty_return)
            return_identical = (gr == fr) or (math.isnan(gr) and math.isnan(fr))
    if criterion.identical(golden, faulty) and return_identical:
        return OutcomeClass.IDENTICAL
    if criterion.acceptable(golden, faulty) and return_acceptable:
        return OutcomeClass.ACCEPTABLE
    return OutcomeClass.UNACCEPTABLE
