"""Bounded error-propagation analysis (§III-D).

When an error is not masked by the operation that consumes it, MOARD chases
the corrupted value forward through the dynamic trace for at most *k*
operations, re-evaluating each successor with the corrupted inputs and
checking whether every secondary error is eventually masked at the
operation level (overwritten, absorbed, or dropped by logic/compare
operations).  If all corruption disappears within the window the original
error is *masked by error propagation*; if corruption survives (or control
flow / memory addressing would change, which cannot be replayed locally) the
verdict is left to the algorithm-level analysis (deterministic injection).

The bound *k* is justified empirically in the paper (87 % of unmasked
injections are decided within 10 operations, 100 % within 50); the
``benchmarks/bench_kbound.py`` harness reproduces that observation on our
workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from repro.ir.instructions import Opcode
from repro.core.masking import MaskingCategory
from repro.core.participation import Participation, ParticipationRole
from repro.core.patterns import ErrorPattern
from repro.core.reexec import ReexecStatus, reevaluate, results_identical
from repro.tracing.cursor import TraceCursor, TraceLike


@dataclass
class PropagationResult:
    """Outcome of chasing one error forward through the trace."""

    #: ``True``: every corrupted value/memory cell was masked inside the
    #: window.  ``False``: corruption survived the window (or the trace
    #: ended with corrupted output state).  ``None``: the analysis had to
    #: stop (control-flow or addressing divergence, opaque call).
    masked: Optional[bool]
    #: Dominant category of the operations that absorbed the corruption.
    category: Optional[MaskingCategory]
    steps_analyzed: int
    corrupted_values_remaining: int
    corrupted_memory_remaining: int
    diverged: bool = False
    reason: str = ""
    #: Data objects whose memory was (transiently) contaminated.
    contaminated_objects: Set[str] = field(default_factory=set)


class PropagationAnalyzer:
    """Forward error-propagation over a recorded trace.

    ``trace`` may be any trace-like event source (the full in-memory
    :class:`~repro.tracing.trace.Trace` or a
    :class:`~repro.tracing.sinks.ColumnarTraceSink`); events are read
    through the :class:`~repro.tracing.cursor.TraceCursor` API rather than
    by reaching into a concrete event list.
    """

    def __init__(
        self,
        trace: TraceLike,
        k: int = 50,
        output_objects: Optional[Set[str]] = None,
    ) -> None:
        self.trace = trace
        self.k = k
        #: Objects whose final contents constitute the application outcome;
        #: corruption left in them is never "dead".
        self.output_objects = output_objects or set()
        self._last_use: Dict[int, int] = {}
        self._last_load_of_address: Dict[int, int] = {}
        self._index_trace()

    def _index_trace(self) -> None:
        from repro.tracing.columnar import LOAD_CODE, ColumnarTrace

        cols = (
            self.trace.columns() if isinstance(self.trace, ColumnarTrace) else None
        )
        if cols is not None:
            # columnar fast path: the same indices, built from the integer
            # columns instead of a per-event materialising scan.  Ascending
            # flat/event order makes "last assignment wins" in the zips
            # equivalent to the scan's forward overwrites.
            import numpy as np

            used = cols.producers >= 0
            self._last_use = dict(
                zip(cols.producers[used].tolist(), cols.owner[used].tolist())
            )
            loads = np.nonzero((cols.opcode == LOAD_CODE) & (cols.address >= 0))[0]
            self._last_load_of_address = dict(
                zip(cols.address[loads].tolist(), loads.tolist())
            )
            touched = np.nonzero(cols.address >= 0)[0]
            names = {i: n for n, i in cols.object_index.items()}
            cache = {}
            for address, oid, element in zip(
                cols.address[touched].tolist(),
                cols.object_id[touched].tolist(),
                cols.element[touched].tolist(),
            ):
                cache[address] = (
                    names.get(oid) if oid >= 0 else None,
                    element if element >= 0 else None,
                )
            self._addr_cache = cache
            return
        for event in self.trace:
            for producer in event.operand_producers:
                if producer >= 0:
                    self._last_use[producer] = event.dynamic_id
            if event.is_load and event.address is not None:
                self._last_load_of_address[event.address] = event.dynamic_id

    # ------------------------------------------------------------------ #
    def analyze(
        self,
        participation: Participation,
        pattern: ErrorPattern,
        corrupted_result: Optional[float] = None,
    ) -> PropagationResult:
        """Chase the error of ``pattern`` at ``participation`` forward.

        ``corrupted_result`` is the recomputed result of the consuming
        operation (from the operation-level analysis); when the participation
        is a store of a corrupted value the corrupted memory cell is seeded
        instead.
        """
        start_event = self.trace[participation.event_id]
        corrupted_values: Dict[int, float] = {}
        corrupted_memory: Dict[int, float] = {}
        category_votes: Dict[MaskingCategory, int] = {}
        contaminated: Set[str] = set()

        if participation.role is ParticipationRole.STORE_DEST:
            # An error in the destination that the store overwrites never
            # propagates; this analyzer is only called for unresolved cases.
            return PropagationResult(
                masked=None,
                category=None,
                steps_analyzed=0,
                corrupted_values_remaining=0,
                corrupted_memory_remaining=0,
                reason="store destination participations are resolved at the operation level",
            )

        if start_event.is_store:
            # corrupted value written to memory
            address = start_event.address
            corrupted_memory[address] = pattern.apply(
                start_event.operand_values[0], start_event.operand_types[0]
            ) if corrupted_result is None else corrupted_result
            if start_event.object_name is not None:
                contaminated.add(start_event.object_name)
        else:
            if corrupted_result is None:
                values = list(start_event.operand_values)
                values[participation.operand_index] = pattern.apply(
                    values[participation.operand_index],
                    participation.value_type,
                )
                reexec = reevaluate(start_event, values)
                if reexec.status is not ReexecStatus.VALUE:
                    return PropagationResult(
                        masked=None,
                        category=None,
                        steps_analyzed=0,
                        corrupted_values_remaining=0,
                        corrupted_memory_remaining=0,
                        diverged=True,
                        reason=f"seed re-evaluation: {reexec.status.value}",
                    )
                corrupted_result = reexec.value
            if results_identical(start_event, corrupted_result):
                return PropagationResult(
                    masked=True,
                    category=MaskingCategory.OVERSHADOW,
                    steps_analyzed=0,
                    corrupted_values_remaining=0,
                    corrupted_memory_remaining=0,
                    reason="consuming operation already absorbed the error",
                )
            corrupted_values[start_event.dynamic_id] = corrupted_result

        position = start_event.dynamic_id
        end = min(len(self.trace), position + 1 + self.k)
        steps = 0

        cursor = TraceCursor(self.trace, position + 1)
        for event in cursor.take(self.k):
            steps += 1
            self._drop_dead(corrupted_values, corrupted_memory, event.dynamic_id)
            if not corrupted_values and not corrupted_memory:
                break

            substituted, involved = self._substitute(event, corrupted_values, corrupted_memory)

            if event.is_load:
                # a corrupted address operand means the access pattern itself
                # changed, which cannot be replayed against recorded state
                if event.operand_producers[0] in corrupted_values:
                    return self._diverged(
                        "corrupted load address", steps, corrupted_values,
                        corrupted_memory, category_votes, contaminated,
                    )
                if event.address in corrupted_memory:
                    corrupted_values[event.dynamic_id] = corrupted_memory[event.address]
                continue

            if event.is_store:
                address = event.address
                if substituted is not None and involved and int(
                    substituted[1]
                ) != int(event.operand_values[1]):
                    return self._diverged(
                        "corrupted store address", steps, corrupted_values,
                        corrupted_memory, category_votes, contaminated,
                    )
                if substituted is not None and 0 in self._corrupted_operands(
                    event, corrupted_values
                ):
                    corrupted_memory[address] = substituted[0]
                    if event.object_name is not None:
                        contaminated.add(event.object_name)
                elif address in corrupted_memory:
                    # overwritten with a clean value
                    del corrupted_memory[address]
                    category_votes[MaskingCategory.OVERWRITE] = (
                        category_votes.get(MaskingCategory.OVERWRITE, 0) + 1
                    )
                continue

            if not involved:
                continue

            reexec = reevaluate(event, substituted)
            if reexec.status is ReexecStatus.DIVERGED:
                return self._diverged(
                    reexec.detail or "control/addressing divergence", steps,
                    corrupted_values, corrupted_memory, category_votes, contaminated,
                )
            if reexec.status is ReexecStatus.OPAQUE:
                return self._diverged(
                    reexec.detail or "opaque call", steps, corrupted_values,
                    corrupted_memory, category_votes, contaminated,
                )
            if reexec.status is ReexecStatus.TRAPPED:
                return PropagationResult(
                    masked=False,
                    category=None,
                    steps_analyzed=steps,
                    corrupted_values_remaining=len(corrupted_values),
                    corrupted_memory_remaining=len(corrupted_memory),
                    reason=f"secondary error traps: {reexec.detail}",
                    contaminated_objects=contaminated,
                )
            if reexec.status is ReexecStatus.NO_VALUE:
                continue

            if results_identical(event, reexec.value):
                category = self._absorption_category(event.opcode)
                category_votes[category] = category_votes.get(category, 0) + 1
            else:
                corrupted_values[event.dynamic_id] = reexec.value

        self._drop_dead(corrupted_values, corrupted_memory, end)
        masked = not corrupted_values and not corrupted_memory
        category = None
        if category_votes:
            category = max(category_votes, key=category_votes.get)
        elif masked:
            category = MaskingCategory.OVERWRITE
        return PropagationResult(
            masked=True if masked else False,
            category=category if masked else None,
            steps_analyzed=steps,
            corrupted_values_remaining=len(corrupted_values),
            corrupted_memory_remaining=len(corrupted_memory),
            reason="all corruption masked within the window"
            if masked
            else "corruption survived the propagation window",
            contaminated_objects=contaminated,
        )

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _drop_dead(
        self,
        corrupted_values: Dict[int, float],
        corrupted_memory: Dict[int, float],
        position: int,
    ) -> None:
        """Remove corruption that can no longer influence the outcome."""
        dead_values = [
            vid
            for vid in corrupted_values
            if self._last_use.get(vid, -1) < position
        ]
        for vid in dead_values:
            del corrupted_values[vid]
        dead_addresses = []
        for address in corrupted_memory:
            try:
                obj, _ = self._resolve_cached(address)
            except KeyError:
                continue
            if obj in self.output_objects:
                continue
            if self._last_load_of_address.get(address, -1) < position:
                dead_addresses.append(address)
        for address in dead_addresses:
            del corrupted_memory[address]

    _address_object_cache: Dict[int, str]

    def _resolve_cached(self, address: int):
        # addresses are resolved through the trace itself: find any event
        # touching this address (cheap because corrupted_memory is small and
        # populated from events we have already seen).
        cache = getattr(self, "_addr_cache", None)
        if cache is None:
            cache = {}
            for event in self.trace:
                if event.address is not None:
                    cache[event.address] = (event.object_name, event.element_index)
            self._addr_cache = cache
        if address not in cache:
            raise KeyError(address)
        return cache[address]

    @staticmethod
    def _corrupted_operands(event, corrupted_values: Dict[int, float]) -> Set[int]:
        return {
            i
            for i, producer in enumerate(event.operand_producers)
            if producer in corrupted_values
        }

    def _substitute(
        self,
        event,
        corrupted_values: Dict[int, float],
        corrupted_memory: Dict[int, float],
    ):
        """Operand values of ``event`` with corrupted producers substituted."""
        involved = False
        values = list(event.operand_values)
        for i, producer in enumerate(event.operand_producers):
            if producer in corrupted_values:
                values[i] = corrupted_values[producer]
                involved = True
        return (values if involved else None), involved

    @staticmethod
    def _absorption_category(opcode: Opcode) -> MaskingCategory:
        from repro.ir.instructions import (
            BITWISE_OPCODES,
            COMPARISON_OPCODES,
            SHIFT_OPCODES,
        )

        if opcode in (Opcode.TRUNC, Opcode.FPTRUNC) or opcode in SHIFT_OPCODES:
            return MaskingCategory.OVERWRITE
        if opcode in COMPARISON_OPCODES or opcode in BITWISE_OPCODES or opcode is Opcode.SELECT:
            return MaskingCategory.LOGIC_COMPARE
        return MaskingCategory.OVERSHADOW

    def _diverged(
        self,
        reason: str,
        steps: int,
        corrupted_values: Dict[int, float],
        corrupted_memory: Dict[int, float],
        category_votes: Dict[MaskingCategory, int],
        contaminated: Set[str],
    ) -> PropagationResult:
        return PropagationResult(
            masked=None,
            category=max(category_votes, key=category_votes.get) if category_votes else None,
            steps_analyzed=steps,
            corrupted_values_remaining=len(corrupted_values),
            corrupted_memory_remaining=len(corrupted_memory),
            diverged=True,
            reason=reason,
            contaminated_objects=contaminated,
        )
