"""Traditional random fault injection (§V-C baseline).

RFI randomly picks valid fault sites of a data object, injects a single-bit
flip per test, and reports the success rate with a binomial margin of error.
The paper uses it to show that (a) the result is sensitive to the number of
tests and (b) the ranking of data objects flips between sample sizes — while
aDVF is deterministic.  ``required_sample_size`` implements the
statistical-fault-injection sizing of Leveugle et al. [26] used to choose
the number of tests at a given confidence level.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

import numpy as np

from repro.core.acceptance import OutcomeClass
from repro.core.injector import DeterministicFaultInjector
from repro.core.sites import FaultSite, enumerate_fault_sites
from repro.tracing.trace import Trace

if TYPE_CHECKING:  # pragma: no cover - import only needed for typing
    from repro.workloads.base import Workload


def _z(confidence: float) -> float:
    """Two-sided z-score for a confidence level.

    Delegates to :func:`repro.campaigns.stats.z_for_confidence` — the one
    canonical z-table — via a deferred import so ``repro.core`` does not
    pull the campaigns package in at import time.
    """
    from repro.campaigns.stats import z_for_confidence

    return z_for_confidence(confidence)


def required_sample_size(
    population: int, confidence: float = 0.95, error_margin: float = 0.05, p: float = 0.5
) -> int:
    """Number of fault-injection tests for the given statistical guarantees.

    Implements the finite-population sample-size formula of statistical
    fault injection (Leveugle et al., DATE 2009):

    ``n = N / (1 + e^2 (N-1) / (z^2 p (1-p)))``
    """
    if population <= 0:
        return 0
    z = _z(confidence)
    numerator = population
    denominator = 1.0 + (error_margin**2) * (population - 1) / (z**2 * p * (1.0 - p))
    return max(1, int(math.ceil(numerator / denominator)))


@dataclass
class RFIResult:
    """Aggregate of one random fault-injection campaign."""

    object_name: str
    tests: int
    successes: int
    outcomes: Dict[OutcomeClass, int] = field(default_factory=dict)
    confidence: float = 0.95
    seed: int = 0

    @property
    def success_rate(self) -> float:
        return self.successes / self.tests if self.tests else 0.0

    @property
    def margin_of_error(self) -> float:
        """Binomial margin of error at :attr:`confidence`."""
        if self.tests == 0:
            return 0.0
        z = _z(self.confidence)
        p = self.success_rate
        return z * math.sqrt(max(p * (1.0 - p), 1e-12) / self.tests)

    def interval(self) -> tuple:
        return (
            max(0.0, self.success_rate - self.margin_of_error),
            min(1.0, self.success_rate + self.margin_of_error),
        )


class RandomFaultInjection:
    """Random single-bit fault injection over a data object's fault space."""

    def __init__(
        self,
        workload: Workload,
        seed: int = 0,
        max_participations: Optional[int] = None,
        injector: Optional[DeterministicFaultInjector] = None,
        injection_mode: str = "replay",
    ) -> None:
        self.workload = workload
        self.seed = seed
        self.max_participations = max_participations
        #: All sampled tests replay from the shared checkpoint schedule; the
        #: golden run is executed once per campaign object, not per test.
        self.injector = injector or DeterministicFaultInjector(
            workload, mode=injection_mode
        )

    def run(
        self,
        trace: Trace,
        object_name: str,
        tests: int,
        confidence: float = 0.95,
        seed: Optional[int] = None,
    ) -> RFIResult:
        """Inject ``tests`` randomly chosen single-bit faults."""
        if tests <= 0:
            raise ValueError("the number of fault injection tests must be positive")
        sites = enumerate_fault_sites(
            trace, object_name, max_participations=self.max_participations
        )
        if not sites:
            raise ValueError(f"{object_name} has no valid fault sites in this trace")
        rng = np.random.default_rng(self.seed if seed is None else seed)
        chosen_indices = rng.integers(0, len(sites), size=tests)
        chosen: List[FaultSite] = [sites[int(index)] for index in chosen_indices]
        outcomes: Dict[OutcomeClass, int] = {}
        successes = 0
        # all sampled tests go through the batch scheduler in one submission
        for result in self.injector.inject_many([s.to_spec() for s in chosen]):
            outcomes[result.outcome] = outcomes.get(result.outcome, 0) + 1
            if result.outcome.is_success:
                successes += 1
        return RFIResult(
            object_name=object_name,
            tests=tests,
            successes=successes,
            outcomes=outcomes,
            confidence=confidence,
            seed=self.seed if seed is None else seed,
        )

    def sweep(
        self,
        trace: Trace,
        object_name: str,
        test_counts: Sequence[int],
        confidence: float = 0.95,
    ) -> List[RFIResult]:
        """One campaign per entry of ``test_counts`` (the paper's 500…3500 sweep).

        Each campaign uses a different derived seed, as independent RFI
        experiments would.
        """
        return [
            self.run(trace, object_name, tests, confidence, seed=self.seed + i)
            for i, tests in enumerate(test_counts)
        ]
