"""Exhaustive fault injection (§V-B model validation).

The exhaustive campaign injects into *every* valid fault site of a data
object and reports the success rate (fraction of runs whose outcome is
identical or acceptable).  The paper uses it as ground truth to validate
that aDVF ranks data objects correctly; it is accurate but — as the paper
stresses — impractical at scale, which is why the optional stride/sampling
parameters exist for laptop-sized runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.core.acceptance import OutcomeClass
from repro.core.injector import DeterministicFaultInjector, FaultInjectionResult
from repro.core.sites import FaultSite, enumerate_fault_sites
from repro.tracing.trace import Trace

if TYPE_CHECKING:  # pragma: no cover - import only needed for typing
    from repro.workloads.base import Workload



@dataclass
class ExhaustiveResult:
    """Aggregate of an exhaustive (or strided-exhaustive) campaign."""

    object_name: str
    sites_total: int
    sites_injected: int
    outcomes: Dict[OutcomeClass, int] = field(default_factory=dict)

    @property
    def success_rate(self) -> float:
        """Fraction of injections with correct (identical/acceptable) outcome."""
        if self.sites_injected == 0:
            return 0.0
        successes = sum(
            count for outcome, count in self.outcomes.items() if outcome.is_success
        )
        return successes / self.sites_injected

    @property
    def crash_rate(self) -> float:
        if self.sites_injected == 0:
            return 0.0
        crashes = self.outcomes.get(OutcomeClass.CRASH, 0) + self.outcomes.get(
            OutcomeClass.HANG, 0
        )
        return crashes / self.sites_injected

    def describe(self) -> str:
        parts = ", ".join(
            f"{outcome.value}={count}" for outcome, count in sorted(
                self.outcomes.items(), key=lambda item: item[0].value
            )
        )
        return (
            f"{self.object_name}: success rate {self.success_rate:.3f} over "
            f"{self.sites_injected}/{self.sites_total} sites ({parts})"
        )


class ExhaustiveCampaign:
    """Run (a deterministic subsample of) the exhaustive fault space.

    Injections use checkpointed replay by default: the campaign's injector
    prepares the golden run and the snapshot schedule once, and every fault
    of every object replays only the suffix after its site (pass an explicit
    ``injector`` to share that preparation across campaigns, or
    ``injection_mode="rerun"`` for the from-scratch oracle).
    """

    def __init__(
        self,
        workload: Workload,
        bit_stride: int = 1,
        max_participations: Optional[int] = None,
        max_injections: Optional[int] = None,
        injector: Optional[DeterministicFaultInjector] = None,
        injection_mode: str = "replay",
    ) -> None:
        self.workload = workload
        self.bit_stride = bit_stride
        self.max_participations = max_participations
        self.max_injections = max_injections
        self.injector = injector or DeterministicFaultInjector(
            workload, mode=injection_mode
        )

    def sites_for(self, trace: Trace, object_name: str) -> List[FaultSite]:
        return enumerate_fault_sites(
            trace,
            object_name,
            bit_stride=self.bit_stride,
            max_participations=self.max_participations,
        )

    def run(self, trace: Trace, object_name: str) -> ExhaustiveResult:
        """Inject into every (sampled) site of ``object_name``."""
        sites = self.sites_for(trace, object_name)
        total = len(sites)
        if self.max_injections is not None and total > self.max_injections:
            stride = total / self.max_injections
            sites = [sites[int(i * stride)] for i in range(self.max_injections)]
        outcomes: Dict[OutcomeClass, int] = {}
        # one batched submission: the replay scheduler groups the sites by
        # snapshot interval and shares the suffix walk across them
        for result in self.injector.inject_many([s.to_spec() for s in sites]):
            outcomes[result.outcome] = outcomes.get(result.outcome, 0) + 1
        return ExhaustiveResult(
            object_name=object_name,
            sites_total=total,
            sites_injected=len(sites),
            outcomes=outcomes,
        )

    def run_many(
        self, trace: Trace, object_names: Sequence[str]
    ) -> Dict[str, ExhaustiveResult]:
        """Campaigns for several data objects over the same trace."""
        return {name: self.run(trace, name) for name in object_names}


def rank_by_success_rate(results: Dict[str, ExhaustiveResult]) -> List[str]:
    """Object names ordered from most to least resilient."""
    return sorted(results, key=lambda name: results[name].success_rate, reverse=True)
