"""Checkpointed replay of fault injections (the engine-side acceleration).

The seed injector re-executed the whole workload from scratch for every
injected fault.  A fault at dynamic instruction *d* cannot influence
anything before *d*, so the prefix of every faulty run is identical to the
golden run — the dominant, perfectly redundant cost of an injection
campaign.

:class:`ReplayContext` removes it:

1. run the workload **once**, capturing a :class:`~repro.vm.engine.Snapshot`
   schedule (complete dynamic state every *interval* instructions);
2. for each fault, restore the nearest snapshot at or before the fault site
   and run forward with the fault armed — the prefix is never re-executed;
3. while running forward, compare the live state against the golden
   snapshots *after* the fault site: a bit-identical match proves the
   execution has converged back onto the golden run (masked fault), so the
   suffix is skipped too and the golden outcome is returned.

Replayed executions are bit-identical to full re-runs: the engine restores
registers, the call stack, the complete memory image and the allocator
counters, so every address, stack-slot name and dynamic id matches.  The
test suite asserts outcome identity against the from-scratch path across
workloads and fault targets.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import TYPE_CHECKING, Dict, List, Optional

import numpy as np

from repro.vm.engine import Engine, Snapshot
from repro.vm.faults import FaultSpec

if TYPE_CHECKING:  # pragma: no cover - import only needed for typing
    from repro.workloads.base import RunOutcome, Workload


class ReplayContext:
    """Golden run + snapshot schedule of one workload, shared by many
    injections.

    Parameters
    ----------
    workload:
        The workload to prepare.  Its ``fresh_instance`` must be
        deterministic (the base-class contract).
    checkpoint_interval:
        Snapshot spacing in dynamic instructions.  Default: a single golden
        run starts at a fine interval and lets the engine's
        ``snapshot_budget`` thin the schedule by doubling, landing between
        ``target_checkpoints`` and twice that many snapshots without a
        separate step-counting probe run.
    target_checkpoints:
        Number of snapshots to aim for when the interval is derived.
    detect_convergence:
        Stop a replay early when its state matches the golden execution
        again (the outcome is then provably the golden outcome).
    sink:
        Optional trace sink (any ``TraceSink``, e.g. a
        :class:`~repro.tracing.columnar.ColumnarTrace`) that records the
        golden run while the snapshot schedule is captured, so consumers
        needing both the golden trace and replay injection — the aDVF
        engine — pay for a single golden execution.  Exposed afterwards as
        :attr:`golden_trace` (a ``TraceLike`` when a full sink was given).
    """

    def __init__(
        self,
        workload: "Workload",
        checkpoint_interval: Optional[int] = None,
        target_checkpoints: int = 64,
        detect_convergence: bool = True,
        sink=None,
    ) -> None:
        if checkpoint_interval is not None and checkpoint_interval < 1:
            raise ValueError(
                f"checkpoint_interval must be >= 1, got {checkpoint_interval}"
            )
        self.workload = workload
        self.detect_convergence = detect_convergence

        self.instance = workload.fresh_instance()
        if checkpoint_interval is not None:
            engine = Engine(
                self.instance.module,
                self.instance.memory,
                sink=sink,
                snapshot_interval=checkpoint_interval,
                max_steps=workload.max_steps,
            )
        else:
            engine = Engine(
                self.instance.module,
                self.instance.memory,
                sink=sink,
                snapshot_interval=64,
                snapshot_budget=2 * max(1, target_checkpoints),
                max_steps=workload.max_steps,
            )
        result = engine.run(workload.entry, self.instance.args)
        #: The golden dynamic trace, when a recording sink was supplied.
        self.golden_trace = sink
        self.checkpoint_interval = engine.snapshot_interval
        self.snapshots: List[Snapshot] = engine.snapshots
        self._snapshot_positions = [snap.dyn for snap in self.snapshots]
        self.golden_steps = result.steps
        self.golden_return = result.return_value
        self.golden_outputs: Dict[str, np.ndarray] = {
            name: self.instance.memory.object(name).values()
            for name in workload.output_objects
        }
        #: Replays answered by convergence detection (telemetry for benches).
        self.converged_replays = 0
        #: Total replays served.
        self.replays = 0

    # ------------------------------------------------------------------ #
    def golden_outcome(self) -> "RunOutcome":
        """The fault-free outcome (outputs are fresh copies)."""
        from repro.workloads.base import RunOutcome

        return RunOutcome(
            outputs={name: a.copy() for name, a in self.golden_outputs.items()},
            return_value=self.golden_return,
            steps=self.golden_steps,
            trace=None,
        )

    def snapshot_for(self, dynamic_id: int) -> Snapshot:
        """The latest snapshot at or before ``dynamic_id``."""
        index = bisect_right(self._snapshot_positions, dynamic_id) - 1
        if index < 0:
            raise ValueError(
                f"no snapshot at or before dynamic id {dynamic_id}"
            )
        return self.snapshots[index]

    def replay(self, spec: FaultSpec) -> "RunOutcome":
        """Execute the workload with ``spec`` injected, via replay.

        Raises the same VM error types a full faulty run would raise;
        callers classify crashes/hangs exactly as before.
        """
        from repro.workloads.base import RunOutcome

        self.replays += 1
        snapshot = self.snapshot_for(spec.dynamic_id)
        engine = Engine(
            self.instance.module,
            self.instance.memory,
            fault=spec,
            max_steps=self.workload.max_steps,
        )
        result = engine.resume(
            snapshot,
            golden_schedule=self.snapshots if self.detect_convergence else None,
        )
        if engine.converged:
            self.converged_replays += 1
            return self.golden_outcome()
        return RunOutcome(
            outputs={
                name: self.instance.memory.object(name).values()
                for name in self.workload.output_objects
            },
            return_value=result.return_value,
            steps=result.steps,
            trace=None,
        )
