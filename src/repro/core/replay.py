"""Checkpointed replay of fault injections (the engine-side acceleration).

The seed injector re-executed the whole workload from scratch for every
injected fault.  A fault at dynamic instruction *d* cannot influence
anything before *d*, so the prefix of every faulty run is identical to the
golden run — the dominant, perfectly redundant cost of an injection
campaign.

:class:`ReplayContext` removes it:

1. run the workload **once**, capturing a :class:`~repro.vm.engine.Snapshot`
   schedule (complete dynamic state every *interval* instructions);
2. for each fault, restore the nearest snapshot at or before the fault site
   and run forward with the fault armed — the prefix is never re-executed;
3. while running forward, compare the live state against the golden
   snapshots *after* the fault site: a bit-identical match proves the
   execution has converged back onto the golden run (masked fault), so the
   suffix is skipped too and the golden outcome is returned.

Replayed executions are bit-identical to full re-runs: the engine restores
registers, the call stack, the complete memory image and the allocator
counters, so every address, stack-slot name and dynamic id matches.  The
test suite asserts outcome identity against the from-scratch path across
workloads and fault targets.
"""

from __future__ import annotations

from bisect import bisect_right
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.obs.metrics import registry as _metrics_registry
from repro.vm.engine import Engine, Snapshot, snapshot_digest
from repro.vm.faults import FaultSpec

if TYPE_CHECKING:  # pragma: no cover - import only needed for typing
    from repro.workloads.base import RunOutcome, Workload

#: Format version of the serialised convergence-memo artifact.  Bumped on
#: any change to the payload layout or the entry encoding; persisted memos
#: of other versions are treated as cold (never migrated in place).
MEMO_FORMAT_VERSION = 1

#: Golden dynamic-instruction counts observed per workload configuration.
#: ``fresh_instance`` is deterministic, so one measurement fixes the length
#: for the whole process and later contexts can size their snapshot
#: schedule from it instead of the generic fine-interval-plus-thinning
#: bootstrap.
_GOLDEN_STEPS_MEMO: Dict[tuple, int] = {}


def _workload_memo_key(workload: "Workload") -> Optional[tuple]:
    """A hashable identity for a workload *configuration*.

    Two workloads of the same class with the same scalar attributes (seed,
    problem sizes, ...) produce bit-identical golden runs; anything with
    non-scalar state is conservatively treated as unmemoisable.
    """
    cls = type(workload)
    scalars = []
    for name, value in sorted(vars(workload).items()):
        if name.startswith("_"):
            continue
        if value is None or isinstance(value, (bool, int, float, str)):
            scalars.append((name, value))
        else:
            return None
    return (cls.__module__, cls.__qualname__, tuple(scalars))


class ReplayContext:
    """Golden run + snapshot schedule of one workload, shared by many
    injections.

    Parameters
    ----------
    workload:
        The workload to prepare.  Its ``fresh_instance`` must be
        deterministic (the base-class contract).
    checkpoint_interval:
        Snapshot spacing in dynamic instructions.  Default: derived from
        the workload's golden program length.  The first context built for
        a given workload configuration in a process starts at a fine
        interval and lets the engine's ``snapshot_budget`` thin the
        schedule by doubling, landing between ``target_checkpoints`` and
        twice that many snapshots without a separate step-counting probe
        run; its measured step count is memoised, so every later context
        for the same configuration starts directly at
        ``golden_steps // target_checkpoints`` — short kernels stop
        over-snapshotting (and paying capture/thinning churn), long ones
        stop under-snapshotting.
    target_checkpoints:
        Number of snapshots to aim for when the interval is derived.
    detect_convergence:
        Stop a replay early when its state matches the golden execution
        again (the outcome is then provably the golden outcome).
    sink:
        Optional trace sink (any ``TraceSink``, e.g. a
        :class:`~repro.tracing.columnar.ColumnarTrace`) that records the
        golden run while the snapshot schedule is captured, so consumers
        needing both the golden trace and replay injection — the aDVF
        engine — pay for a single golden execution.  Exposed afterwards as
        :attr:`golden_trace` (a ``TraceLike`` when a full sink was given).
    """

    def __init__(
        self,
        workload: "Workload",
        checkpoint_interval: Optional[int] = None,
        target_checkpoints: int = 64,
        detect_convergence: bool = True,
        sink=None,
    ) -> None:
        if checkpoint_interval is not None and checkpoint_interval < 1:
            raise ValueError(
                f"checkpoint_interval must be >= 1, got {checkpoint_interval}"
            )
        self.workload = workload
        self.detect_convergence = detect_convergence

        self.instance = workload.fresh_instance()
        memo_key = None
        if checkpoint_interval is not None:
            engine = Engine(
                self.instance.module,
                self.instance.memory,
                sink=sink,
                snapshot_interval=checkpoint_interval,
                max_steps=workload.max_steps,
            )
        else:
            memo_key = _workload_memo_key(workload)
            known_steps = (
                _GOLDEN_STEPS_MEMO.get(memo_key) if memo_key is not None else None
            )
            if known_steps is not None:
                interval = max(1, known_steps // max(1, target_checkpoints))
            else:
                interval = 64
            engine = Engine(
                self.instance.module,
                self.instance.memory,
                sink=sink,
                snapshot_interval=interval,
                snapshot_budget=2 * max(1, target_checkpoints),
                max_steps=workload.max_steps,
            )
        result = engine.run(workload.entry, self.instance.args)
        if memo_key is not None:
            _GOLDEN_STEPS_MEMO[memo_key] = result.steps
        #: The golden dynamic trace, when a recording sink was supplied.
        self.golden_trace = sink
        self.checkpoint_interval = engine.snapshot_interval
        self.snapshots: List[Snapshot] = engine.snapshots
        self._snapshot_positions = [snap.dyn for snap in self.snapshots]
        self.golden_steps = result.steps
        self.golden_return = result.return_value
        self.golden_outputs: Dict[str, np.ndarray] = {
            name: self.instance.memory.object(name).values()
            for name in workload.output_objects
        }
        #: Replays answered by convergence detection (telemetry for benches).
        self.converged_replays = 0
        #: Total replays served.
        self.replays = 0
        #: Local accumulators while a :meth:`deferred_metrics` block is
        #: active (``None`` outside one): per-replay counter increments land
        #: here and are flushed to the registry once on exit.
        self._deferred: Optional[Dict[str, int]] = None
        reg = _metrics_registry()
        if reg.enabled:
            reg.inc("replay.contexts", workload=workload.name)
            reg.observe(
                "replay.golden_steps", float(result.steps),
                workload=workload.name,
            )

    # ------------------------------------------------------------------ #
    @contextmanager
    def deferred_metrics(self):
        """Batch per-replay counter increments into local ints for the
        duration of the block, flushed to the registry once on exit — the
        engine ``_loop`` flush pattern, for callers issuing many sequential
        :meth:`replay` calls (e.g. the injector's sequential fallback loop).
        Nested blocks flush at the outermost exit."""
        if self._deferred is not None:
            yield
            return
        counts = {"replay.sequential": 0, "replay.converged": 0}
        self._deferred = counts
        try:
            yield
        finally:
            self._deferred = None
            reg = _metrics_registry()
            if reg.enabled:
                for name, value in counts.items():
                    if value:
                        reg.inc(name, value, workload=self.workload.name)

    def golden_outcome(self) -> "RunOutcome":
        """The fault-free outcome (outputs are fresh copies)."""
        from repro.workloads.base import RunOutcome

        return RunOutcome(
            outputs={name: a.copy() for name, a in self.golden_outputs.items()},
            return_value=self.golden_return,
            steps=self.golden_steps,
            trace=None,
        )

    def snapshot_for(self, dynamic_id: int) -> Snapshot:
        """The latest snapshot at or before ``dynamic_id``."""
        index = bisect_right(self._snapshot_positions, dynamic_id) - 1
        if index < 0:
            raise ValueError(
                f"no snapshot at or before dynamic id {dynamic_id}"
            )
        return self.snapshots[index]

    def replay(self, spec: FaultSpec) -> "RunOutcome":
        """Execute the workload with ``spec`` injected, via replay.

        Raises the same VM error types a full faulty run would raise;
        callers classify crashes/hangs exactly as before.
        """
        from repro.workloads.base import RunOutcome

        self.replays += 1
        snapshot = self.snapshot_for(spec.dynamic_id)
        engine = Engine(
            self.instance.module,
            self.instance.memory,
            fault=spec,
            max_steps=self.workload.max_steps,
        )
        result = engine.resume(
            snapshot,
            golden_schedule=self.snapshots if self.detect_convergence else None,
        )
        deferred = self._deferred
        if deferred is not None:
            deferred["replay.sequential"] += 1
            if engine.converged:
                deferred["replay.converged"] += 1
        else:
            reg = _metrics_registry()
            if reg.enabled:
                reg.inc("replay.sequential", workload=self.workload.name)
                if engine.converged:
                    reg.inc("replay.converged", workload=self.workload.name)
        if engine.converged:
            self.converged_replays += 1
            return self.golden_outcome()
        return RunOutcome(
            outputs={
                name: self.instance.memory.object(name).values()
                for name in self.workload.output_objects
            },
            return_value=result.return_value,
            steps=result.steps,
            trace=None,
        )


# --------------------------------------------------------------------- #
# batched replay scheduler
# --------------------------------------------------------------------- #
@dataclass
class ReplayBatchStats:
    """Counters of the batched replay scheduler (telemetry, per context).

    ``batches`` counts lockstep walks (each restores exactly one snapshot,
    so ``faults / batches`` is the amortization the scheduler achieves);
    ``groups`` counts the snapshot-interval groups those walks spanned.
    ``memo_hits`` / ``memo_misses`` account the convergence memo: a *hit*
    answers a divergent replay from a previously recorded state, a *miss*
    is a divergent replay that had to run to completion.
    ``memo_persist_hits`` is the subset of hits answered by an entry that
    arrived through a persisted memo artifact (cross-process warm start);
    ``memo_evictions`` counts entries dropped by the memo's FIFO eviction.
    """

    batches: int = 0
    groups: int = 0
    faults: int = 0
    lockstep: int = 0
    evicted: int = 0
    converged: int = 0
    memo_hits: int = 0
    memo_misses: int = 0
    memo_persist_hits: int = 0
    memo_evictions: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "batches": self.batches,
            "groups": self.groups,
            "faults": self.faults,
            "lockstep": self.lockstep,
            "evicted": self.evicted,
            "converged": self.converged,
            "memo_hits": self.memo_hits,
            "memo_misses": self.memo_misses,
            "memo_persist_hits": self.memo_persist_hits,
            "memo_evictions": self.memo_evictions,
        }


@dataclass(frozen=True)
class ReplayBatch:
    """One snapshot-interval group of a batched submission.

    ``snapshot_dyn`` is the dynamic id of the snapshot serving the group;
    ``specs`` are the group's faults in ascending site order.  The
    scheduler restores each group's snapshot at most once (in practice a
    whole submission shares a single restore — the lockstep walk runs
    through consecutive groups without re-restoring).
    """

    snapshot_index: int
    snapshot_dyn: int
    specs: Tuple[FaultSpec, ...]


class _MemoEntry:
    """Recorded outcome tail of one divergent replay (see :class:`ReplayMemo`)."""

    __slots__ = ("kind", "outputs", "return_value", "steps", "converged_at",
                 "error", "warm")

    def __init__(self, kind, outputs=None, return_value=None, steps=0,
                 converged_at=None, error=None, warm=False) -> None:
        self.kind = kind  # "golden" | "outcome" | "error"
        self.outputs = outputs
        self.return_value = return_value
        self.steps = steps
        self.converged_at = converged_at
        self.error = error
        #: Whether the entry arrived through a persisted memo artifact
        #: (cross-process warm start) rather than a replay in this process.
        self.warm = warm


# --------------------------------------------------------------------- #
# memo entry (de)serialisation
# --------------------------------------------------------------------- #
def _encode_array(array: np.ndarray) -> Dict[str, object]:
    """JSON form of an output array, exact for every dtype the VM uses.

    ``tolist`` widens float32 to Python floats (float64) losslessly; JSON
    round-trips float64 via shortest-repr exactly; and narrowing back to
    the recorded dtype recovers the original bits (every float32 is
    exactly representable in float64).  Integers are exact throughout.
    """
    return {
        "dtype": str(array.dtype),
        "shape": list(array.shape),
        "values": array.ravel().tolist(),
    }


def _decode_array(payload: Dict[str, object]) -> np.ndarray:
    return np.array(
        payload["values"], dtype=np.dtype(str(payload["dtype"]))
    ).reshape([int(n) for n in payload["shape"]])


def _encode_scalar(value):
    # numpy scalars first: np.float64 subclasses float, so the plain-type
    # check would silently strip the dtype tag
    if isinstance(value, np.generic):
        return {"__np__": str(value.dtype), "value": value.item()}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(f"unserialisable memo return value {value!r}")


def _decode_scalar(payload):
    if isinstance(payload, dict) and "__np__" in payload:
        return np.dtype(str(payload["__np__"])).type(payload["value"])
    return payload


def _decode_error(type_name: str, message: str) -> BaseException:
    """Rebuild a VM error of the recorded type carrying the recorded message.

    Classification only depends on the exception's type (hang vs crash) and
    its ``str()``, so the instance is constructed without re-running the
    subclass constructor (signatures differ across error types).  Unknown
    type names degrade to the :class:`~repro.vm.errors.VMError` base.
    """
    from repro.vm import errors as vm_errors

    cls = getattr(vm_errors, type_name, None)
    if not (isinstance(cls, type) and issubclass(cls, vm_errors.VMError)):
        cls = vm_errors.VMError
    error = cls.__new__(cls)
    Exception.__init__(error, message)
    return error


def _encode_entry(entry: _MemoEntry) -> Dict[str, object]:
    if entry.kind == "golden":
        return {"kind": "golden", "converged_at": entry.converged_at}
    if entry.kind == "error":
        return {
            "kind": "error",
            "error_type": type(entry.error).__name__,
            "error_message": str(entry.error),
        }
    return {
        "kind": "outcome",
        "outputs": {
            name: _encode_array(array)
            for name, array in sorted((entry.outputs or {}).items())
        },
        "return_value": _encode_scalar(entry.return_value),
        "steps": entry.steps,
    }


def _decode_entry(payload: Dict[str, object], warm: bool) -> _MemoEntry:
    kind = payload["kind"]
    if kind == "golden":
        converged_at = payload.get("converged_at")
        return _MemoEntry(
            "golden",
            converged_at=None if converged_at is None else int(converged_at),
            warm=warm,
        )
    if kind == "error":
        return _MemoEntry(
            "error",
            error=_decode_error(
                str(payload.get("error_type", "VMError")),
                str(payload.get("error_message", "")),
            ),
            warm=warm,
        )
    return _MemoEntry(
        "outcome",
        outputs={
            name: _decode_array(spec)
            for name, spec in dict(payload.get("outputs", {})).items()
        },
        return_value=_decode_scalar(payload.get("return_value")),
        steps=int(payload.get("steps", 0)),
        warm=warm,
    )


class ReplayMemo:
    """Convergence memoization table: ``(checkpoint op, state digest) → tail``.

    A faulty execution is a pure function of its complete dynamic state, so
    once a replay passing through checkpoint ``c`` with state digest ``d``
    has been run to its outcome, every later replay reaching ``(c, d)`` must
    end the same way and can skip the remaining suffix entirely.  Golden
    convergence is the special case where ``d`` equals the golden digest
    (handled separately by the engine's digest checks); this table covers
    repeated *divergent* states.

    The table is bounded: past ``max_entries`` the oldest entries are
    FIFO-evicted (insertion order, which tracks replay recency closely
    enough here) so long campaigns keep memoising recent states instead of
    freezing the table at its first fill.  It is also *portable*:
    :meth:`to_payload` / :meth:`merge_payload` serialise entry tails —
    outputs, return value, steps, error type + message — into plain JSON,
    keyed by ``(position, digest hex)``, so campaign workers and resumed
    campaigns can warm-start from a shared artifact
    (see :class:`repro.tracing.cache.MemoCache`).
    """

    def __init__(self, max_entries: int = 16384) -> None:
        self.max_entries = max_entries
        self._table: Dict[Tuple[int, bytes], _MemoEntry] = {}
        #: Entries dropped by FIFO eviction (cumulative).
        self.evictions = 0
        #: Keys recorded locally since the last :meth:`consume_delta`
        #: (merged warm entries are deliberately excluded — deltas ship
        #: only what this process learned).
        self._dirty: set = set()

    def __len__(self) -> int:
        return len(self._table)

    def lookup(self, position: int, digest: bytes) -> Optional[_MemoEntry]:
        return self._table.get((position, digest))

    def record(self, visited: Sequence[Tuple[int, bytes]], entry: _MemoEntry) -> int:
        """Memoize ``entry`` under every visited state; returns evictions."""
        table = self._table
        evicted = 0
        for key in visited:
            if key not in table and len(table) >= self.max_entries:
                oldest = next(iter(table))
                del table[oldest]
                self._dirty.discard(oldest)
                evicted += 1
            table[key] = entry
            self._dirty.add(key)
        self.evictions += evicted
        return evicted

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    def _payload_for(self, keys: Iterable[Tuple[int, bytes]]) -> Dict[str, object]:
        entries: List[Dict[str, object]] = []
        index_of: Dict[int, int] = {}
        key_rows: List[List[object]] = []
        for key in sorted(keys):
            entry = self._table.get(key)
            if entry is None:
                continue
            index = index_of.get(id(entry))
            if index is None:
                index = index_of[id(entry)] = len(entries)
                entries.append(_encode_entry(entry))
            position, digest = key
            key_rows.append([position, digest.hex(), index])
        return {
            "format": MEMO_FORMAT_VERSION,
            "entries": entries,
            "keys": key_rows,
        }

    def to_payload(self) -> Dict[str, object]:
        """The whole table as a JSON-serialisable artifact payload."""
        return self._payload_for(self._table.keys())

    def consume_delta(self) -> Optional[Dict[str, object]]:
        """Payload of the keys recorded since the previous call, or ``None``.

        Workers ship these deltas back per chunk; the orchestrator merges
        them into the persisted artifact with :meth:`merge_payloads`.
        """
        if not self._dirty:
            return None
        payload = self._payload_for(self._dirty)
        self._dirty.clear()
        return payload if payload["keys"] else None

    def merge_payload(self, payload: Optional[Dict[str, object]],
                      warm: bool = True) -> int:
        """Fold a persisted payload into the table (existing entries win).

        Returns the number of entries added.  Payloads of a different
        format version are ignored (cold memo, never a crash), and the
        table never evicts live entries to make room for warm ones.
        """
        if not payload or payload.get("format") != MEMO_FORMAT_VERSION:
            return 0
        decoded: Dict[int, _MemoEntry] = {}
        table = self._table
        added = 0
        for position, digest_hex, index in payload.get("keys", ()):
            key = (int(position), bytes.fromhex(str(digest_hex)))
            if key in table:
                continue
            if len(table) >= self.max_entries:
                break
            entry = decoded.get(int(index))
            if entry is None:
                entry = decoded[int(index)] = _decode_entry(
                    payload["entries"][int(index)], warm=warm
                )
            table[key] = entry
            added += 1
        return added

    @staticmethod
    def merge_payloads(
        base: Optional[Dict[str, object]], delta: Optional[Dict[str, object]]
    ) -> Optional[Dict[str, object]]:
        """Merge two artifact payloads without decoding entry bodies.

        ``base`` entries win on key conflicts, so the fold over any set of
        *disjoint* worker deltas is order-independent.  A ``None`` (or
        empty) side yields the other; mismatched format versions keep
        ``base`` (never mix layouts in one artifact).
        """
        if not base or not base.get("keys"):
            return delta
        if not delta or not delta.get("keys"):
            return base
        if base.get("format") != delta.get("format"):
            return base
        seen = {(int(row[0]), str(row[1])) for row in base["keys"]}
        entries = list(base["entries"])
        keys = [list(row) for row in base["keys"]]
        remap: Dict[int, int] = {}
        for position, digest_hex, index in delta["keys"]:
            if (int(position), str(digest_hex)) in seen:
                continue
            new_index = remap.get(int(index))
            if new_index is None:
                new_index = remap[int(index)] = len(entries)
                entries.append(delta["entries"][int(index)])
            keys.append([position, digest_hex, new_index])
        merged = dict(base)
        merged["entries"] = entries
        merged["keys"] = keys
        return merged


@dataclass
class BatchReplayResult:
    """Outcome of one fault of a batched submission.

    Exactly one of ``outcome`` / ``error`` is set; ``error`` carries the
    same exception type and message a sequential replay would raise.
    ``converged_at`` is the dynamic id at which the execution was proven
    bit-identical to golden (``None`` when it never was); ``via`` names the
    resolution path (``lockstep`` / ``completed`` / ``private`` / ``memo``
    / ``error``) for telemetry and tests.
    """

    spec: FaultSpec
    outcome: Optional["RunOutcome"] = None
    error: Optional[BaseException] = None
    converged_at: Optional[int] = None
    via: str = "lockstep"


class BatchedReplayContext(ReplayContext):
    """A :class:`ReplayContext` with an interval-grouped batch scheduler.

    :meth:`replay_many` turns per-fault replay into batch execution: the
    pending specs are grouped by snapshot interval, each batch restores its
    snapshot once and drives all of its faults through a single shared
    suffix walk with per-fault divergence state
    (:meth:`repro.vm.engine.Engine.resume_many`), divergent replays fork
    copy-on-write memory images for their window, and convergence
    memoization answers repeated divergent states without re-execution.

    The inherited single-fault :meth:`replay` is untouched — it remains the
    sequential parity oracle the batched path is asserted against.
    """

    def __init__(self, *args, memo_entries: int = 16384, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        #: Scheduler telemetry (cumulative over all ``replay_many`` calls).
        self.stats = ReplayBatchStats()
        self._memo = ReplayMemo(memo_entries) if self.detect_convergence else None
        self._golden_digest_cache: Optional[Dict[int, bytes]] = None

    @property
    def memo(self) -> Optional[ReplayMemo]:
        """The convergence memo (``None`` when convergence detection is off).

        Exposed for persistence: callers warm-start it from an artifact via
        :meth:`ReplayMemo.merge_payload` and ship learned entries onward via
        :meth:`ReplayMemo.consume_delta`.
        """
        return self._memo

    # ------------------------------------------------------------------ #
    def plan_batches(
        self, specs: Sequence[FaultSpec], presorted: bool = False
    ) -> List[ReplayBatch]:
        """Group ``specs`` by the snapshot interval their site falls in.

        This is the scheduler's one grouping implementation:
        :meth:`replay_many` calls it (with ``presorted=True`` on its
        already-ordered list) for the per-batch telemetry, and tests use it
        to introspect the snapshot each fault replays from.
        """
        ordered = (
            list(specs)
            if presorted
            else sorted(specs, key=lambda spec: spec.dynamic_id)
        )
        batches: List[ReplayBatch] = []
        current: List[FaultSpec] = []
        current_index = -1
        for spec in ordered:
            index = bisect_right(self._snapshot_positions, spec.dynamic_id) - 1
            if index < 0:
                raise ValueError(
                    f"no snapshot at or before dynamic id {spec.dynamic_id}"
                )
            if index != current_index:
                if current:
                    batches.append(ReplayBatch(
                        snapshot_index=current_index,
                        snapshot_dyn=self.snapshots[current_index].dyn,
                        specs=tuple(current),
                    ))
                current = []
                current_index = index
            current.append(spec)
        if current:
            batches.append(ReplayBatch(
                snapshot_index=current_index,
                snapshot_dyn=self.snapshots[current_index].dyn,
                specs=tuple(current),
            ))
        return batches

    def _golden_digests(self) -> Dict[int, bytes]:
        if self._golden_digest_cache is None:
            self._golden_digest_cache = {
                snap.dyn: snapshot_digest(snap) for snap in self.snapshots
            }
        return self._golden_digest_cache

    # ------------------------------------------------------------------ #
    def replay_many(self, specs: Sequence[FaultSpec]) -> List[BatchReplayResult]:
        """Execute every spec via the batch scheduler, in input order.

        Faults whose execution raises are returned with ``error`` set
        instead of raising, so one crashing fault does not abort the batch
        (callers classify crashes/hangs exactly as with sequential
        :meth:`replay`).
        """
        specs = list(specs)
        if not specs:
            return []
        order = sorted(range(len(specs)), key=lambda i: (specs[i].dynamic_id, i))
        ordered = [specs[i] for i in order]
        stats = self.stats
        stats_before = stats.to_dict()
        stats.batches += 1
        stats.groups += len(self.plan_batches(ordered, presorted=True))
        stats.faults += len(specs)
        self.replays += len(specs)
        engine = Engine(
            self.instance.module,
            self.instance.memory,
            max_steps=self.workload.max_steps,
        )
        digests = self._golden_digests() if self.detect_convergence else None
        resolutions = engine.resume_many(
            self.snapshots, ordered, golden_digests=digests, memo=self._memo
        )
        results: List[Optional[BatchReplayResult]] = [None] * len(specs)
        for position, resolution in zip(order, resolutions):
            results[position] = self._finish(resolution)
        reg = _metrics_registry()
        if reg.enabled:
            # mirror this call's ReplayBatchStats delta into the registry,
            # keeping the per-context dataclass as the canonical struct
            for key, value in stats.to_dict().items():
                delta = value - stats_before[key]
                if delta:
                    reg.inc(
                        "replay." + key, delta, workload=self.workload.name
                    )
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------ #
    def _finish(self, resolution) -> BatchReplayResult:
        """Translate an engine resolution into a :class:`BatchReplayResult`,
        updating counters and the convergence memo."""
        from repro.workloads.base import RunOutcome

        stats = self.stats
        spec = resolution.spec
        kind = resolution.kind
        memo = self._memo
        if resolution.private:
            stats.evicted += 1
            if memo is not None and kind != "memo":
                stats.memo_misses += 1
        else:
            stats.lockstep += 1

        if kind == "golden":
            stats.converged += 1
            self.converged_replays += 1
            if memo is not None and resolution.visited:
                stats.memo_evictions += memo.record(resolution.visited, _MemoEntry(
                    "golden", converged_at=resolution.converged_at,
                ))
            return BatchReplayResult(
                spec=spec,
                outcome=self.golden_outcome(),
                converged_at=resolution.converged_at,
                via="lockstep" if not resolution.private else "private",
            )
        if kind == "completed":
            outputs = {
                name: array.copy()
                for name, array in self.golden_outputs.items()
            }
            for name, index, value in resolution.cell_deltas:
                array = outputs.get(name)
                if array is not None:
                    array[index] = value
            return BatchReplayResult(
                spec=spec,
                outcome=RunOutcome(
                    outputs=outputs,
                    return_value=resolution.return_value,
                    steps=resolution.steps,
                    trace=None,
                ),
                via="completed",
            )
        if kind == "private":
            outputs = {
                name: resolution.memory.object(name).values()
                for name in self.workload.output_objects
            }
            if memo is not None and resolution.visited:
                stats.memo_evictions += memo.record(resolution.visited, _MemoEntry(
                    "outcome",
                    outputs={k: v.copy() for k, v in outputs.items()},
                    return_value=resolution.return_value,
                    steps=resolution.steps,
                ))
            return BatchReplayResult(
                spec=spec,
                outcome=RunOutcome(
                    outputs=outputs,
                    return_value=resolution.return_value,
                    steps=resolution.steps,
                    trace=None,
                ),
                via="private",
            )
        if kind == "memo":
            entry = resolution.memo_entry
            stats.memo_hits += 1
            if getattr(entry, "warm", False):
                stats.memo_persist_hits += 1
            if memo is not None and resolution.visited:
                stats.memo_evictions += memo.record(resolution.visited, entry)
            if entry.kind == "golden":
                stats.converged += 1
                self.converged_replays += 1
                return BatchReplayResult(
                    spec=spec,
                    outcome=self.golden_outcome(),
                    converged_at=entry.converged_at,
                    via="memo",
                )
            if entry.kind == "error":
                return BatchReplayResult(spec=spec, error=entry.error, via="memo")
            return BatchReplayResult(
                spec=spec,
                outcome=RunOutcome(
                    outputs={k: v.copy() for k, v in entry.outputs.items()},
                    return_value=entry.return_value,
                    steps=entry.steps,
                    trace=None,
                ),
                via="memo",
            )
        # kind == "error"
        if memo is not None and resolution.visited:
            stats.memo_evictions += memo.record(resolution.visited, _MemoEntry(
                "error", error=resolution.error,
            ))
        return BatchReplayResult(spec=spec, error=resolution.error, via="error")
