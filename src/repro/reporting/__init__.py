"""Text reporting: regenerate the paper's tables and figures as ASCII.

Public API
----------
:func:`~repro.reporting.tables.format_table`,
:func:`~repro.reporting.tables.table1_rows`,
:func:`~repro.reporting.tables.format_outcome_table`,
:func:`~repro.reporting.tables.format_advf_report_table`,
:func:`~repro.reporting.tables.format_campaign_list`,
:func:`~repro.reporting.tables.format_shard_table`,
:func:`~repro.reporting.tables.format_metrics_table`,
:func:`~repro.reporting.tables.format_timeline`,
:func:`~repro.reporting.tables.format_protection_plan_table`,
:func:`~repro.reporting.tables.format_validation_table`,
:func:`~repro.reporting.figures.stacked_bar_chart`,
:func:`~repro.reporting.figures.advf_level_breakdown_rows`,
:func:`~repro.reporting.figures.advf_category_breakdown_rows`.
"""

from repro.reporting.tables import (
    format_advf_report_table,
    format_campaign_list,
    format_metrics_table,
    format_outcome_table,
    format_protection_plan_table,
    format_shard_table,
    format_table,
    format_timeline,
    format_validation_table,
    table1_rows,
)
from repro.reporting.figures import (
    advf_category_breakdown_rows,
    advf_level_breakdown_rows,
    bar_chart,
    stacked_bar_chart,
)

__all__ = [
    "format_table",
    "table1_rows",
    "format_outcome_table",
    "format_advf_report_table",
    "format_campaign_list",
    "format_metrics_table",
    "format_protection_plan_table",
    "format_timeline",
    "format_shard_table",
    "format_validation_table",
    "advf_category_breakdown_rows",
    "advf_level_breakdown_rows",
    "bar_chart",
    "stacked_bar_chart",
]
