"""ASCII bar charts for the paper's figures (4, 5, 6, 7, 8, 9)."""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

from repro.core.advf import AdvfResult
from repro.core.masking import MaskingCategory, MaskingLevel

#: Order of stacking used by Fig. 4.
LEVEL_ORDER = [MaskingLevel.OPERATION, MaskingLevel.PROPAGATION, MaskingLevel.ALGORITHM]
#: Order of stacking used by Fig. 5 (algorithm-level masking excluded there).
CATEGORY_ORDER = [
    MaskingCategory.OVERWRITE,
    MaskingCategory.OVERSHADOW,
    MaskingCategory.LOGIC_COMPARE,
]

_LEVEL_GLYPH = {
    MaskingLevel.OPERATION: "O",
    MaskingLevel.PROPAGATION: "P",
    MaskingLevel.ALGORITHM: "A",
}
_CATEGORY_GLYPH = {
    MaskingCategory.OVERWRITE: "W",
    MaskingCategory.OVERSHADOW: "S",
    MaskingCategory.LOGIC_COMPARE: "L",
}


def bar_chart(values: Mapping[str, float], width: int = 50, maximum: float = 1.0) -> str:
    """Simple horizontal bar chart of label -> value (values in [0, maximum])."""
    label_width = max((len(label) for label in values), default=0)
    lines = []
    for label, value in values.items():
        filled = int(round(width * min(max(value, 0.0), maximum) / maximum))
        lines.append(f"{label.ljust(label_width)} |{'#' * filled}{' ' * (width - filled)}| {value:.3f}")
    return "\n".join(lines)


def stacked_bar_chart(
    rows: Sequence[Tuple[str, Mapping[str, float]]], width: int = 50, maximum: float = 1.0
) -> str:
    """Stacked horizontal bars: each row is (label, {segment label -> value}).

    Segments are drawn with the first letter of their label; the residual up
    to ``maximum`` is left blank.  Used to mirror the stacked columns of
    Figures 4, 5, 8 and 9.
    """
    label_width = max((len(label) for label, _ in rows), default=0)
    lines = []
    for label, segments in rows:
        bar = ""
        total = 0.0
        for segment_label, value in segments.items():
            glyph = segment_label[:1].upper() or "#"
            chars = int(round(width * min(max(value, 0.0), maximum) / maximum))
            bar += glyph * chars
            total += value
        bar = bar[:width].ljust(width)
        lines.append(f"{label.ljust(label_width)} |{bar}| {total:.3f}")
    return "\n".join(lines)


def advf_level_breakdown_rows(
    results: Mapping[str, AdvfResult]
) -> List[Tuple[str, Dict[str, float]]]:
    """Fig. 4 rows: per data object, aDVF split by analysis level."""
    rows: List[Tuple[str, Dict[str, float]]] = []
    for name, result in results.items():
        segments = {
            f"{_LEVEL_GLYPH[level]}:{level.value}": result.level_fraction(level)
            for level in LEVEL_ORDER
        }
        rows.append((name, segments))
    return rows


def advf_category_breakdown_rows(
    results: Mapping[str, AdvfResult]
) -> List[Tuple[str, Dict[str, float]]]:
    """Fig. 5 rows: per data object, operation/propagation-level aDVF by category."""
    rows: List[Tuple[str, Dict[str, float]]] = []
    for name, result in results.items():
        segments = {
            f"{_CATEGORY_GLYPH[category]}:{category.value}": result.category_fraction(category)
            for category in CATEGORY_ORDER
        }
        rows.append((name, segments))
    return rows
