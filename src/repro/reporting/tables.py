"""Plain-text tables (Table I, generic result tables, campaign views).

The campaign-facing formatters at the bottom render from the *persisted*
representation of results — plain outcome histograms and
``ObjectReport``-shaped dicts as returned by the campaign store — rather
than from live in-memory analysis objects, so ``python -m repro campaign
status|report`` can reconstruct every table from the SQLite file alone.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a fixed-width text table with a header rule.

    Cells are stringified; columns are sized to their widest entry.
    """
    rendered_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError("every row must have one cell per header")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines = [fmt(list(headers)), "-+-".join("-" * w for w in widths)]
    lines.extend(fmt(row) for row in rendered_rows)
    return "\n".join(lines)


def table1_rows() -> List[Dict[str, object]]:
    """Metadata rows of Table I (benchmarks, code segments, target objects)."""
    from repro.workloads.registry import TABLE1_ROWS, get_workload

    return [get_workload(name).describe() for name in TABLE1_ROWS]


def format_table1() -> str:
    """Table I rendered as text."""
    rows = table1_rows()
    return format_table(
        ["Name", "Benchmark description", "Code segment", "Target data objects"],
        [
            [
                str(row["name"]).upper(),
                row["description"],
                row["code_segment"],
                ", ".join(row["target_objects"]),
            ]
            for row in rows
        ],
    )


# --------------------------------------------------------------------- #
# campaign-store views
# --------------------------------------------------------------------- #
#: Column order for outcome-class histograms (matches OutcomeClass values).
OUTCOME_COLUMNS: Tuple[str, ...] = (
    "identical",
    "acceptable",
    "unacceptable",
    "crash",
    "hang",
)

#: Outcome classes counted as masked/successful by campaigns.
_SUCCESS_OUTCOMES = frozenset({"identical", "acceptable"})


def format_outcome_table(
    histograms: Dict[str, Dict[str, int]], z: float = 1.96
) -> str:
    """Per-object outcome histogram with a Wilson CI on the masking rate.

    ``histograms`` maps object name to ``{outcome_class_value: count}`` —
    exactly what :meth:`repro.campaigns.store.CampaignStore.outcome_histograms`
    returns.
    """
    from repro.campaigns.stats import wilson_interval

    rows = []
    for object_name in sorted(histograms):
        hist = histograms[object_name]
        trials = sum(hist.values())
        successes = sum(
            count for outcome, count in hist.items() if outcome in _SUCCESS_OUTCOMES
        )
        low, high = wilson_interval(successes, trials, z)
        rate = successes / trials if trials else 0.0
        rows.append(
            [object_name, trials]
            + [hist.get(column, 0) for column in OUTCOME_COLUMNS]
            + [f"{rate:.3f}", f"[{low:.3f}, {high:.3f}]"]
        )
    return format_table(
        ["object", "tests", *OUTCOME_COLUMNS, "masked", "wilson CI"], rows
    )


def format_advf_report_table(reports: Dict[str, Dict[str, object]]) -> str:
    """aDVF summary table from persisted ``ObjectReport.to_dict()`` payloads.

    Objects are ordered from most to least resilient (highest aDVF first),
    reproducing the ranking view of the paper's evaluation.
    """
    def advf_of(payload: Dict[str, object]) -> float:
        return float(payload["result"]["value"])  # type: ignore[index]

    rows = []
    for object_name in sorted(reports, key=lambda n: advf_of(reports[n]), reverse=True):
        payload = reports[object_name]
        result = payload["result"]
        rows.append(
            [
                object_name,
                f"{float(result['value']):.4f}",  # type: ignore[index]
                result["participations"],  # type: ignore[index]
                payload.get("injections", 0),
                payload.get("propagation_checks", 0),
                payload.get("unresolved", 0),
            ]
        )
    return format_table(
        ["object", "aDVF", "participations", "injections", "propagation", "unresolved"],
        rows,
    )


def format_shard_table(
    rows: Sequence[Dict[str, object]], limit: Optional[int] = None
) -> str:
    """Per-shard execution view for ``python -m repro campaign status``.

    Each row is a flat dict with ``shard``, ``object``, ``batch``, ``run``,
    ``specs``, ``inject_s`` and ``analysis_s`` keys (assembled by the CLI
    from the store's shard records).  ``analysis_s`` is the time the
    analysis passes — participation discovery and fault-site enumeration
    over the cached columnar trace — spent on the shard's data object;
    ``inject_s`` is the shard's injection wall-clock.

    Optional replay-batch keys (``rbatches``, ``memo_hits``,
    ``memo_misses`` — schema v4) add the batched-replay scheduler view:
    lockstep walks (= snapshot restores) per shard, the resulting
    faults-per-restore amortization, and the convergence-memo hit rate
    among divergent replays.  Optional speculation keys (``speculated``,
    ``spec_discards``, ``spec_windows`` — schema v6) add the aDVF
    speculative-injection view: pattern resolutions predicted ahead of
    their budget decisions, the fraction of those predictions that were
    discarded, and the number of speculation windows flushed.  Shards
    recorded before batching/speculation (or by workers without them)
    render ``-`` in those columns.
    """
    rendered = []
    for row in (rows if limit is None else rows[-limit:]):
        specs = int(row["specs"])  # type: ignore[arg-type]
        inject_s = float(row["inject_s"])  # type: ignore[arg-type]
        batches = int(row.get("rbatches", 0))  # type: ignore[arg-type]
        memo_hits = int(row.get("memo_hits", 0))  # type: ignore[arg-type]
        memo_probes = memo_hits + int(row.get("memo_misses", 0))  # type: ignore[arg-type]
        speculated = int(row.get("speculated", 0))  # type: ignore[arg-type]
        spec_discards = int(row.get("spec_discards", 0))  # type: ignore[arg-type]
        spec_windows = int(row.get("spec_windows", 0))  # type: ignore[arg-type]
        rendered.append(
            [
                row["shard"],
                row["object"],
                row["batch"],
                row["run"],
                specs,
                f"{inject_s:.2f}",
                f"{float(row['analysis_s']):.3f}",  # type: ignore[arg-type]
                f"{specs / inject_s:.0f}" if inject_s > 0 else "-",
                batches if batches else "-",
                f"{specs / batches:.1f}" if batches else "-",
                f"{memo_hits / memo_probes:.2f}" if memo_probes else "-",
                speculated if speculated else "-",
                f"{spec_discards / speculated:.2f}" if speculated else "-",
                spec_windows if spec_windows else "-",
            ]
        )
    return format_table(
        ["shard", "object", "batch", "run", "specs", "inject s", "analysis s",
         "specs/s", "rbatch", "faults/restore", "memo hit", "specul",
         "discard", "windows"],
        rendered,
    )


def format_metrics_table(snapshot: Dict[str, object]) -> str:
    """Render a metrics snapshot (registry ``to_dict`` shape) as one table.

    ``snapshot`` is a :meth:`repro.obs.metrics.MetricsRegistry.to_dict`
    payload — live, or read back from the store's ``run_metrics`` rows —
    so ``python -m repro stats`` renders entirely from persisted data.
    Counters and gauges show their value; histograms show their
    observation count and mean (seconds for ``*_seconds`` series).
    """

    def labels_str(labels: Dict[str, object]) -> str:
        return ",".join(f"{k}={v}" for k, v in sorted(labels.items())) or "-"

    def num(value: object) -> str:
        number = float(value)  # type: ignore[arg-type]
        if number == int(number) and abs(number) < 1e15:
            return str(int(number))
        return f"{number:.4g}"

    rows = []
    for entry in snapshot.get("counters", ()):  # type: ignore[union-attr]
        rows.append(
            [entry["name"], labels_str(entry["labels"]), "counter",
             num(entry["value"]), "-"]
        )
    for entry in snapshot.get("gauges", ()):  # type: ignore[union-attr]
        rows.append(
            [entry["name"], labels_str(entry["labels"]), "gauge",
             num(entry["value"]), "-"]
        )
    for entry in snapshot.get("histograms", ()):  # type: ignore[union-attr]
        count = int(entry["count"])
        mean = float(entry["sum"]) / count if count else 0.0
        rows.append(
            [entry["name"], labels_str(entry["labels"]), "histogram",
             num(count), f"{mean:.4f}"]
        )
    return format_table(["metric", "labels", "kind", "value", "mean"], rows)


def format_protection_plan_table(plan: Dict[str, object]) -> str:
    """Render a persisted protection plan (``ProtectionPlan.to_dict`` shape).

    One row per selected object plus its predicted overhead share; the
    trailing summary line states total predicted overhead against the
    budget and any objects left unprotected.
    """
    base_ops = int(plan["base_ops"]) or 1  # type: ignore[arg-type]
    rows = []
    for selection in plan["selections"]:  # type: ignore[union-attr]
        extra = int(selection["predicted_extra_ops"])  # type: ignore[index]
        rows.append(
            [
                selection["object_name"],  # type: ignore[index]
                selection["scheme"],  # type: ignore[index]
                f"{float(selection['advf']):.4f}",  # type: ignore[index]
                f"{float(selection['vulnerability']):.1f}",  # type: ignore[index]
                f"{float(selection['predicted_reduction']):.1f}",  # type: ignore[index]
                extra,
                f"{extra / base_ops:.2f}x",
            ]
        )
    table = format_table(
        ["object", "scheme", "aDVF", "unmasked mass", "predicted reduction",
         "extra ops", "overhead"],
        rows,
    )
    summary = (
        f"predicted total: {int(plan['predicted_extra_ops'])} extra ops "  # type: ignore[arg-type]
        f"({int(plan['predicted_extra_ops']) / base_ops:.2f}x of "  # type: ignore[arg-type]
        f"{base_ops} base) under budget {float(plan['budget']):g}x"  # type: ignore[arg-type]
    )
    unprotected = list(plan.get("unprotected", []))  # type: ignore[arg-type]
    if unprotected:
        summary += f"; unprotected: {', '.join(str(n) for n in unprotected)}"
    return table + "\n" + summary


def format_validation_table(rows: Sequence[Dict[str, object]]) -> str:
    """Residual-vulnerability table from persisted ``validation_runs`` rows.

    Each input row is a flat dict with ``object``, ``scheme``, ``variant``,
    ``tests``, ``successes`` keys (store record shape).  Baseline and
    protected measurements of one object are folded into a single output
    row with the masked-fraction delta the closed loop is judged by.
    """
    by_object: Dict[str, Dict[str, Dict[str, object]]] = {}
    for row in rows:
        by_object.setdefault(str(row["object"]), {})[str(row["variant"])] = row

    def fraction(row: Optional[Dict[str, object]]) -> Optional[float]:
        if row is None or not int(row["tests"]):  # type: ignore[arg-type]
            return None
        return int(row["successes"]) / int(row["tests"])  # type: ignore[arg-type]

    rendered = []
    for object_name in sorted(by_object):
        pair = by_object[object_name]
        baseline, protected = pair.get("baseline"), pair.get("protected")
        base_f, prot_f = fraction(baseline), fraction(protected)
        source = protected or baseline or {}
        rendered.append(
            [
                object_name,
                source.get("scheme", ""),
                baseline["tests"] if baseline else "-",
                f"{base_f:.3f}" if base_f is not None else "-",
                protected["tests"] if protected else "-",
                f"{prot_f:.3f}" if prot_f is not None else "-",
                (
                    f"{prot_f - base_f:+.3f}"
                    if base_f is not None and prot_f is not None
                    else "-"
                ),
            ]
        )
    return format_table(
        ["object", "scheme", "base tests", "base masked", "prot tests",
         "prot masked", "delta"],
        rendered,
    )


def format_timeline(
    records: Sequence[Dict[str, object]],
    width: int = 40,
    limit: Optional[int] = None,
) -> str:
    """Per-shard phase waterfall for ``python -m repro timeline``.

    Each record is a flat dict in the store's ``run_spans`` shape —
    ``run_id``, ``name``, ``pid``, ``shard_index``, ``start_ts``,
    ``duration_s`` and a ``labels`` dict — exactly what
    :meth:`repro.campaigns.store.CampaignStore.run_spans` rows decode to,
    so the waterfall renders entirely from persisted data.

    One section per orchestrator run.  Rows are ordered by wall-clock
    start; the trailing bar column draws each span's ``[start, end)``
    against the run's wall-clock extent, which makes concurrency overlap
    (worker pids injecting in parallel) directly visible.  Spans that
    belong to no shard (``shard_index`` -1: trace acquisition, analysis
    passes, the run span itself) render ``-`` in the shard column.  The
    per-run summary line reports wall-clock, distinct recording pids, the
    peak number of simultaneously-active pids and the aggregate
    busy-time/wall-clock parallelism factor.
    """
    if not records:
        return "no spans recorded"
    by_run: Dict[int, List[Dict[str, object]]] = {}
    for record in records:
        by_run.setdefault(int(record.get("run_id", 0)), []).append(record)

    sections = []
    for run_id in sorted(by_run):
        spans = sorted(
            by_run[run_id],
            key=lambda r: (float(r["start_ts"]), int(r.get("depth", 0))),
        )
        t0 = min(float(r["start_ts"]) for r in spans)
        wall = max(
            float(r["start_ts"]) + float(r["duration_s"]) for r in spans
        ) - t0
        rows = []
        for record in spans if limit is None else spans[:limit]:
            start = float(record["start_ts"]) - t0
            duration = float(record["duration_s"])
            shard = int(record.get("shard_index", -1))
            labels = record.get("labels") or {}
            rows.append(
                [
                    str(record["name"]),
                    shard if shard >= 0 else "-",
                    labels.get("object", "-") if isinstance(labels, dict) else "-",
                    record.get("pid", "-"),
                    f"{start:.3f}",
                    f"{duration:.3f}",
                    _waterfall_bar(start, duration, wall, width),
                ]
            )
        table = format_table(
            ["phase", "shard", "object", "pid", "start s", "dur s", "timeline"],
            rows,
        )
        shown = len(rows)
        summary = _timeline_summary(spans, t0, wall)
        header = f"run {run_id}: {len(spans)} spans"
        if shown < len(spans):
            header += f" (showing first {shown})"
        sections.append(f"{header}\n{table}\n{summary}")
    return "\n\n".join(sections)


def _waterfall_bar(start: float, duration: float, wall: float, width: int) -> str:
    if wall <= 0 or width <= 0:
        return "|" + "#" * max(1, width) + "|"
    begin = min(width - 1, int(start / wall * width))
    length = max(1, int(round(duration / wall * width)))
    length = min(length, width - begin)
    return "|" + " " * begin + "#" * length + " " * (width - begin - length) + "|"


def _timeline_summary(
    spans: Sequence[Dict[str, object]], t0: float, wall: float
) -> str:
    # merge each pid's span intervals, then sweep all pids' merged
    # intervals: peak = max simultaneously-busy pids (process concurrency),
    # parallelism = total busy time / wall-clock
    by_pid: Dict[object, List[Tuple[float, float]]] = {}
    for record in spans:
        start = float(record["start_ts"]) - t0
        by_pid.setdefault(record.get("pid", 0), []).append(
            (start, start + float(record["duration_s"]))
        )
    busy_total = 0.0
    events: List[Tuple[float, int]] = []
    for intervals in by_pid.values():
        intervals.sort()
        merged: List[Tuple[float, float]] = []
        for begin, end in intervals:
            if merged and begin <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], end))
            else:
                merged.append((begin, end))
        for begin, end in merged:
            busy_total += end - begin
            events.append((begin, 1))
            events.append((end, -1))
    events.sort()
    peak = active = 0
    for _, delta in events:
        active += delta
        peak = max(peak, active)
    parallelism = busy_total / wall if wall > 0 else 0.0
    return (
        f"wall {wall:.3f}s, {len(by_pid)} pids, peak concurrency {peak}, "
        f"parallelism {parallelism:.2f}x"
    )


def format_campaign_list(
    rows: Sequence[Dict[str, object]], limit: Optional[int] = None
) -> str:
    """Campaign overview table for ``python -m repro campaign status``.

    Each row is a flat dict with ``campaign_id``, ``workload``, ``plan``,
    ``status``, ``shards``, ``injections`` keys (assembled by the CLI from
    store records).
    """
    rendered = [
        [
            row["campaign_id"],
            row["workload"],
            row["plan"],
            row["status"],
            row["shards"],
            row["injections"],
        ]
        for row in (rows if limit is None else rows[:limit])
    ]
    return format_table(
        ["campaign", "workload", "plan", "status", "shards", "injections"], rendered
    )
