"""Plain-text tables (Table I and generic result tables)."""

from __future__ import annotations

from typing import Dict, List, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a fixed-width text table with a header rule.

    Cells are stringified; columns are sized to their widest entry.
    """
    rendered_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError("every row must have one cell per header")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines = [fmt(list(headers)), "-+-".join("-" * w for w in widths)]
    lines.extend(fmt(row) for row in rendered_rows)
    return "\n".join(lines)


def table1_rows() -> List[Dict[str, object]]:
    """Metadata rows of Table I (benchmarks, code segments, target objects)."""
    from repro.workloads.registry import TABLE1_ROWS, get_workload

    return [get_workload(name).describe() for name in TABLE1_ROWS]


def format_table1() -> str:
    """Table I rendered as text."""
    rows = table1_rows()
    return format_table(
        ["Name", "Benchmark description", "Code segment", "Target data objects"],
        [
            [
                str(row["name"]).upper(),
                row["description"],
                row["code_segment"],
                ", ".join(row["target_objects"]),
            ]
            for row in rows
        ],
    )
