"""Workload abstraction: kernels + data objects + acceptance criterion.

A :class:`Workload` knows how to build a *fresh, deterministic* instance of
itself — same kernels, same initial data-object contents — every time it is
asked.  Fault-injection campaigns rely on this: the golden run and every
faulty run must start from identical state, so each run gets its own
:class:`WorkloadInstance` (its own :class:`~repro.vm.memory.Memory`).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.acceptance import AcceptanceCriterion, RelativeTolerance
from repro.frontend.compiler import compile_kernels
from repro.ir.function import Module
from repro.tracing.columnar import ColumnarTrace
from repro.tracing.sinks import TraceSink
from repro.tracing.trace import Trace
from repro.vm.engine import Engine
from repro.vm.faults import FaultSpec
from repro.vm.interpreter import Interpreter
from repro.vm.memory import DataObject, Memory

Number = Union[int, float]


@dataclass
class RunOutcome:
    """Successful (non-crashing) execution of a workload instance."""

    outputs: Dict[str, np.ndarray]
    return_value: Optional[Number]
    steps: int
    #: The sink the run was recorded into (a full :class:`Trace`, a columnar
    #: or counting sink, or ``None`` for sink-free executions).
    trace: Optional[TraceSink] = None


class WorkloadInstance:
    """One concrete, runnable instantiation of a workload."""

    def __init__(
        self,
        workload: "Workload",
        module: Module,
        memory: Memory,
        args: Dict[str, object],
    ) -> None:
        self.workload = workload
        self.module = module
        self.memory = memory
        self.args = args

    def data_object(self, name: str) -> DataObject:
        """The named data object of this instance."""
        return self.memory.object(name)

    def run(
        self,
        trace: Optional[TraceSink] = None,
        fault: Optional[FaultSpec] = None,
        max_steps: Optional[int] = None,
        executor: str = "engine",
        backend: Optional[str] = None,
    ) -> RunOutcome:
        """Execute the workload's entry kernel.

        ``trace`` accepts any :class:`~repro.tracing.sinks.TraceSink` (the
        full :class:`~repro.tracing.trace.Trace`, a columnar sink, a
        counting sink) or ``None`` for a sink-free run.  ``executor``
        selects the pre-decoded :class:`~repro.vm.engine.Engine` (default)
        or the tree-walking ``"interpreter"`` — both produce bit-identical
        results; the interpreter is kept as the reference oracle.
        ``backend`` picks the engine's dispatch strategy (``"block"`` /
        ``"op"``, default ``REPRO_ENGINE_BACKEND``); the interpreter
        ignores it.

        Raises the VM error types on crashes/hangs; callers performing fault
        injection catch them and classify the outcome.
        """
        if executor == "engine":
            runner = Engine(
                self.module,
                self.memory,
                sink=trace,
                fault=fault,
                max_steps=max_steps or self.workload.max_steps,
                backend=backend,
            )
        elif executor == "interpreter":
            runner = Interpreter(
                self.module,
                self.memory,
                trace=trace,
                fault=fault,
                max_steps=max_steps or self.workload.max_steps,
            )
        else:
            raise ValueError(f"unknown executor {executor!r}")
        result = runner.run(self.workload.entry, self.args)
        outputs = {
            name: self.memory.object(name).values()
            for name in self.workload.output_objects
        }
        return RunOutcome(
            outputs=outputs,
            return_value=result.return_value,
            steps=result.steps,
            trace=trace,
        )


class Workload(ABC):
    """Base class for every benchmark / application in the study.

    Subclasses define class-level metadata (:attr:`name`,
    :attr:`description`, :attr:`code_segment`, :attr:`target_objects`,
    :attr:`output_objects`, :attr:`entry`) and implement :meth:`kernels` and
    :meth:`setup`.
    """

    #: Short identifier used by the registry and the reports ("cg", "lu" …).
    name: str = "abstract"
    #: One-line description (Table I column 2).
    description: str = ""
    #: Code segment under study (Table I column 3).
    code_segment: str = ""
    #: Target data objects (Table I column 4).
    target_objects: Sequence[str] = ()
    #: Data objects whose final contents constitute the application outcome.
    output_objects: Sequence[str] = ()
    #: Name of the entry kernel.
    entry: str = "main"
    #: Dynamic-instruction budget for one execution (hang detection).
    max_steps: int = 2_000_000
    #: Whether the entry kernel's scalar return value is part of the outcome
    #: (set False when the return value is bookkeeping, e.g. a correction count).
    check_return_value: bool = True

    def __init__(self, seed: int = 1234) -> None:
        self.seed = seed
        self._module: Optional[Module] = None

    # ------------------------------------------------------------------ #
    # pieces supplied by subclasses
    # ------------------------------------------------------------------ #
    @abstractmethod
    def kernels(self) -> Sequence[Callable]:
        """Kernel functions (callees first, entry kernel included)."""

    @abstractmethod
    def setup(self, memory: Memory) -> Dict[str, object]:
        """Allocate and initialise data objects; return the entry arguments."""

    @property
    def acceptance(self) -> AcceptanceCriterion:
        """Acceptance criterion (override for solver-style fidelity)."""
        return RelativeTolerance(rtol=1e-6, atol=1e-9)

    # ------------------------------------------------------------------ #
    # shared machinery
    # ------------------------------------------------------------------ #
    def module(self) -> Module:
        """Compile (and cache) the workload's kernels."""
        if self._module is None:
            self._module = compile_kernels(list(self.kernels()), module_name=self.name)
        return self._module

    def rng(self) -> np.random.Generator:
        """Deterministic RNG for data-object initialisation."""
        return np.random.default_rng(self.seed)

    def fresh_instance(self) -> WorkloadInstance:
        """A new instance with freshly initialised memory."""
        memory = Memory()
        args = self.setup(memory)
        return WorkloadInstance(self, self.module(), memory, args)

    # convenience wrappers -------------------------------------------------
    def golden_run(
        self, with_trace: bool = False, sink: Optional[TraceSink] = None
    ) -> RunOutcome:
        """Fault-free execution (optionally traced, into any sink)."""
        instance = self.fresh_instance()
        trace = sink if sink is not None else (Trace() if with_trace else None)
        return instance.run(trace=trace)

    def traced_run(self, columnar: bool = False) -> RunOutcome:
        """Fault-free execution with a dynamic trace attached.

        ``columnar=True`` records into a
        :class:`~repro.tracing.columnar.ColumnarTrace` — the compact,
        array-backed store the vectorized aDVF passes consume — instead of
        the classic in-memory :class:`~repro.tracing.trace.Trace`.
        """
        return self.golden_run(sink=ColumnarTrace() if columnar else Trace())

    def describe(self) -> Dict[str, object]:
        """Metadata row used to regenerate Table I."""
        return {
            "name": self.name,
            "description": self.description,
            "code_segment": self.code_segment,
            "target_objects": list(self.target_objects),
            "output_objects": list(self.output_objects),
            "acceptance": self.acceptance.describe(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Workload {self.name}>"
