"""Registry of the workloads studied in the paper (Table I plus §VI).

``WORKLOADS`` maps short names to factory callables; :func:`get_workload`
instantiates one with optional keyword overrides (problem size, seed, ABFT
variant).  ``TABLE1_ROWS`` lists the benchmark rows in the order of Table I
so the reporting layer can regenerate it.
"""

from __future__ import annotations

import difflib
from typing import Callable, Dict, List

from repro.workloads.amg import AMGWorkload
from repro.workloads.base import Workload
from repro.workloads.bt import BTWorkload
from repro.workloads.cg import CGWorkload
from repro.workloads.ft import FTWorkload
from repro.workloads.lu import LUWorkload
from repro.workloads.lulesh import LuleshWorkload
from repro.workloads.matmul import MatmulWorkload
from repro.workloads.mg import MGWorkload
from repro.workloads.particle_filter import ParticleFilterWorkload
from repro.workloads.sp import SPWorkload

#: name -> factory
WORKLOADS: Dict[str, Callable[..., Workload]] = {
    "cg": CGWorkload,
    "mg": MGWorkload,
    "ft": FTWorkload,
    "bt": BTWorkload,
    "sp": SPWorkload,
    "lu": LUWorkload,
    "lulesh": LuleshWorkload,
    "amg": AMGWorkload,
    "matmul": lambda **kw: MatmulWorkload(abft=False, **kw),
    "matmul_abft": lambda **kw: MatmulWorkload(abft=True, **kw),
    "pf": lambda **kw: ParticleFilterWorkload(abft=False, **kw),
    "pf_abft": lambda **kw: ParticleFilterWorkload(abft=True, **kw),
}

#: The eight benchmarks of Table I, in row order.
TABLE1_ROWS: List[str] = ["cg", "mg", "ft", "bt", "sp", "lu", "lulesh", "amg"]

#: Reserved name for protected-plan variants: ``get_workload("protected",
#: plan=<ProtectionPlan.to_dict() payload>)`` applies the plan and returns
#: the protected workload.  This makes protected variants addressable by
#: ``(name, kwargs)`` exactly like registry workloads, so the parallel
#: campaign runner and the orchestrator can rebuild them in worker
#: processes and content-address their campaigns.
PROTECTED_WORKLOAD = "protected"


def workload_names() -> List[str]:
    """All registered workload names."""
    return sorted(WORKLOADS)


def validate_workload(name: str) -> str:
    """Check ``name`` against the registry; raise a helpful error otherwise.

    Used by the campaign CLI and orchestrator to fail fast (with
    did-you-mean suggestions) before any golden run or store row is
    created.
    """
    if name in WORKLOADS or name == PROTECTED_WORKLOAD:
        return name
    suggestions = difflib.get_close_matches(name, workload_names(), n=3)
    hint = f" (did you mean {', '.join(suggestions)}?)" if suggestions else ""
    raise KeyError(
        f"unknown workload {name!r}{hint}; available: {', '.join(workload_names())}"
    )


def workload_summaries() -> List[Dict[str, object]]:
    """Metadata row per registered workload (for ``python -m repro workloads``).

    The ``name`` column is the registry key (what the CLI accepts), which
    for aliased factories can differ from the instance's own name.
    """
    rows = []
    for name in workload_names():
        row = get_workload(name).describe()
        row["name"] = name
        rows.append(row)
    return rows


def get_workload(name: str, **kwargs) -> Workload:
    """Instantiate a registered workload by name.

    Keyword arguments are forwarded to the workload constructor (problem
    sizes, ``seed``, …).  The reserved name ``"protected"`` takes a
    ``plan=`` keyword (a persisted ``ProtectionPlan.to_dict()`` payload)
    and returns the plan's applied variant.
    """
    if name == PROTECTED_WORKLOAD:
        payload = kwargs.pop("plan", None)
        if payload is None or kwargs:
            raise TypeError(
                "the 'protected' workload takes exactly one keyword: "
                "plan=<ProtectionPlan.to_dict() payload>"
            )
        # deferred import: the protection package builds on workloads
        from repro.protection.advisor import ProtectionPlan
        from repro.protection.apply import apply_plan

        return apply_plan(ProtectionPlan.from_dict(dict(payload)))
    return WORKLOADS[validate_workload(name)](**kwargs)
