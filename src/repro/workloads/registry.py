"""Registry of the workloads studied in the paper (Table I plus §VI).

``WORKLOADS`` maps short names to factory callables; :func:`get_workload`
instantiates one with optional keyword overrides (problem size, seed, ABFT
variant).  ``TABLE1_ROWS`` lists the benchmark rows in the order of Table I
so the reporting layer can regenerate it.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.workloads.amg import AMGWorkload
from repro.workloads.base import Workload
from repro.workloads.bt import BTWorkload
from repro.workloads.cg import CGWorkload
from repro.workloads.ft import FTWorkload
from repro.workloads.lu import LUWorkload
from repro.workloads.lulesh import LuleshWorkload
from repro.workloads.matmul import MatmulWorkload
from repro.workloads.mg import MGWorkload
from repro.workloads.particle_filter import ParticleFilterWorkload
from repro.workloads.sp import SPWorkload

#: name -> factory
WORKLOADS: Dict[str, Callable[..., Workload]] = {
    "cg": CGWorkload,
    "mg": MGWorkload,
    "ft": FTWorkload,
    "bt": BTWorkload,
    "sp": SPWorkload,
    "lu": LUWorkload,
    "lulesh": LuleshWorkload,
    "amg": AMGWorkload,
    "matmul": lambda **kw: MatmulWorkload(abft=False, **kw),
    "matmul_abft": lambda **kw: MatmulWorkload(abft=True, **kw),
    "pf": lambda **kw: ParticleFilterWorkload(abft=False, **kw),
    "pf_abft": lambda **kw: ParticleFilterWorkload(abft=True, **kw),
}

#: The eight benchmarks of Table I, in row order.
TABLE1_ROWS: List[str] = ["cg", "mg", "ft", "bt", "sp", "lu", "lulesh", "amg"]


def workload_names() -> List[str]:
    """All registered workload names."""
    return sorted(WORKLOADS)


def get_workload(name: str, **kwargs) -> Workload:
    """Instantiate a registered workload by name.

    Keyword arguments are forwarded to the workload constructor (problem
    sizes, ``seed``, …).
    """
    try:
        factory = WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {', '.join(workload_names())}"
        ) from None
    return factory(**kwargs)
