"""SP: scalar penta-diagonal line solves with a reciprocal-density field.

Target data objects ``grid_points`` (integer problem-definition array, as in
BT) and ``rhoi`` (the reciprocal-density double-precision field the real SP
pre-computes and consumes inside ``x_solve``).  The kernel performs
penta-diagonal (5-band) forward elimination and back substitution per (k, j)
line, with coefficients that depend on ``rhoi``.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence

import numpy as np

from repro.core.acceptance import AcceptanceCriterion, NormRelativeTolerance
from repro.ir.types import F64, I64
from repro.vm.memory import Memory
from repro.workloads.base import Workload


# --------------------------------------------------------------------- #
# kernel
# --------------------------------------------------------------------- #
def sp_x_solve(
    grid_points: "i64*",
    rhs: "double*",
    rhoi: "double*",
    lhs: "double*",
) -> "void":
    """Penta-diagonal scalar line solves along x (forward + back sweep)."""
    nx = grid_points[0]
    ny = grid_points[1]
    nz = grid_points[2]
    for k in range(nz):
        for j in range(ny):
            base = (k * ny + j) * nx
            # build the 5 bands: lhs[i*5 + d], d = 0..4 (two sub, diag, two super)
            for i in range(nx):
                r = rhoi[base + i]
                lhs[i * 5 + 0] = -0.05 * r
                lhs[i * 5 + 1] = -1.0 - 0.1 * r
                lhs[i * 5 + 2] = 4.0 + r
                lhs[i * 5 + 3] = -1.0 - 0.1 * r
                lhs[i * 5 + 4] = -0.05 * r
            # forward elimination (eliminate the two sub-diagonals)
            for i in range(nx - 2):
                pivot = 1.0 / lhs[i * 5 + 2]
                f1 = lhs[(i + 1) * 5 + 1] * pivot
                lhs[(i + 1) * 5 + 2] = lhs[(i + 1) * 5 + 2] - f1 * lhs[i * 5 + 3]
                lhs[(i + 1) * 5 + 3] = lhs[(i + 1) * 5 + 3] - f1 * lhs[i * 5 + 4]
                rhs[base + i + 1] = rhs[base + i + 1] - f1 * rhs[base + i]
                f2 = lhs[(i + 2) * 5 + 0] * pivot
                lhs[(i + 2) * 5 + 1] = lhs[(i + 2) * 5 + 1] - f2 * lhs[i * 5 + 3]
                lhs[(i + 2) * 5 + 2] = lhs[(i + 2) * 5 + 2] - f2 * lhs[i * 5 + 4]
                rhs[base + i + 2] = rhs[base + i + 2] - f2 * rhs[base + i]
            # last pair
            if nx >= 2:
                pivot = 1.0 / lhs[(nx - 2) * 5 + 2]
                f1 = lhs[(nx - 1) * 5 + 1] * pivot
                lhs[(nx - 1) * 5 + 2] = lhs[(nx - 1) * 5 + 2] - f1 * lhs[(nx - 2) * 5 + 3]
                rhs[base + nx - 1] = rhs[base + nx - 1] - f1 * rhs[base + nx - 2]
            # back substitution
            rhs[base + nx - 1] = rhs[base + nx - 1] / lhs[(nx - 1) * 5 + 2]
            if nx >= 2:
                rhs[base + nx - 2] = (
                    rhs[base + nx - 2] - lhs[(nx - 2) * 5 + 3] * rhs[base + nx - 1]
                ) / lhs[(nx - 2) * 5 + 2]
            for i in range(nx - 3, -1, -1):
                rhs[base + i] = (
                    rhs[base + i]
                    - lhs[i * 5 + 3] * rhs[base + i + 1]
                    - lhs[i * 5 + 4] * rhs[base + i + 2]
                ) / lhs[i * 5 + 2]


# --------------------------------------------------------------------- #
# reference implementation
# --------------------------------------------------------------------- #
def reference_sp_x_solve(rhs: np.ndarray, rhoi: np.ndarray, nx: int, ny: int, nz: int) -> np.ndarray:
    """NumPy mirror of :func:`sp_x_solve` (dense solve per line)."""
    rhs = rhs.copy()
    for k in range(nz):
        for j in range(ny):
            base = (k * ny + j) * nx
            r = rhoi[base : base + nx]
            matrix = np.zeros((nx, nx))
            for i in range(nx):
                matrix[i, i] = 4.0 + r[i]
                if i - 1 >= 0:
                    matrix[i, i - 1] = -1.0 - 0.1 * r[i]
                if i - 2 >= 0:
                    matrix[i, i - 2] = -0.05 * r[i]
                if i + 1 < nx:
                    matrix[i, i + 1] = -1.0 - 0.1 * r[i]
                if i + 2 < nx:
                    matrix[i, i + 2] = -0.05 * r[i]
            rhs[base : base + nx] = np.linalg.solve(matrix, rhs[base : base + nx])
    return rhs


class SPWorkload(Workload):
    """NPB SP (scalar penta-diagonal solver), x_solve code segment (Table I row 5)."""

    name = "sp"
    description = "Scalar penta-diagonal solver: banded line solves along x"
    code_segment = "the routine x_solve in the main loop"
    target_objects = ("grid_points", "rhoi")
    output_objects = ("rhs",)
    entry = "sp_x_solve"

    def __init__(self, nx: int = 6, ny: int = 2, nz: int = 2, seed: int = 1234) -> None:
        super().__init__(seed=seed)
        if nx < 4:
            raise ValueError("SP needs nx >= 4 for the penta-diagonal sweeps")
        self.nx, self.ny, self.nz = nx, ny, nz

    @property
    def acceptance(self) -> AcceptanceCriterion:
        return NormRelativeTolerance(1e-4)

    def kernels(self) -> Sequence[Callable]:
        return (sp_x_solve,)

    def setup(self, memory: Memory) -> Dict[str, object]:
        rng = self.rng()
        size = self.nx * self.ny * self.nz
        rhs0 = rng.standard_normal(size)
        rhoi0 = 1.0 / (1.0 + rng.random(size))
        grid_points = memory.allocate(
            "grid_points", I64, 3, initial=[self.nx, self.ny, self.nz]
        )
        rhs = memory.allocate("rhs", F64, size, initial=rhs0)
        rhoi = memory.allocate("rhoi", F64, size, initial=rhoi0)
        lhs = memory.allocate("lhs", F64, self.nx * 5)
        return {"grid_points": grid_points, "rhs": rhs, "rhoi": rhoi, "lhs": lhs}
