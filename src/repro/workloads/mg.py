"""MG: multigrid V-cycles on a hierarchy of 1-D meshes.

Target data objects ``u`` (solution across all levels) and ``r`` (residual
across all levels), matching NPB MG's ``mg3P`` routine.  The multigrid
structure — smoothing, restriction, coarse correction, prolongation — is what
gives ``u`` its algorithm-level error masking in the paper (iterative
structure mitigates error magnitude), so the hierarchy is kept explicit.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence, Tuple

import numpy as np

from repro.core.acceptance import AcceptanceCriterion, NormRelativeTolerance
from repro.ir.types import F64, I64
from repro.vm.memory import Memory
from repro.workloads.base import Workload


# --------------------------------------------------------------------- #
# kernels: smoother, residual, transfer operators, V-cycle driver
# --------------------------------------------------------------------- #
def mg_smooth(u: "double*", f: "double*", uoff: "i64", foff: "i64", n: "i64", h2: "double", sweeps: "i64") -> "void":
    """Weighted-Jacobi smoothing of ``-u'' = f`` on one level."""
    for s in range(sweeps):
        for i in range(1, n - 1):
            u[uoff + i] = 0.5 * (u[uoff + i - 1] + u[uoff + i + 1] + h2 * f[foff + i])


def mg_residual(u: "double*", f: "double*", r: "double*", uoff: "i64", foff: "i64", roff: "i64", n: "i64", h2: "double") -> "void":
    """r = f - A u on one level (second-difference operator)."""
    r[roff] = 0.0
    r[roff + n - 1] = 0.0
    for i in range(1, n - 1):
        r[roff + i] = f[foff + i] - (
            2.0 * u[uoff + i] - u[uoff + i - 1] - u[uoff + i + 1]
        ) / h2


def mg_restrict(r: "double*", f: "double*", roff: "i64", foff: "i64", nc: "i64") -> "void":
    """Full-weighting restriction of the fine residual to the coarse rhs."""
    for i in range(1, nc - 1):
        f[foff + i] = 0.25 * (
            r[roff + 2 * i - 1] + 2.0 * r[roff + 2 * i] + r[roff + 2 * i + 1]
        )
    f[foff] = 0.0
    f[foff + nc - 1] = 0.0


def mg_prolong(u: "double*", uoff_c: "i64", uoff_f: "i64", nc: "i64") -> "void":
    """Linear interpolation of the coarse correction, added onto the fine grid."""
    for i in range(nc - 1):
        u[uoff_f + 2 * i] = u[uoff_f + 2 * i] + u[uoff_c + i]
        u[uoff_f + 2 * i + 1] = u[uoff_f + 2 * i + 1] + 0.5 * (
            u[uoff_c + i] + u[uoff_c + i + 1]
        )
    u[uoff_f + 2 * (nc - 1)] = u[uoff_f + 2 * (nc - 1)] + u[uoff_c + nc - 1]


def mg3p(
    u: "double*",
    r: "double*",
    v: "double*",
    f: "double*",
    nf: "i64",
    nc: "i64",
    ncycles: "i64",
) -> "void":
    """Two-level V(2,1)-cycles for ``-u'' = v`` on the fine grid.

    ``u`` and ``r`` hold both levels back to back (fine part at offset 0,
    coarse part at offset ``nf``); ``f`` is scratch storage for the coarse
    right-hand side.
    """
    h2f = 1.0
    h2c = 4.0
    for c in range(ncycles):
        mg_smooth(u, v, 0, 0, nf, h2f, 2)
        mg_residual(u, v, r, 0, 0, 0, nf, h2f)
        mg_restrict(r, f, 0, 0, nc)
        for i in range(nc):
            u[nf + i] = 0.0
        mg_smooth(u, f, nf, 0, nc, h2c, 4)
        mg_residual(u, f, r, nf, 0, nf, nc, h2c)
        mg_prolong(u, nf, 0, nc)
        mg_smooth(u, v, 0, 0, nf, h2f, 1)


# --------------------------------------------------------------------- #
# reference implementation
# --------------------------------------------------------------------- #
def reference_mg(v: np.ndarray, nf: int, nc: int, ncycles: int) -> np.ndarray:
    """NumPy mirror of :func:`mg3p`; returns the fine-level solution."""
    u = np.zeros(nf + nc)
    r = np.zeros(nf + nc)
    f = np.zeros(nc)
    h2f, h2c = 1.0, 4.0

    def smooth(uoff, rhs, n, h2, sweeps):
        for _ in range(sweeps):
            for i in range(1, n - 1):
                u[uoff + i] = 0.5 * (u[uoff + i - 1] + u[uoff + i + 1] + h2 * rhs[i])

    def residual(uoff, rhs, roff, n, h2):
        r[roff] = 0.0
        r[roff + n - 1] = 0.0
        for i in range(1, n - 1):
            r[roff + i] = rhs[i] - (2 * u[uoff + i] - u[uoff + i - 1] - u[uoff + i + 1]) / h2

    for _ in range(ncycles):
        smooth(0, v, nf, h2f, 2)
        residual(0, v, 0, nf, h2f)
        for i in range(1, nc - 1):
            f[i] = 0.25 * (r[2 * i - 1] + 2 * r[2 * i] + r[2 * i + 1])
        f[0] = f[nc - 1] = 0.0
        u[nf : nf + nc] = 0.0
        smooth(nf, f, nc, h2c, 4)
        residual(nf, f, nf, nc, h2c)
        for i in range(nc - 1):
            u[2 * i] += u[nf + i]
            u[2 * i + 1] += 0.5 * (u[nf + i] + u[nf + i + 1])
        u[2 * (nc - 1)] += u[nf + nc - 1]
        smooth(0, v, nf, h2f, 1)
    return u[:nf]


class MGWorkload(Workload):
    """NPB MG (multi-grid on a sequence of meshes), Table I row 2."""

    name = "mg"
    description = "Multi-Grid V-cycles on a sequence of meshes"
    code_segment = "the routine mg3P in the main loop"
    target_objects = ("u", "r")
    output_objects = ("u",)
    entry = "mg3p"

    def __init__(self, nf: int = 17, ncycles: int = 2, seed: int = 1234) -> None:
        super().__init__(seed=seed)
        if nf % 2 == 0:
            raise ValueError("fine grid size must be odd (2*nc - 1)")
        self.nf = nf
        self.nc = (nf + 1) // 2
        self.ncycles = ncycles

    @property
    def acceptance(self) -> AcceptanceCriterion:
        return NormRelativeTolerance(1e-3)

    def kernels(self) -> Sequence[Callable]:
        return (mg_smooth, mg_residual, mg_restrict, mg_prolong, mg3p)

    def setup(self, memory: Memory) -> Dict[str, object]:
        rng = self.rng()
        v0 = rng.standard_normal(self.nf)
        v0[0] = v0[-1] = 0.0
        u = memory.allocate("u", F64, self.nf + self.nc)
        r = memory.allocate("r", F64, self.nf + self.nc)
        v = memory.allocate("v", F64, self.nf, initial=v0)
        f = memory.allocate("f", F64, self.nc)
        return {
            "u": u,
            "r": r,
            "v": v,
            "f": f,
            "nf": self.nf,
            "nc": self.nc,
            "ncycles": self.ncycles,
        }
