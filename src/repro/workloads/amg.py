"""AMG: GMRES(m) with a smoothing preconditioner and a pivoted dense solve.

Target data objects ``A`` (the system matrix, double precision) and ``ipiv``
(the integer pivot array of the small dense least-squares solve), matching
the AMG2013 ``hypre_GMRESSolve`` code segment of Table I.  The algorithmic
ingredients that matter for error masking are preserved: the outer GMRES
iteration (restarted Krylov method — iterative structure gives
algorithm-level tolerance), a relaxation-style preconditioner, and an
``ipiv``-driven Gaussian elimination whose corruption reorders pivots and
derails the solve (integer vulnerability).
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence

import numpy as np

from repro.core.acceptance import AcceptanceCriterion, NormRelativeTolerance
from repro.ir.types import F64, I64
from repro.vm.memory import Memory
from repro.workloads.base import Workload


# --------------------------------------------------------------------- #
# kernels
# --------------------------------------------------------------------- #
def precond_jacobi(A: "double*", r: "double*", z: "double*", n: "i64", sweeps: "i64") -> "void":
    """Jacobi-relaxation preconditioner: a few sweeps of ``z ≈ A^{-1} r``."""
    for i in range(n):
        z[i] = r[i] / A[i * n + i]
    for s in range(sweeps):
        for i in range(n):
            acc = r[i]
            for j in range(n):
                if j != i:
                    acc = acc - A[i * n + j] * z[j]
            z[i] = acc / A[i * n + i]


def dense_lu_solve(H: "double*", g: "double*", y: "double*", ipiv: "i64*", m: "i64") -> "void":
    """Pivoted Gaussian elimination of the (m x m) least-squares system."""
    for i in range(m):
        ipiv[i] = i
    for col in range(m):
        # partial pivoting
        best = col
        bestval = fabs(H[ipiv[col] * m + col])  # noqa: F821
        for row in range(col + 1, m):
            val = fabs(H[ipiv[row] * m + col])  # noqa: F821
            if val > bestval:
                best = row
                bestval = val
        tmp = ipiv[col]
        ipiv[col] = ipiv[best]
        ipiv[best] = tmp
        # eliminate below
        for row in range(col + 1, m):
            factor = H[ipiv[row] * m + col] / H[ipiv[col] * m + col]
            H[ipiv[row] * m + col] = factor
            for k in range(col + 1, m):
                H[ipiv[row] * m + k] = H[ipiv[row] * m + k] - factor * H[ipiv[col] * m + k]
            g[ipiv[row]] = g[ipiv[row]] - factor * g[ipiv[col]]
    for i in range(m - 1, -1, -1):
        acc = g[ipiv[i]]
        for k in range(i + 1, m):
            acc = acc - H[ipiv[i] * m + k] * y[k]
        y[i] = acc / H[ipiv[i] * m + i]


def gmres_solve(
    A: "double*",
    b: "double*",
    x: "double*",
    V: "double*",
    H: "double*",
    Hls: "double*",
    g: "double*",
    y: "double*",
    z: "double*",
    w: "double*",
    ipiv: "i64*",
    n: "i64",
    m: "i64",
    restarts: "i64",
) -> "double":
    """Restarted GMRES(m) with Jacobi preconditioning; returns the residual norm."""
    for outer in range(restarts):
        # r0 = b - A x  (stored in w)
        for i in range(n):
            acc = 0.0
            for j in range(n):
                acc = acc + A[i * n + j] * x[j]
            w[i] = b[i] - acc
        beta = 0.0
        for i in range(n):
            beta = beta + w[i] * w[i]
        beta = sqrt(beta)  # noqa: F821
        if beta < 0.000000000001:
            return beta
        for i in range(n):
            V[i] = w[i] / beta
        for k in range(m + 1):
            g[k] = 0.0
        g[0] = beta
        # Arnoldi process with modified Gram-Schmidt
        for k in range(m):
            precond_jacobi(A, V + k * n, z, n, 1)
            for i in range(n):
                acc = 0.0
                for j in range(n):
                    acc = acc + A[i * n + j] * z[j]
                w[i] = acc
            for row in range(k + 1):
                acc = 0.0
                for i in range(n):
                    acc = acc + w[i] * V[row * n + i]
                H[row * (m + 1) + k] = acc
                for i in range(n):
                    w[i] = w[i] - acc * V[row * n + i]
            norm = 0.0
            for i in range(n):
                norm = norm + w[i] * w[i]
            norm = sqrt(norm)  # noqa: F821
            H[(k + 1) * (m + 1) + k] = norm
            if norm > 0.000000000001:
                for i in range(n):
                    V[(k + 1) * n + i] = w[i] / norm
        # solve the small least-squares problem via the normal equations
        for row in range(m):
            for col in range(m):
                acc = 0.0
                for k in range(m + 1):
                    acc = acc + H[k * (m + 1) + row] * H[k * (m + 1) + col]
                Hls[row * m + col] = acc
            acc = 0.0
            for k in range(m + 1):
                acc = acc + H[k * (m + 1) + row] * g[k]
            y[m + row] = acc
        for row in range(m):
            g[row] = y[m + row]
        dense_lu_solve(Hls, g, y, ipiv, m)
        # x = x + M^{-1} (V y)
        for i in range(n):
            acc = 0.0
            for k in range(m):
                acc = acc + V[k * n + i] * y[k]
            w[i] = acc
        precond_jacobi(A, w, z, n, 1)
        for i in range(n):
            x[i] = x[i] + z[i]
    # final residual norm
    resid = 0.0
    for i in range(n):
        acc = 0.0
        for j in range(n):
            acc = acc + A[i * n + j] * x[j]
        diff = b[i] - acc
        resid = resid + diff * diff
    return sqrt(resid)  # noqa: F821


# --------------------------------------------------------------------- #
# reference implementation
# --------------------------------------------------------------------- #
def reference_solution(A: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Direct solve used by the tests to check GMRES convergence."""
    return np.linalg.solve(A, b)


def build_system(n: int, rng: np.random.Generator):
    """A well-conditioned unsymmetric system (diagonally dominant)."""
    A = rng.standard_normal((n, n)) * 0.2
    A += np.diag(4.0 + rng.random(n))
    b = rng.standard_normal(n)
    return A, b


class AMGWorkload(Workload):
    """AMG2013-like GMRES solve (Table I row 8)."""

    name = "amg"
    description = "GMRES(m) with relaxation preconditioner and pivoted dense solve"
    code_segment = "the routine hypre_GMRESSolve"
    target_objects = ("ipiv", "A")
    output_objects = ("x",)
    entry = "gmres_solve"

    def __init__(self, n: int = 8, m: int = 3, restarts: int = 1, seed: int = 1234) -> None:
        super().__init__(seed=seed)
        self.n = n
        self.m = m
        self.restarts = restarts

    @property
    def acceptance(self) -> AcceptanceCriterion:
        return NormRelativeTolerance(5e-3)

    def kernels(self) -> Sequence[Callable]:
        return (precond_jacobi, dense_lu_solve, gmres_solve)

    def setup(self, memory: Memory) -> Dict[str, object]:
        rng = self.rng()
        A, b = build_system(self.n, rng)
        n, m = self.n, self.m
        a_obj = memory.allocate("A", F64, n * n, initial=A.ravel())
        b_obj = memory.allocate("b", F64, n, initial=b)
        x_obj = memory.allocate("x", F64, n)
        v_obj = memory.allocate("V", F64, (m + 1) * n)
        h_obj = memory.allocate("H", F64, (m + 1) * (m + 1))
        hls_obj = memory.allocate("Hls", F64, m * m)
        g_obj = memory.allocate("g", F64, m + 1)
        y_obj = memory.allocate("y", F64, 2 * m)
        z_obj = memory.allocate("z", F64, n)
        w_obj = memory.allocate("w", F64, n)
        ipiv_obj = memory.allocate("ipiv", I64, m)
        return {
            "A": a_obj,
            "b": b_obj,
            "x": x_obj,
            "V": v_obj,
            "H": h_obj,
            "Hls": hls_obj,
            "g": g_obj,
            "y": y_obj,
            "z": z_obj,
            "w": w_obj,
            "ipiv": ipiv_obj,
            "n": n,
            "m": m,
            "restarts": self.restarts,
        }
