"""CG: conjugate gradient with irregular (CSR) memory access.

Reproduces the role of NPB CG in the study: the routine ``conj_grad`` in the
main loop, with target data objects ``r`` (double-precision residual vector,
expected to be highly resilient) and ``colidx`` (integer column-index array
of the sparse matrix, expected to be vulnerable because corrupted indices
address the wrong memory or fault).  ``rowstr``, ``a``, ``p`` and ``q`` are
also allocated as named data objects because Fig. 6 validates their ranking
against exhaustive injection.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from repro.core.acceptance import AcceptanceCriterion, NormRelativeTolerance
from repro.ir.types import F64, I64
from repro.vm.memory import Memory
from repro.workloads.base import Workload


# --------------------------------------------------------------------- #
# kernel (restricted Python dialect, compiled to IR)
# --------------------------------------------------------------------- #
def conj_grad(
    a: "double*",
    colidx: "i64*",
    rowstr: "i64*",
    x: "double*",
    p: "double*",
    q: "double*",
    r: "double*",
    b: "double*",
    n: "i64",
    cgitmax: "i64",
) -> "double":
    """One CG solve of ``A x = b`` with ``A`` in CSR form; returns ``rho``."""
    for j in range(n):
        x[j] = 0.0
        r[j] = b[j]
        p[j] = r[j]
        q[j] = 0.0
    rho = 0.0
    for j in range(n):
        rho = rho + r[j] * r[j]
    for it in range(cgitmax):
        for j in range(n):
            s = 0.0
            for k in range(rowstr[j], rowstr[j + 1]):
                s = s + a[k] * p[colidx[k]]
            q[j] = s
        d = 0.0
        for j in range(n):
            d = d + p[j] * q[j]
        alpha = rho / d
        for j in range(n):
            x[j] = x[j] + alpha * p[j]
            r[j] = r[j] - alpha * q[j]
        rho0 = rho
        rho = 0.0
        for j in range(n):
            rho = rho + r[j] * r[j]
        beta = rho / rho0
        for j in range(n):
            p[j] = r[j] + beta * p[j]
    return rho


# --------------------------------------------------------------------- #
# reference implementation (NumPy), used by the test suite
# --------------------------------------------------------------------- #
def reference_conj_grad(
    a: np.ndarray,
    colidx: np.ndarray,
    rowstr: np.ndarray,
    b: np.ndarray,
    cgitmax: int,
) -> Tuple[np.ndarray, float]:
    """NumPy mirror of :func:`conj_grad`; returns ``(x, rho)``."""
    n = len(b)
    x = np.zeros(n)
    r = b.copy()
    p = r.copy()
    rho = float(r @ r)
    for _ in range(cgitmax):
        q = np.zeros(n)
        for j in range(n):
            lo, hi = rowstr[j], rowstr[j + 1]
            q[j] = float(a[lo:hi] @ p[colidx[lo:hi]])
        alpha = rho / float(p @ q)
        x = x + alpha * p
        r = r - alpha * q
        rho0 = rho
        rho = float(r @ r)
        p = r + (rho / rho0) * p
    return x, rho


def build_sparse_spd(n: int, rng: np.random.Generator) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """A small symmetric, diagonally-dominant CSR matrix (CG-friendly)."""
    dense = np.zeros((n, n))
    for i in range(n):
        dense[i, i] = 4.0
        if i > 0:
            dense[i, i - 1] = -1.0
        if i < n - 1:
            dense[i, i + 1] = -1.0
    # a few symmetric long-range couplings to make the access pattern irregular
    for _ in range(n // 3):
        i, j = rng.integers(0, n, size=2)
        if abs(int(i) - int(j)) > 1:
            dense[i, j] = dense[j, i] = -0.5
    values: List[float] = []
    columns: List[int] = []
    rowstr = [0]
    for i in range(n):
        for j in range(n):
            if dense[i, j] != 0.0:
                values.append(float(dense[i, j]))
                columns.append(j)
        rowstr.append(len(values))
    return np.asarray(values), np.asarray(columns, dtype=np.int64), np.asarray(rowstr, dtype=np.int64)


class CGWorkload(Workload):
    """NPB CG, class-S-like scale (Table I row 1)."""

    name = "cg"
    description = "Conjugate Gradient, irregular memory access (CSR sparse matrix)"
    code_segment = "the routine conj_grad in the main loop"
    target_objects = ("r", "colidx")
    output_objects = ("x",)
    entry = "conj_grad"

    def __init__(self, n: int = 16, cgitmax: int = 3, seed: int = 1234) -> None:
        super().__init__(seed=seed)
        self.n = n
        self.cgitmax = cgitmax

    @property
    def acceptance(self) -> AcceptanceCriterion:
        # iterative solver: a small relative perturbation of the solution is
        # still an acceptable outcome (§II-A fidelity-threshold notion).
        return NormRelativeTolerance(1e-3)

    def kernels(self) -> Sequence[Callable]:
        return (conj_grad,)

    def setup(self, memory: Memory) -> Dict[str, object]:
        rng = self.rng()
        values, columns, rowstr = build_sparse_spd(self.n, rng)
        b = rng.standard_normal(self.n)
        a_obj = memory.allocate("a", F64, len(values), initial=values)
        colidx_obj = memory.allocate("colidx", I64, len(columns), initial=columns)
        rowstr_obj = memory.allocate("rowstr", I64, len(rowstr), initial=rowstr)
        x_obj = memory.allocate("x", F64, self.n)
        p_obj = memory.allocate("p", F64, self.n)
        q_obj = memory.allocate("q", F64, self.n)
        r_obj = memory.allocate("r", F64, self.n)
        b_obj = memory.allocate("b", F64, self.n, initial=b)
        return {
            "a": a_obj,
            "colidx": colidx_obj,
            "rowstr": rowstr_obj,
            "x": x_obj,
            "p": p_obj,
            "q": q_obj,
            "r": r_obj,
            "b": b_obj,
            "n": self.n,
            "cgitmax": self.cgitmax,
        }
