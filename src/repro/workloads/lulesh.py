"""LULESH: the ``CalcMonotonicQRegionForElems`` kernel.

Target data objects ``m_delv_zeta`` (zeta-direction velocity-gradient field,
"zeta" in the paper's figures) and ``m_elemBC`` (integer boundary-condition
flag array, "elemBC").  The coordinate arrays ``m_x``/``m_y``/``m_z`` are the
objects used by the Fig. 6 validation and the Fig. 7 RFI comparison, so they
are allocated as named data objects and consumed by the kernel exactly as
the real routine consumes nodal coordinates (characteristic-length /
volume-style combinations).

The kernel keeps the behaviourally relevant structure of the original:

* the monotonic limiter on ``delv`` uses neighbour values, comparisons and
  ``min``/``max`` clamping (logic/compare masking),
* the boundary-condition flags are tested with bitwise AND masks
  (logic masking on an integer object),
* the artificial-viscosity terms ``qq``/``ql`` combine coordinate-derived
  lengths with the limited gradient (overshadowing on the double objects).
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence

import numpy as np

from repro.core.acceptance import AcceptanceCriterion, RelativeTolerance
from repro.ir.types import F64, I64
from repro.vm.memory import Memory
from repro.workloads.base import Workload

#: Boundary-condition flag bits (subset of LULESH's ZETA_M/ZETA_P masks).
ZETA_M_SYMM = 0x001
ZETA_M_FREE = 0x002
ZETA_P_SYMM = 0x004
ZETA_P_FREE = 0x008


# --------------------------------------------------------------------- #
# kernel
# --------------------------------------------------------------------- #
def calc_monotonic_q_region(
    m_delv_zeta: "double*",
    m_elemBC: "i64*",
    m_x: "double*",
    m_y: "double*",
    m_z: "double*",
    m_qq: "double*",
    m_ql: "double*",
    numElem: "i64",
    monoq_limiter: "double",
    qlc_monoq: "double",
    qqc_monoq: "double",
) -> "void":
    """Monotonic artificial-viscosity terms per element (1-D element chain)."""
    for i in range(numElem):
        bcMask = m_elemBC[i]
        delvm = 0.0
        delvp = 0.0
        norm = 1.0
        dz = m_delv_zeta[i]
        if fabs(dz) > 0.0000000000001:  # noqa: F821
            norm = 1.0 / dz
        # zeta- neighbour (respect symmetric / free boundary flags)
        if bcMask & ZETA_M_SYMM:
            delvm = dz
        elif bcMask & ZETA_M_FREE:
            delvm = 0.0
        else:
            if i > 0:
                delvm = m_delv_zeta[i - 1]
            else:
                delvm = dz
        # zeta+ neighbour
        if bcMask & ZETA_P_SYMM:
            delvp = dz
        elif bcMask & ZETA_P_FREE:
            delvp = 0.0
        else:
            if i < numElem - 1:
                delvp = m_delv_zeta[i + 1]
            else:
                delvp = dz
        delvm = delvm * norm
        delvp = delvp * norm
        phi = 0.5 * (delvm + delvp)
        delvm = delvm * monoq_limiter
        delvp = delvp * monoq_limiter
        if delvm < phi:
            phi = delvm
        if delvp < phi:
            phi = delvp
        if phi < 0.0:
            phi = 0.0
        if phi > monoq_limiter:
            phi = monoq_limiter
        # characteristic length from the nodal coordinates of the element
        dx = m_x[i + 1] - m_x[i]
        dy = m_y[i + 1] - m_y[i]
        dzc = m_z[i + 1] - m_z[i]
        vol = fabs(dx * dy * dzc) + 0.000000000001  # noqa: F821
        delvxx = dz * vol
        if delvxx > 0.0:
            m_qq[i] = 0.0
            m_ql[i] = 0.0
        else:
            rho = 1.0 / vol
            qlin = -qlc_monoq * rho * delvxx * (1.0 - phi)
            qquad = qqc_monoq * rho * delvxx * delvxx * (1.0 - phi * phi)
            m_qq[i] = qquad
            m_ql[i] = qlin


# --------------------------------------------------------------------- #
# reference implementation
# --------------------------------------------------------------------- #
def reference_monotonic_q(
    delv_zeta: np.ndarray,
    elem_bc: np.ndarray,
    x: np.ndarray,
    y: np.ndarray,
    z: np.ndarray,
    monoq_limiter: float,
    qlc: float,
    qqc: float,
):
    """NumPy mirror of :func:`calc_monotonic_q_region`; returns (qq, ql)."""
    n = len(delv_zeta)
    qq = np.zeros(n)
    ql = np.zeros(n)
    for i in range(n):
        bc = int(elem_bc[i])
        dz = delv_zeta[i]
        norm = 1.0 / dz if abs(dz) > 1e-13 else 1.0
        if bc & ZETA_M_SYMM:
            delvm = dz
        elif bc & ZETA_M_FREE:
            delvm = 0.0
        else:
            delvm = delv_zeta[i - 1] if i > 0 else dz
        if bc & ZETA_P_SYMM:
            delvp = dz
        elif bc & ZETA_P_FREE:
            delvp = 0.0
        else:
            delvp = delv_zeta[i + 1] if i < n - 1 else dz
        delvm *= norm
        delvp *= norm
        phi = 0.5 * (delvm + delvp)
        phi = min(phi, delvm * monoq_limiter, delvp * monoq_limiter)
        phi = min(max(phi, 0.0), monoq_limiter)
        dx, dy, dzc = x[i + 1] - x[i], y[i + 1] - y[i], z[i + 1] - z[i]
        vol = abs(dx * dy * dzc) + 1e-12
        delvxx = dz * vol
        if delvxx > 0.0:
            qq[i] = ql[i] = 0.0
        else:
            rho = 1.0 / vol
            ql[i] = -qlc * rho * delvxx * (1.0 - phi)
            qq[i] = qqc * rho * delvxx * delvxx * (1.0 - phi * phi)
    return qq, ql


class LuleshWorkload(Workload):
    """LULESH shock-hydro proxy app, CalcMonotonicQRegionForElems (Table I row 7)."""

    name = "lulesh"
    description = "Unstructured Lagrangian explicit shock hydrodynamics (monotonic Q region)"
    code_segment = "the routine CalcMonotonicQRegionForElems"
    target_objects = ("m_delv_zeta", "m_elemBC")
    output_objects = ("m_qq", "m_ql")
    entry = "calc_monotonic_q_region"

    def __init__(self, num_elem: int = 24, seed: int = 1234) -> None:
        super().__init__(seed=seed)
        self.num_elem = num_elem

    @property
    def acceptance(self) -> AcceptanceCriterion:
        return RelativeTolerance(rtol=1e-5, atol=1e-8)

    def kernels(self) -> Sequence[Callable]:
        return (calc_monotonic_q_region,)

    def setup(self, memory: Memory) -> Dict[str, object]:
        rng = self.rng()
        n = self.num_elem
        delv = -np.abs(rng.standard_normal(n)) * 0.05
        flags = rng.choice(
            [0, ZETA_M_SYMM, ZETA_P_SYMM, ZETA_M_FREE, ZETA_P_FREE], size=n
        ).astype(np.int64)
        coords = np.cumsum(0.5 + rng.random(n + 1))
        m_delv_zeta = memory.allocate("m_delv_zeta", F64, n, initial=delv)
        m_elem_bc = memory.allocate("m_elemBC", I64, n, initial=flags)
        m_x = memory.allocate("m_x", F64, n + 1, initial=coords)
        m_y = memory.allocate("m_y", F64, n + 1, initial=coords * 1.1 + 0.3)
        m_z = memory.allocate("m_z", F64, n + 1, initial=coords * 0.9 - 0.2)
        m_qq = memory.allocate("m_qq", F64, n)
        m_ql = memory.allocate("m_ql", F64, n)
        return {
            "m_delv_zeta": m_delv_zeta,
            "m_elemBC": m_elem_bc,
            "m_x": m_x,
            "m_y": m_y,
            "m_z": m_z,
            "m_qq": m_qq,
            "m_ql": m_ql,
            "numElem": n,
            "monoq_limiter": 2.0,
            "qlc_monoq": 0.5,
            "qqc_monoq": 2.0,
        }
