"""BT: block-tridiagonal line solves along x over a small structured grid.

Target data objects ``grid_points`` (the integer array defining the input
problem — corrupting it changes loop bounds and addressing, which is why the
paper finds it vulnerable) and ``u`` (the 5-component double-precision state
field).  The kernel keeps the structure of NPB BT's ``x_solve``: per (k, j)
line and per component, build a tridiagonal system from the current state,
eliminate forward, back-substitute, and write the result back into ``u``.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence

import numpy as np

from repro.core.acceptance import AcceptanceCriterion, NormRelativeTolerance
from repro.ir.types import F64, I64
from repro.vm.memory import Memory
from repro.workloads.base import Workload


# --------------------------------------------------------------------- #
# kernel
# --------------------------------------------------------------------- #
def x_solve(
    grid_points: "i64*",
    u: "double*",
    lhs: "double*",
    rhsv: "double*",
) -> "void":
    """Thomas-algorithm line solves along x for every (k, j, m)."""
    nx = grid_points[0]
    ny = grid_points[1]
    nz = grid_points[2]
    for k in range(nz):
        for j in range(ny):
            for m in range(5):
                for i in range(nx):
                    idx = ((k * ny + j) * nx + i) * 5 + m
                    rhsv[i] = u[idx]
                    lhs[i * 3 + 0] = -1.0
                    lhs[i * 3 + 1] = 4.0 + 0.01 * fabs(u[idx])  # noqa: F821
                    lhs[i * 3 + 2] = -1.0
                for i in range(1, nx):
                    fac = lhs[i * 3 + 0] / lhs[(i - 1) * 3 + 1]
                    lhs[i * 3 + 1] = lhs[i * 3 + 1] - fac * lhs[(i - 1) * 3 + 2]
                    rhsv[i] = rhsv[i] - fac * rhsv[i - 1]
                rhsv[nx - 1] = rhsv[nx - 1] / lhs[(nx - 1) * 3 + 1]
                for i in range(nx - 2, -1, -1):
                    rhsv[i] = (rhsv[i] - lhs[i * 3 + 2] * rhsv[i + 1]) / lhs[i * 3 + 1]
                for i in range(nx):
                    idx = ((k * ny + j) * nx + i) * 5 + m
                    u[idx] = rhsv[i]


# --------------------------------------------------------------------- #
# reference implementation
# --------------------------------------------------------------------- #
def reference_x_solve(u: np.ndarray, nx: int, ny: int, nz: int) -> np.ndarray:
    """NumPy mirror of :func:`x_solve` on a flat (nz*ny*nx*5,) state array."""
    u = u.copy()
    for k in range(nz):
        for j in range(ny):
            for m in range(5):
                idx = [((k * ny + j) * nx + i) * 5 + m for i in range(nx)]
                rhs = u[idx].astype(float)
                a = np.full(nx, -1.0)
                b = 4.0 + 0.01 * np.abs(u[idx])
                c = np.full(nx, -1.0)
                for i in range(1, nx):
                    fac = a[i] / b[i - 1]
                    b[i] -= fac * c[i - 1]
                    rhs[i] -= fac * rhs[i - 1]
                rhs[nx - 1] /= b[nx - 1]
                for i in range(nx - 2, -1, -1):
                    rhs[i] = (rhs[i] - c[i] * rhs[i + 1]) / b[i]
                u[idx] = rhs
    return u


class BTWorkload(Workload):
    """NPB BT (block tri-diagonal solver), x_solve code segment (Table I row 4)."""

    name = "bt"
    description = "Block tri-diagonal solver: line solves along x on a structured grid"
    code_segment = "the routine x_solve in the main loop"
    target_objects = ("grid_points", "u")
    output_objects = ("u",)
    entry = "x_solve"

    def __init__(self, nx: int = 5, ny: int = 2, nz: int = 2, seed: int = 1234) -> None:
        super().__init__(seed=seed)
        self.nx, self.ny, self.nz = nx, ny, nz

    @property
    def acceptance(self) -> AcceptanceCriterion:
        return NormRelativeTolerance(1e-4)

    def kernels(self) -> Sequence[Callable]:
        return (x_solve,)

    def setup(self, memory: Memory) -> Dict[str, object]:
        rng = self.rng()
        size = self.nx * self.ny * self.nz * 5
        u0 = rng.standard_normal(size) + 2.0
        grid_points = memory.allocate(
            "grid_points", I64, 3, initial=[self.nx, self.ny, self.nz]
        )
        u = memory.allocate("u", F64, size, initial=u0)
        lhs = memory.allocate("lhs", F64, self.nx * 3)
        rhsv = memory.allocate("rhsv", F64, self.nx)
        return {"grid_points": grid_points, "u": u, "lhs": lhs, "rhsv": rhsv}
