"""Workloads studied in the paper's evaluation (Table I plus §VI).

Each workload packages

* one or more kernels written in the restricted Python dialect and compiled
  to the IR,
* a deterministic data-object setup (the arrays of Table I, with the same
  roles: index arrays, state arrays, grids, …),
* the output objects and the acceptance criterion that defines what an
  "acceptable" outcome means for it, and
* metadata (description, code segment, target data objects) used by the
  reporting layer to regenerate Table I.

Public API
----------
:class:`~repro.workloads.base.Workload`,
:class:`~repro.workloads.base.WorkloadInstance`,
:func:`~repro.workloads.registry.get_workload`,
:data:`~repro.workloads.registry.WORKLOADS`.
"""

from repro.workloads.base import RunOutcome, Workload, WorkloadInstance
from repro.workloads.registry import WORKLOADS, get_workload, workload_names

__all__ = [
    "RunOutcome",
    "Workload",
    "WorkloadInstance",
    "WORKLOADS",
    "get_workload",
    "workload_names",
]
