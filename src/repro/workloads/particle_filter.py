"""Particle Filter (Rodinia PF) with the critical variable ``xe`` (§VI).

The paper's second case study asks whether protecting ``xe`` — the vector
holding the vector-multiplication results (the weighted position estimate
computed every frame) — with ABFT is worthwhile.  The workload implements a
1-object tracking particle filter: propagate particles, compute likelihood
weights, normalise, estimate (``xe``), and resample systematically.  The
ABFT variant recomputes each weighted-sum estimate against a checksummed
replica and overwrites ``xe`` when they disagree, mimicking ABFT for the
vector products.

Randomness is provided through pre-generated arrays (``randu``, ``randn``) so
the execution — and therefore every fault-injection run — is deterministic.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence

import numpy as np

from repro.core.acceptance import AcceptanceCriterion, NormRelativeTolerance
from repro.ir.types import F64, I64
from repro.vm.memory import Memory
from repro.workloads.base import Workload


# --------------------------------------------------------------------- #
# kernels
# --------------------------------------------------------------------- #
def pf_estimate(arrayX: "double*", weights: "double*", nparticles: "i64") -> "double":
    """Weighted position estimate: the vector multiplication feeding ``xe``."""
    acc = 0.0
    for p in range(nparticles):
        acc = acc + arrayX[p] * weights[p]
    return acc


def pf_estimate_abft(arrayX: "double*", weights: "double*", nparticles: "i64") -> "double":
    """ABFT-protected estimate: duplicated checksummed dot product.

    The estimate is computed twice — once directly and once through a
    checksum-shifted replica — and the replica-corrected value is returned
    when the two disagree (single-error correction for the vector product).
    """
    direct = pf_estimate(arrayX, weights, nparticles)
    shifted = 0.0
    wsum = 0.0
    for p in range(nparticles):
        shifted = shifted + (arrayX[p] + 1.0) * weights[p]
        wsum = wsum + weights[p]
    replica = shifted - wsum
    diff = fabs(direct - replica)  # noqa: F821
    if diff > 0.000001:
        return replica
    return direct


def particle_filter(
    arrayX: "double*",
    arrayY: "double*",
    weights: "double*",
    cdf: "double*",
    xe: "double*",
    observations: "double*",
    randn_seq: "double*",
    randu_seq: "double*",
    scratchX: "double*",
    scratchY: "double*",
    nparticles: "i64",
    nframes: "i64",
    use_abft: "i64",
) -> "void":
    """Track one object over ``nframes`` frames with ``nparticles`` particles."""
    for p in range(nparticles):
        weights[p] = 1.0 / nparticles
    for frame in range(nframes):
        # propagate with pre-generated Gaussian noise
        for p in range(nparticles):
            arrayX[p] = arrayX[p] + 1.0 + 5.0 * randn_seq[frame * nparticles + p]
            arrayY[p] = arrayY[p] - 2.0 + 2.0 * randn_seq[(frame + nframes) * nparticles + p]
        # likelihood against the observed position
        obsx = observations[frame * 2]
        obsy = observations[frame * 2 + 1]
        for p in range(nparticles):
            dx = arrayX[p] - obsx
            dy = arrayY[p] - obsy
            weights[p] = weights[p] * exp(-0.5 * (dx * dx + dy * dy) / 25.0)  # noqa: F821
        # normalise
        wsum = 0.0
        for p in range(nparticles):
            wsum = wsum + weights[p]
        if wsum < 0.000000000001:
            wsum = 0.000000000001
        for p in range(nparticles):
            weights[p] = weights[p] / wsum
        # state estimate (the vector multiplications stored into xe)
        if use_abft:
            xe[frame * 2] = pf_estimate_abft(arrayX, weights, nparticles)
            xe[frame * 2 + 1] = pf_estimate_abft(arrayY, weights, nparticles)
        else:
            xe[frame * 2] = pf_estimate(arrayX, weights, nparticles)
            xe[frame * 2 + 1] = pf_estimate(arrayY, weights, nparticles)
        # systematic resampling
        acc = 0.0
        for p in range(nparticles):
            acc = acc + weights[p]
            cdf[p] = acc
        u0 = randu_seq[frame] / nparticles
        for p in range(nparticles):
            target = u0 + p * (1.0 / nparticles)
            chosen = nparticles - 1
            found = 0
            for q in range(nparticles):
                if found == 0 and cdf[q] >= target:
                    chosen = q
                    found = 1
            scratchX[p] = arrayX[chosen]
            scratchY[p] = arrayY[chosen]
        for p in range(nparticles):
            arrayX[p] = scratchX[p]
            arrayY[p] = scratchY[p]
            weights[p] = 1.0 / nparticles


# --------------------------------------------------------------------- #
# reference implementation
# --------------------------------------------------------------------- #
def reference_particle_filter(
    x0: np.ndarray,
    y0: np.ndarray,
    observations: np.ndarray,
    randn_seq: np.ndarray,
    randu_seq: np.ndarray,
    nparticles: int,
    nframes: int,
) -> np.ndarray:
    """NumPy mirror of :func:`particle_filter` (without ABFT); returns ``xe``."""
    arrayX = x0.copy()
    arrayY = y0.copy()
    weights = np.full(nparticles, 1.0 / nparticles)
    xe = np.zeros(2 * nframes)
    for frame in range(nframes):
        arrayX = arrayX + 1.0 + 5.0 * randn_seq[frame * nparticles : (frame + 1) * nparticles]
        arrayY = arrayY - 2.0 + 2.0 * randn_seq[
            (frame + nframes) * nparticles : (frame + nframes + 1) * nparticles
        ]
        obsx, obsy = observations[2 * frame], observations[2 * frame + 1]
        weights = weights * np.exp(
            -0.5 * ((arrayX - obsx) ** 2 + (arrayY - obsy) ** 2) / 25.0
        )
        wsum = max(float(weights.sum()), 1e-12)
        weights = weights / wsum
        xe[2 * frame] = float(arrayX @ weights)
        xe[2 * frame + 1] = float(arrayY @ weights)
        cdf = np.cumsum(weights)
        u0 = randu_seq[frame] / nparticles
        idx = np.empty(nparticles, dtype=int)
        for p in range(nparticles):
            target = u0 + p / nparticles
            hits = np.nonzero(cdf >= target)[0]
            idx[p] = hits[0] if len(hits) else nparticles - 1
        arrayX = arrayX[idx].copy()
        arrayY = arrayY[idx].copy()
        weights = np.full(nparticles, 1.0 / nparticles)
    return xe


class ParticleFilterWorkload(Workload):
    """Rodinia Particle Filter with the critical variable ``xe`` (§VI)."""

    description = "Particle-filter object tracking (propagate, weight, estimate, resample)"
    code_segment = "the main tracking loop (vector multiplications into xe)"
    target_objects = ("xe",)
    output_objects = ("xe",)
    entry = "particle_filter"

    def __init__(
        self, nparticles: int = 16, nframes: int = 2, abft: bool = False, seed: int = 1234
    ) -> None:
        super().__init__(seed=seed)
        self.nparticles = nparticles
        self.nframes = nframes
        self.abft = abft
        self.name = "pf_abft" if abft else "pf"
        if abft:
            self.description += " with ABFT-protected estimates"

    @property
    def acceptance(self) -> AcceptanceCriterion:
        # a statistical estimator tolerates small perturbations of xe
        return NormRelativeTolerance(5e-2)

    def kernels(self) -> Sequence[Callable]:
        return (pf_estimate, pf_estimate_abft, particle_filter)

    def setup(self, memory: Memory) -> Dict[str, object]:
        rng = self.rng()
        npart, nframes = self.nparticles, self.nframes
        x0 = rng.standard_normal(npart) * 0.5
        y0 = rng.standard_normal(npart) * 0.5
        # ground-truth trajectory the observations follow
        truth = np.cumsum(
            np.column_stack([np.full(nframes, 1.0), np.full(nframes, -2.0)]), axis=0
        )
        observations = (truth + rng.standard_normal((nframes, 2))).ravel()
        randn_seq = rng.standard_normal(2 * nframes * npart)
        randu_seq = rng.random(nframes)
        args = {
            "arrayX": memory.allocate("arrayX", F64, npart, initial=x0),
            "arrayY": memory.allocate("arrayY", F64, npart, initial=y0),
            "weights": memory.allocate("weights", F64, npart),
            "cdf": memory.allocate("cdf", F64, npart),
            "xe": memory.allocate("xe", F64, 2 * nframes),
            "observations": memory.allocate(
                "observations", F64, 2 * nframes, initial=observations
            ),
            "randn_seq": memory.allocate(
                "randn_seq", F64, 2 * nframes * npart, initial=randn_seq
            ),
            "randu_seq": memory.allocate("randu_seq", F64, nframes, initial=randu_seq),
            "scratchX": memory.allocate("scratchX", F64, npart),
            "scratchY": memory.allocate("scratchY", F64, npart),
            "nparticles": npart,
            "nframes": nframes,
            "use_abft": 1 if self.abft else 0,
        }
        return args
