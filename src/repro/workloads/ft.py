"""FT: discrete Fourier transform rows with forward/evolve/inverse structure.

Target data objects ``plane`` (interleaved complex data, re/im pairs) and
``exp1`` (the pre-computed twiddle-factor table), matching NPB FT's
``fftXYZ`` code segment.  The paper attributes the large algorithm-level
masking of ``plane`` to the frequent transforms averaging out corruptions;
keeping the full forward → evolve → inverse → scale pipeline preserves
exactly that effect.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence

import numpy as np

from repro.core.acceptance import AcceptanceCriterion, NormRelativeTolerance
from repro.ir.types import F64, I64
from repro.vm.memory import Memory
from repro.workloads.base import Workload


# --------------------------------------------------------------------- #
# kernels
# --------------------------------------------------------------------- #
def fft1(plane: "double*", exp1: "double*", off: "i64", n: "i64", isign: "double") -> "void":
    """In-place radix-2 complex FFT of one row of ``plane``.

    ``plane`` holds interleaved (re, im) pairs; ``exp1`` holds the twiddle
    factors (cos, sin) for k = 0 .. n/2-1; ``isign`` selects forward (+1) or
    inverse (-1).
    """
    # bit-reversal permutation
    j = 0
    for i in range(n):
        if i < j:
            tr = plane[off + 2 * i]
            ti = plane[off + 2 * i + 1]
            plane[off + 2 * i] = plane[off + 2 * j]
            plane[off + 2 * i + 1] = plane[off + 2 * j + 1]
            plane[off + 2 * j] = tr
            plane[off + 2 * j + 1] = ti
        m = n >> 1
        while m >= 1 and j >= m:
            j = j - m
            m = m >> 1
        j = j + m
    # butterflies
    span = 2
    while span <= n:
        half = span >> 1
        step = n // span
        for base in range(0, n, span):
            for k in range(half):
                tw = k * step
                wr = exp1[2 * tw]
                wi = exp1[2 * tw + 1] * isign
                ia = off + 2 * (base + k)
                ib = off + 2 * (base + k + half)
                br = plane[ib] * wr - plane[ib + 1] * wi
                bi = plane[ib] * wi + plane[ib + 1] * wr
                ar = plane[ia]
                ai = plane[ia + 1]
                plane[ib] = ar - br
                plane[ib + 1] = ai - bi
                plane[ia] = ar + br
                plane[ia + 1] = ai + bi
        span = span << 1


def fftxyz(
    plane: "double*",
    exp1: "double*",
    chk: "double*",
    rows: "i64",
    n: "i64",
    iters: "i64",
) -> "void":
    """Forward FFT, spectral evolution, inverse FFT and checksum per iteration."""
    for it in range(iters):
        for row in range(rows):
            fft1(plane, exp1, row * 2 * n, n, 1.0)
        # evolve: damp each mode slightly (stands in for the exponential term)
        for row in range(rows):
            for k in range(n):
                factor = 1.0 - 0.001 * (it + 1) * k / n
                plane[row * 2 * n + 2 * k] = plane[row * 2 * n + 2 * k] * factor
                plane[row * 2 * n + 2 * k + 1] = plane[row * 2 * n + 2 * k + 1] * factor
        for row in range(rows):
            fft1(plane, exp1, row * 2 * n, n, -1.0)
        scale = 1.0 / n
        for row in range(rows):
            for k in range(n):
                plane[row * 2 * n + 2 * k] = plane[row * 2 * n + 2 * k] * scale
                plane[row * 2 * n + 2 * k + 1] = plane[row * 2 * n + 2 * k + 1] * scale
        # checksum over a strided subset, as the NPB verification does
        sr = 0.0
        si = 0.0
        for k in range(rows * n // 2):
            idx = (5 * k) % (rows * n)
            sr = sr + plane[2 * idx]
            si = si + plane[2 * idx + 1]
        chk[2 * it] = sr
        chk[2 * it + 1] = si


# --------------------------------------------------------------------- #
# reference implementation
# --------------------------------------------------------------------- #
def reference_fftxyz(plane: np.ndarray, rows: int, n: int, iters: int) -> np.ndarray:
    """NumPy mirror of :func:`fftxyz` (returns the final complex plane)."""
    data = plane.copy().reshape(rows, n, 2)
    z = data[..., 0] + 1j * data[..., 1]
    for it in range(iters):
        z = np.fft.fft(z, axis=1)
        k = np.arange(n)
        z = z * (1.0 - 0.001 * (it + 1) * k / n)
        z = np.fft.ifft(z, axis=1)
    out = np.empty_like(data)
    out[..., 0] = z.real
    out[..., 1] = z.imag
    return out.reshape(-1)


def make_twiddles(n: int) -> np.ndarray:
    """Twiddle factor table ``exp1``: (cos, -sin) pairs for k = 0 .. n/2-1."""
    k = np.arange(n // 2)
    angle = -2.0 * np.pi * k / n
    table = np.empty(n)
    table[0::2] = np.cos(angle)
    table[1::2] = np.sin(angle)
    return table


class FTWorkload(Workload):
    """NPB FT (discrete 3D FFT), Table I row 3."""

    name = "ft"
    description = "Discrete Fourier Transform rows with forward/evolve/inverse phases"
    code_segment = "the routine fftXYZ in the main loop"
    target_objects = ("exp1", "plane")
    output_objects = ("plane", "chk")
    entry = "fftxyz"

    def __init__(self, n: int = 8, rows: int = 2, iters: int = 1, seed: int = 1234) -> None:
        super().__init__(seed=seed)
        if n & (n - 1):
            raise ValueError("FFT length must be a power of two")
        self.n = n
        self.rows = rows
        self.iters = iters

    @property
    def acceptance(self) -> AcceptanceCriterion:
        return NormRelativeTolerance(1e-3)

    def kernels(self) -> Sequence[Callable]:
        return (fft1, fftxyz)

    def setup(self, memory: Memory) -> Dict[str, object]:
        rng = self.rng()
        plane0 = rng.standard_normal(self.rows * self.n * 2)
        plane = memory.allocate("plane", F64, self.rows * self.n * 2, initial=plane0)
        exp1 = memory.allocate("exp1", F64, self.n, initial=make_twiddles(self.n))
        chk = memory.allocate("chk", F64, 2 * self.iters)
        return {
            "plane": plane,
            "exp1": exp1,
            "chk": chk,
            "rows": self.rows,
            "n": self.n,
            "iters": self.iters,
        }
