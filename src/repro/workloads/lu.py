"""LU: SSOR-style sweeps plus the paper's ``l2norm`` code segment (Fig. 2).

Target data objects ``u`` (solution state) and ``rsd`` (residual / right-hand
side), plus ``sum`` — the array the paper's worked aDVF example (Eq. 2) is
computed for.  The kernel keeps the structure of the NPB LU ``ssor`` routine
at a 1-D, 5-component scale: a residual update, a relaxation sweep, and the
``l2norm`` reduction over the five components.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence, Tuple

import numpy as np

from repro.core.acceptance import AcceptanceCriterion, NormRelativeTolerance
from repro.ir.types import F64, I64
from repro.vm.memory import Memory
from repro.workloads.base import Workload


# --------------------------------------------------------------------- #
# kernels
# --------------------------------------------------------------------- #
def l2norm(v: "double*", sum: "double*", n: "i64", nelem: "i64") -> "void":
    """The code segment of Fig. 2: component-wise L2 norms of a 5-vector field."""
    for m in range(5):
        sum[m] = 0.0
    for i in range(n):
        for m in range(5):
            sum[m] = sum[m] + v[i * 5 + m] * v[i * 5 + m]
    for m in range(5):
        sum[m] = sqrt(sum[m] / nelem)  # noqa: F821 - kernel intrinsic


def ssor(
    u: "double*",
    rsd: "double*",
    frct: "double*",
    sum: "double*",
    n: "i64",
    niter: "i64",
    omega: "double",
) -> "void":
    """SSOR-like relaxation: residual update, relaxation sweep, norm."""
    for it in range(niter):
        for i in range(1, n - 1):
            for m in range(5):
                rsd[i * 5 + m] = frct[i * 5 + m] - (
                    2.0 * u[i * 5 + m] - u[(i - 1) * 5 + m] - u[(i + 1) * 5 + m]
                )
        for i in range(1, n - 1):
            for m in range(5):
                u[i * 5 + m] = u[i * 5 + m] + omega * rsd[i * 5 + m]
        l2norm(rsd, sum, n, n - 2)


# --------------------------------------------------------------------- #
# reference implementation
# --------------------------------------------------------------------- #
def reference_ssor(
    u: np.ndarray, frct: np.ndarray, niter: int, omega: float
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """NumPy mirror of :func:`ssor` on (n, 5)-shaped arrays."""
    u = u.copy()
    n = u.shape[0]
    rsd = np.zeros_like(u)
    sums = np.zeros(5)
    for _ in range(niter):
        rsd[1 : n - 1] = frct[1 : n - 1] - (
            2.0 * u[1 : n - 1] - u[: n - 2] - u[2:]
        )
        u[1 : n - 1] += omega * rsd[1 : n - 1]
        sums = np.sqrt((rsd**2).sum(axis=0) / (n - 2))
    return u, rsd, sums


class LUWorkload(Workload):
    """NPB LU (Lower-Upper Gauss-Seidel solver), ssor routine (Table I row 6)."""

    name = "lu"
    description = "Lower-Upper Gauss-Seidel solver (SSOR sweeps, 5-component field)"
    code_segment = "the routine ssor"
    target_objects = ("u", "rsd")
    output_objects = ("u", "sum")
    entry = "ssor"

    def __init__(self, n: int = 12, niter: int = 2, omega: float = 1.2, seed: int = 1234) -> None:
        super().__init__(seed=seed)
        self.n = n
        self.niter = niter
        self.omega = omega

    @property
    def acceptance(self) -> AcceptanceCriterion:
        return NormRelativeTolerance(1e-3)

    def kernels(self) -> Sequence[Callable]:
        return (l2norm, ssor)

    def setup(self, memory: Memory) -> Dict[str, object]:
        rng = self.rng()
        u0 = rng.standard_normal((self.n, 5)).ravel()
        frct0 = rng.standard_normal((self.n, 5)).ravel() * 0.1
        u = memory.allocate("u", F64, self.n * 5, initial=u0)
        rsd = memory.allocate("rsd", F64, self.n * 5)
        frct = memory.allocate("frct", F64, self.n * 5, initial=frct0)
        sums = memory.allocate("sum", F64, 5)
        return {
            "u": u,
            "rsd": rsd,
            "frct": frct,
            "sum": sums,
            "n": self.n,
            "niter": self.niter,
            "omega": self.omega,
        }
