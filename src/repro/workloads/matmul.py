"""Matrix multiplication with optional ABFT checksums (§VI case study).

``C = A × B`` with the Huang–Abraham style algorithm-based fault tolerance
of Wu & Ding [28]: column checksums of ``A`` and row checksums of ``B`` are
maintained so that, after the multiplication, every element of ``C`` can be
verified against its row and column checksums and a single corrupted element
can be located and corrected.

Two workload variants share the kernels:

* ``MatmulWorkload(abft=False)`` — plain GEMM (the paper's ``[C]`` bars),
* ``MatmulWorkload(abft=True)`` — GEMM followed by the ABFT verification and
  correction phase (``ABFT_[C]``), whose overwrite of corrupted elements is
  what lifts the aDVF of ``C`` in Fig. 8.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence

import numpy as np

from repro.core.acceptance import AcceptanceCriterion, RelativeTolerance
from repro.ir.types import F64, I64
from repro.vm.memory import Memory
from repro.workloads.base import Workload


# --------------------------------------------------------------------- #
# kernels
# --------------------------------------------------------------------- #
def matmul(A: "double*", B: "double*", C: "double*", n: "i64") -> "void":
    """Plain triple-loop GEMM, C = A x B, accumulating in place into C.

    Accumulating directly into ``C`` (rather than a register temporary) is
    what the ABFT literature assumes: an error striking ``C`` mid-update is
    carried through the remaining rank-1 updates and survives into the
    output unless something corrects it.
    """
    for i in range(n):
        for j in range(n):
            C[i * n + j] = 0.0
            for k in range(n):
                C[i * n + j] = C[i * n + j] + A[i * n + k] * B[k * n + j]


def matmul_abft(
    A: "double*",
    B: "double*",
    C: "double*",
    colsum: "double*",
    rowsum: "double*",
    n: "i64",
    tol: "double",
) -> "i64":
    """ABFT GEMM: compute C, then verify/correct it with checksums.

    ``colsum[j]`` receives the column checksums of the encoded product
    (``sum_i A[i,:]`` times B) and ``rowsum[i]`` the row checksums
    (A times ``sum_j B[:,j]``).  After the multiplication each row/column sum
    of C is compared against the checksums; a single mismatching (row, col)
    pair locates an erroneous element, which is corrected in place.  Returns
    the number of corrected elements.
    """
    matmul(A, B, C, n)
    # encoded checksums computed directly from the inputs
    for j in range(n):
        acc = 0.0
        for i in range(n):
            rowacc = 0.0
            for k in range(n):
                rowacc = rowacc + A[i * n + k] * B[k * n + j]
            acc = acc + rowacc
        colsum[j] = acc
    for i in range(n):
        acc = 0.0
        for j in range(n):
            rowacc = 0.0
            for k in range(n):
                rowacc = rowacc + A[i * n + k] * B[k * n + j]
            acc = acc + rowacc
        rowsum[i] = acc
    # verification phase: locate and correct a single corrupted element
    corrections = 0
    bad_row = -1
    bad_col = -1
    row_delta = 0.0
    for i in range(n):
        acc = 0.0
        for j in range(n):
            acc = acc + C[i * n + j]
        diff = acc - rowsum[i]
        if fabs(diff) > tol:  # noqa: F821
            bad_row = i
            row_delta = diff
    for j in range(n):
        acc = 0.0
        for i in range(n):
            acc = acc + C[i * n + j]
        diff = acc - colsum[j]
        if fabs(diff) > tol:  # noqa: F821
            bad_col = j
    if bad_row >= 0 and bad_col >= 0:
        C[bad_row * n + bad_col] = C[bad_row * n + bad_col] - row_delta
        corrections = corrections + 1
    return corrections


# --------------------------------------------------------------------- #
# reference implementation
# --------------------------------------------------------------------- #
def reference_matmul(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    return A @ B


class MatmulWorkload(Workload):
    """GEMM with or without ABFT protection of ``C`` (§VI case study)."""

    description = "Dense matrix multiplication C = A x B"
    code_segment = "matrix multiplication (optionally ABFT-protected)"
    target_objects = ("C",)
    output_objects = ("C",)

    def __init__(self, n: int = 6, abft: bool = False, seed: int = 1234) -> None:
        super().__init__(seed=seed)
        self.n = n
        self.abft = abft
        self.name = "matmul_abft" if abft else "matmul"
        self.entry = "matmul_abft" if abft else "matmul"
        if abft:
            self.description += " with ABFT checksum detection/correction"
            # the returned correction count is bookkeeping, not application output
            self.check_return_value = False
            # the returned correction count is bookkeeping, not application output
            self.check_return_value = False

    @property
    def acceptance(self) -> AcceptanceCriterion:
        # Matrix multiplication demands numerical integrity up to the rounding
        # noise of the checksum arithmetic: an ABFT correction reconstructs the
        # element from row/column sums, so bit-exact equality is too strict,
        # but any error above ~1e-10 relative is a real silent corruption.
        return RelativeTolerance(rtol=1e-10, atol=1e-12)

    def kernels(self) -> Sequence[Callable]:
        return (matmul, matmul_abft) if self.abft else (matmul,)

    def setup(self, memory: Memory) -> Dict[str, object]:
        rng = self.rng()
        n = self.n
        A = rng.standard_normal((n, n))
        B = rng.standard_normal((n, n))
        a_obj = memory.allocate("A", F64, n * n, initial=A.ravel())
        b_obj = memory.allocate("B", F64, n * n, initial=B.ravel())
        c_obj = memory.allocate("C", F64, n * n)
        args: Dict[str, object] = {"A": a_obj, "B": b_obj, "C": c_obj, "n": n}
        if self.abft:
            args["colsum"] = memory.allocate("colsum", F64, n)
            args["rowsum"] = memory.allocate("rowsum", F64, n)
            args["tol"] = 1e-12
        return args
