"""Durable cache of golden-trace artifacts, keyed by workload digest.

Golden traces are pure functions of ``(workload name, constructor kwargs)``
— workloads are deterministic by contract — so the columnar artifact of a
traced run can be computed once and shared by everything downstream:
repeated campaign runs, resumed campaigns, and the worker processes of a
parallel analysis all load the same ``.npz`` file instead of re-executing
the workload.

The cache directory comes from the ``REPRO_TRACE_CACHE`` environment
variable (default ``~/.cache/repro/traces``); setting it to ``off`` (or
``0`` / ``none``) disables persistent caching, in which case callers fall
back to per-process temporary artifacts.  Artifacts are content-addressed
by :func:`trace_digest` and written atomically, so concurrent writers of
the same digest are harmless (last rename wins, both files are identical).
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple, Union

from repro.obs.metrics import registry as _metrics_registry
from repro.tracing.columnar import ColumnarTrace, artifact_suffix, have_numpy

#: Default cache directory when ``REPRO_TRACE_CACHE`` is unset.
DEFAULT_CACHE_DIR = "~/.cache/repro/traces"

#: ``REPRO_TRACE_CACHE`` values that disable persistent caching.
_DISABLED = frozenset({"0", "off", "none", "disabled"})

#: Suffixes an artifact may carry (NumPy and pure-python writers differ).
_SUFFIXES = (".npz", ".jsonl")


def trace_digest(
    workload_name: str, workload_kwargs: Optional[Dict[str, object]] = None
) -> str:
    """Content address of a workload's golden trace.

    Two invocations with the same workload name and constructor kwargs
    denote the same deterministic execution, hence the same trace.  The
    columnar format version and the package version participate so a
    layout change — or a release that may have touched workload kernels —
    invalidates old artifacts instead of silently reusing a stale trace.
    (Editing workload code *between* releases still requires clearing the
    cache directory by hand; digests cannot see source edits.)
    """
    from repro.version import __version__

    payload = json.dumps(
        {
            "workload": workload_name,
            "workload_kwargs": dict(workload_kwargs or {}),
            "trace_format": ColumnarTrace.FORMAT_VERSION,
            "repro_version": __version__,
        },
        sort_keys=True,
        separators=(",", ":"),
        default=repr,
    )
    return "t" + hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


class TraceCache:
    """Filesystem cache of :class:`ColumnarTrace` artifacts.

    ``hits``/``misses`` count :meth:`get_or_build` resolutions, so smoke
    tests (and the campaign CLI's progress lines) can verify the cache is
    actually being exercised.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root).expanduser()
        self.hits = 0
        self.misses = 0

    @classmethod
    def from_env(cls) -> Optional["TraceCache"]:
        """The cache configured by ``REPRO_TRACE_CACHE`` (``None`` = off)."""
        raw = os.environ.get("REPRO_TRACE_CACHE")
        if raw is not None and raw.strip().lower() in _DISABLED:
            return None
        return cls(raw.strip() if raw else DEFAULT_CACHE_DIR)

    # ------------------------------------------------------------------ #
    def path_for(self, digest: str) -> Path:
        """Where a fresh artifact for ``digest`` would be written."""
        return self.root / f"{digest}{artifact_suffix()}"

    def find(self, digest: str) -> Optional[Path]:
        """An existing artifact for ``digest``, whatever its format."""
        for suffix in _SUFFIXES:
            if suffix == ".npz" and not have_numpy():
                continue  # written by a NumPy process, unreadable here
            candidate = self.root / f"{digest}{suffix}"
            if candidate.is_file():
                return candidate
        return None

    def load(self, digest: str) -> Optional[ColumnarTrace]:
        path = self.find(digest)
        if path is None:
            return None
        return ColumnarTrace.load(path)

    def store(self, digest: str, trace: ColumnarTrace) -> Path:
        self.root.mkdir(parents=True, exist_ok=True)
        return trace.save(self.path_for(digest))

    def get_or_build(
        self, digest: str, build: Callable[[], ColumnarTrace]
    ) -> Tuple[ColumnarTrace, bool]:
        """The cached trace for ``digest``, building and storing on miss.

        Returns ``(trace, hit)`` where ``hit`` says whether the artifact
        was served from disk.
        """
        reg = _metrics_registry()
        cached = self.load(digest)
        if cached is not None:
            self.hits += 1
            if reg.enabled:
                reg.inc("trace_cache.hits")
            return cached, True
        self.misses += 1
        if reg.enabled:
            reg.inc("trace_cache.misses")
        trace = build()
        self.store(digest, trace)
        return trace, False


class MemoCache:
    """Filesystem cache of persisted convergence-memo artifacts.

    The :class:`~repro.core.replay.ReplayMemo` a batched replay context
    grows is a pure function of the trace it replays against and the engine
    dispatch strategy, so its serialised form can live next to the
    golden-trace artifact and warm-start every later consumer of the same
    trace: campaign worker processes, resumed campaigns, and ``protect
    validate`` reruns.  Artifacts are keyed by trace digest + engine
    backend + memo format version (``{digest}.memo.{backend}.v{N}.json``);
    any mismatch simply misses — memos are an accelerator, never a
    correctness input.

    The cache directory comes from ``REPRO_MEMO_CACHE`` and *defaults to
    following* ``REPRO_TRACE_CACHE`` (same directory, same ``off``
    values), so existing configurations pick up memo persistence without a
    second knob.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root).expanduser()

    @classmethod
    def from_env(cls) -> Optional["MemoCache"]:
        """The cache configured by ``REPRO_MEMO_CACHE`` (``None`` = off).

        Unset falls back to ``REPRO_TRACE_CACHE`` (then to the default
        trace-cache directory), so the memo artifact sits next to the
        golden trace it belongs to unless explicitly redirected.
        """
        raw = os.environ.get("REPRO_MEMO_CACHE")
        if raw is None:
            raw = os.environ.get("REPRO_TRACE_CACHE")
        if raw is not None and raw.strip().lower() in _DISABLED:
            return None
        return cls(raw.strip() if raw else DEFAULT_CACHE_DIR)

    # ------------------------------------------------------------------ #
    def path_for(self, digest: str, backend: str) -> Path:
        from repro.core.replay import MEMO_FORMAT_VERSION

        return self.root / (
            f"{digest}.memo.{backend}.v{MEMO_FORMAT_VERSION}.json"
        )

    def load(self, digest: str, backend: str) -> Optional[Dict[str, object]]:
        """The persisted payload for ``(digest, backend)``, or ``None``.

        Unreadable, corrupt, or format-mismatched artifacts all read as a
        cold memo — the file name pins backend and version, but a payload
        rewritten by a different process is still re-checked here.
        """
        from repro.core.replay import MEMO_FORMAT_VERSION

        path = self.path_for(digest, backend)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("format") != MEMO_FORMAT_VERSION
            or payload.get("backend", backend) != backend
        ):
            return None
        reg = _metrics_registry()
        if reg.enabled:
            reg.inc("replay.memo_persist_loads")
        return payload

    def store(self, digest: str, backend: str,
              payload: Dict[str, object]) -> Path:
        """Atomically persist ``payload`` (last rename wins)."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(digest, backend)
        stamped = dict(payload)
        stamped["backend"] = backend
        stamped["trace"] = digest
        tmp = path.with_name(path.name + f".tmp.{os.getpid()}")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(stamped, handle, separators=(",", ":"))
        os.replace(tmp, path)
        return path

    def merge_store(self, digest: str, backend: str,
                    delta: Optional[Dict[str, object]]) -> Optional[Path]:
        """Fold a learned delta into the persisted artifact and rewrite it.

        Reads the current artifact, merges (existing entries win, so
        concurrent merges of disjoint worker deltas commute), and writes
        back atomically.  A ``None``/empty delta is a no-op.
        """
        from repro.core.replay import ReplayMemo

        if not delta or not delta.get("keys"):
            return None
        base = self.load(digest, backend)
        merged = ReplayMemo.merge_payloads(base, delta)
        if merged is None or merged is base:
            return None
        reg = _metrics_registry()
        if reg.enabled:
            reg.inc("replay.memo_persist_merges")
        return self.store(digest, backend, merged)
