"""First-class columnar trace store (struct-of-arrays).

:class:`ColumnarTrace` is the shared, durable representation of a golden
execution: events are decomposed into parallel per-field columns (CSR-style
for the variable-length operand fields), NumPy views over the hot integer
columns are materialised on demand for the vectorized analysis passes
(:mod:`repro.core.passes`), and the whole trace round-trips through a
``.npz`` artifact so golden traces become cacheable assets shared between
campaign runs and worker processes (:mod:`repro.tracing.cache`).

Three consumption styles, one object:

* **sink** — the execution engine streams events in (``wants_events = True``,
  :meth:`append`), exactly like the classic :class:`~repro.tracing.trace.Trace`;
* **trace-like** — ``len`` / integer indexing / iteration reconstruct
  :class:`~repro.tracing.events.TraceEvent` views (memoised, so analyses
  that revisit the same dynamic window pay the materialisation once);
* **columns** — :meth:`columns` exposes the integer columns as NumPy arrays
  (opcodes, object ids, element indices, producer links, operand kinds,
  CSR offsets) for array-at-a-time passes.

NumPy is optional: without it (or with ``REPRO_NO_NUMPY=1``) the store keeps
working in pure Python — :meth:`columns` returns ``None``, analyses fall
back to their scan implementations, and persistence uses the JSON-lines
format instead of ``.npz``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.ir.instructions import Opcode
from repro.ir.types import parse_type
from repro.tracing.events import OperandKind, TraceEvent
from repro.tracing.trace import Trace

if os.environ.get("REPRO_NO_NUMPY"):  # forced pure-python fallback (CI leg)
    _np = None
else:  # pragma: no branch - import guard
    try:
        import numpy as _np  # type: ignore[no-redef]
    except ImportError:  # pragma: no cover - numpy is a baseline dep
        _np = None


def have_numpy() -> bool:
    """Whether the columnar store is NumPy-backed in this process."""
    return _np is not None


def artifact_suffix() -> str:
    """File suffix of newly written trace artifacts (backend-dependent)."""
    return ".npz" if _np is not None else ".jsonl"


#: Stable in-process opcode/kind code tables (persisted artifacts carry their
#: own string vocabularies and are remapped on load, so the numeric codes
#: never leak out of the process).
_OPCODES: List[Opcode] = list(Opcode)
_OPCODE_CODE: Dict[Opcode, int] = {op: i for i, op in enumerate(_OPCODES)}
_KINDS: List[OperandKind] = list(OperandKind)
_KIND_CODE: Dict[OperandKind, int] = {k: i for i, k in enumerate(_KINDS)}

LOAD_CODE = _OPCODE_CODE[Opcode.LOAD]
STORE_CODE = _OPCODE_CODE[Opcode.STORE]
INSTRUCTION_KIND_CODE = _KIND_CODE[OperandKind.INSTRUCTION]


class TraceColumns:
    """NumPy views over the integer columns of a :class:`ColumnarTrace`.

    ``None``-valued optional fields are encoded as ``-1``;
    ``object_index`` maps data-object names to the ids in ``object_id``.
    """

    __slots__ = (
        "opcode", "static_uid", "address", "object_id", "element",
        "offsets", "producers", "kinds", "owner", "object_index",
    )

    def __init__(self, opcode, static_uid, address, object_id, element,
                 offsets, producers, kinds, owner,
                 object_index: Dict[str, int]) -> None:
        self.opcode = opcode
        self.static_uid = static_uid
        self.address = address
        self.object_id = object_id
        self.element = element
        self.offsets = offsets
        self.producers = producers
        self.kinds = kinds
        #: owning event id of every flattened operand (``repeat`` of ids).
        self.owner = owner
        self.object_index = object_index


class BlockStatic:
    """Static (per-program) columns of one fused MIR segment.

    The superinstruction backend (:mod:`repro.mir.fuse`) precomputes, once
    per segment at codegen time, every trace column that does not depend on
    dynamic state: opcodes, locations, operand types/kinds with their CSR
    ``ends``, result types, predicates and callees.  A traced
    superinstruction then only accumulates the dynamic columns and hands
    both to :meth:`ColumnarTrace.append_block` for one bulk extend per
    executed segment.
    """

    __slots__ = (
        "n", "opcodes", "functions", "blocks", "static_uids", "source_lines",
        "operand_types", "operand_kinds", "ends", "result_types",
        "predicates", "callees",
    )

    def __init__(
        self, n, opcodes, functions, blocks, static_uids, source_lines,
        operand_types, operand_kinds, ends, result_types, predicates, callees,
    ) -> None:
        self.n = n
        self.opcodes = opcodes
        self.functions = functions
        self.blocks = blocks
        self.static_uids = static_uids
        self.source_lines = source_lines
        self.operand_types = operand_types
        self.operand_kinds = operand_kinds
        self.ends = ends
        self.result_types = result_types
        self.predicates = predicates
        self.callees = callees


class ColumnarTrace:
    """Compact columnar event storage with array views and persistence.

    The 1:1 promotion of the PR-1 ``ColumnarTraceSink`` into the analysis
    stack's first-class trace: same append contract and event
    reconstruction, plus :meth:`columns`, :meth:`save`/:meth:`load` and
    event memoisation.
    """

    wants_events = True

    #: Bumped when the persisted column layout changes (participates in the
    #: trace-cache digest so stale artifacts are never misread).
    FORMAT_VERSION = 1

    __slots__ = (
        "_opcode", "_function", "_block", "_static_uid", "_source_line",
        "_operand_data", "_operand_types", "_operand_producers",
        "_operand_kinds", "_operand_offsets",
        "_result_value", "_result_type", "_predicate", "_callee",
        "_address", "_object_name", "_element_index", "_writer_id",
        "_taken_label", "_cols", "_event_cache",
    )

    def __init__(self) -> None:
        self._opcode: List[Opcode] = []
        self._function: List[str] = []
        self._block: List[str] = []
        self._static_uid: List[int] = []
        self._source_line: List[Optional[int]] = []
        self._operand_data: List[object] = []
        self._operand_types: List[object] = []
        self._operand_producers: List[int] = []
        self._operand_kinds: List[OperandKind] = []
        self._operand_offsets: List[int] = [0]
        self._result_value: List[Optional[object]] = []
        self._result_type: List[Optional[object]] = []
        self._predicate: List[Optional[str]] = []
        self._callee: List[Optional[str]] = []
        self._address: List[Optional[int]] = []
        self._object_name: List[Optional[str]] = []
        self._element_index: List[Optional[int]] = []
        self._writer_id: List[int] = []
        self._taken_label: List[Optional[str]] = []
        self._cols: Optional[TraceColumns] = None
        self._event_cache: Dict[int, TraceEvent] = {}

    # ------------------------------------------------------------------ #
    # sink protocol
    # ------------------------------------------------------------------ #
    def append(self, event: TraceEvent) -> None:
        if event.dynamic_id != len(self._opcode):
            raise ValueError(
                f"trace events must be appended in order: expected id "
                f"{len(self._opcode)}, got {event.dynamic_id}"
            )
        self._cols = None
        self._opcode.append(event.opcode)
        self._function.append(event.function)
        self._block.append(event.block)
        self._static_uid.append(event.static_uid)
        self._source_line.append(event.source_line)
        self._operand_data.extend(event.operand_values)
        self._operand_types.extend(event.operand_types)
        self._operand_producers.extend(event.operand_producers)
        self._operand_kinds.extend(event.operand_kinds)
        self._operand_offsets.append(len(self._operand_data))
        self._result_value.append(event.result_value)
        self._result_type.append(event.result_type)
        self._predicate.append(event.predicate)
        self._callee.append(event.callee)
        self._address.append(event.address)
        self._object_name.append(event.object_name)
        self._element_index.append(event.element_index)
        self._writer_id.append(event.writer_id)
        self._taken_label.append(event.taken_label)

    def append_block(
        self,
        static: BlockStatic,
        n: int,
        base_id: int,
        values: List[object],
        producers: List[int],
        results: List[object],
        addresses: List[Optional[int]],
        object_names: List[Optional[str]],
        element_indexes: List[Optional[int]],
        writer_ids: List[int],
        taken_labels: List[Optional[str]],
    ) -> None:
        """Bulk-append ``n`` events of one executed MIR segment.

        ``static`` carries the segment's precomputed static columns;
        ``values``/``producers`` are the flat (CSR) dynamic operand columns
        and the rest are per-event dynamic columns.  ``n < static.n``
        appends the completed prefix of a segment whose ``n``-th op crashed
        (the crashing op itself contributes no event, exactly like the op
        loop); the flat lists may extend past the prefix and are sliced to
        the CSR cut.
        """
        if base_id != len(self._opcode):
            raise ValueError(
                f"trace events must be appended in order: expected id "
                f"{len(self._opcode)}, got {base_id}"
            )
        self._cols = None
        ends = static.ends
        if n == static.n:
            cut = ends[-1] if ends else 0
            self._opcode.extend(static.opcodes)
            self._function.extend(static.functions)
            self._block.extend(static.blocks)
            self._static_uid.extend(static.static_uids)
            self._source_line.extend(static.source_lines)
            self._operand_types.extend(static.operand_types)
            self._operand_kinds.extend(static.operand_kinds)
            self._result_type.extend(static.result_types)
            self._predicate.extend(static.predicates)
            self._callee.extend(static.callees)
            self._result_value.extend(results)
            self._address.extend(addresses)
            self._object_name.extend(object_names)
            self._element_index.extend(element_indexes)
            self._writer_id.extend(writer_ids)
            self._taken_label.extend(taken_labels)
        else:
            cut = ends[n - 1] if n else 0
            ends = ends[:n]
            self._opcode.extend(static.opcodes[:n])
            self._function.extend(static.functions[:n])
            self._block.extend(static.blocks[:n])
            self._static_uid.extend(static.static_uids[:n])
            self._source_line.extend(static.source_lines[:n])
            self._operand_types.extend(static.operand_types[:cut])
            self._operand_kinds.extend(static.operand_kinds[:cut])
            self._result_type.extend(static.result_types[:n])
            self._predicate.extend(static.predicates[:n])
            self._callee.extend(static.callees[:n])
            self._result_value.extend(results[:n])
            self._address.extend(addresses[:n])
            self._object_name.extend(object_names[:n])
            self._element_index.extend(element_indexes[:n])
            self._writer_id.extend(writer_ids[:n])
            self._taken_label.extend(taken_labels[:n])
        if len(values) > cut:
            values = values[:cut]
            producers = producers[:cut]
        self._operand_data.extend(values)
        self._operand_producers.extend(producers)
        base = self._operand_offsets[-1]
        self._operand_offsets.extend(base + end for end in ends)

    def tick(self, opcode: Opcode) -> None:  # pragma: no cover - not used
        raise TypeError("ColumnarTrace stores full events; use append()")

    @classmethod
    def from_events(cls, events) -> "ColumnarTrace":
        """Build a columnar trace from any iterable of events."""
        trace = cls()
        for event in events:
            trace.append(event)
        return trace

    # ------------------------------------------------------------------ #
    # read access (TraceLike: len / getitem / iter)
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._opcode)

    def __getitem__(self, dynamic_id: int) -> TraceEvent:
        if dynamic_id < 0:
            dynamic_id += len(self._opcode)
        cached = self._event_cache.get(dynamic_id)
        if cached is not None:
            return cached
        event = self._materialize(dynamic_id)
        # Memoise random access only: analyses revisit the same dynamic
        # windows (propagation, masking), while full iterations (__iter__)
        # must not pin an event-object copy of the whole trace.
        self._event_cache[dynamic_id] = event
        return event

    def _materialize(self, dynamic_id: int) -> TraceEvent:
        if not 0 <= dynamic_id < len(self._opcode):
            raise IndexError(f"trace index {dynamic_id} out of range")
        lo = self._operand_offsets[dynamic_id]
        hi = self._operand_offsets[dynamic_id + 1]
        return TraceEvent(
            dynamic_id=dynamic_id,
            opcode=self._opcode[dynamic_id],
            function=self._function[dynamic_id],
            block=self._block[dynamic_id],
            static_uid=self._static_uid[dynamic_id],
            source_line=self._source_line[dynamic_id],
            operand_values=tuple(self._operand_data[lo:hi]),
            operand_types=tuple(self._operand_types[lo:hi]),
            operand_producers=tuple(self._operand_producers[lo:hi]),
            operand_kinds=tuple(self._operand_kinds[lo:hi]),
            result_value=self._result_value[dynamic_id],
            result_type=self._result_type[dynamic_id],
            predicate=self._predicate[dynamic_id],
            callee=self._callee[dynamic_id],
            address=self._address[dynamic_id],
            object_name=self._object_name[dynamic_id],
            element_index=self._element_index[dynamic_id],
            writer_id=self._writer_id[dynamic_id],
            taken_label=self._taken_label[dynamic_id],
        )

    def __iter__(self) -> Iterator[TraceEvent]:
        cache_get = self._event_cache.get
        for dynamic_id in range(len(self._opcode)):
            yield cache_get(dynamic_id) or self._materialize(dynamic_id)

    # ------------------------------------------------------------------ #
    # cheap per-field accessors (used by the vectorized passes to avoid
    # materialising whole events)
    # ------------------------------------------------------------------ #
    def opcode_of(self, dynamic_id: int) -> Opcode:
        return self._opcode[dynamic_id]

    def static_uid_of(self, dynamic_id: int) -> int:
        return self._static_uid[dynamic_id]

    def element_index_of(self, dynamic_id: int) -> Optional[int]:
        return self._element_index[dynamic_id]

    def operand_count(self, dynamic_id: int) -> int:
        return self._operand_offsets[dynamic_id + 1] - self._operand_offsets[dynamic_id]

    def operand_value(self, dynamic_id: int, index: int):
        return self._operand_data[self._operand_offsets[dynamic_id] + index]

    def operand_type(self, dynamic_id: int, index: int):
        return self._operand_types[self._operand_offsets[dynamic_id] + index]

    def operand_producers_of(self, dynamic_id: int) -> List[int]:
        lo = self._operand_offsets[dynamic_id]
        hi = self._operand_offsets[dynamic_id + 1]
        return self._operand_producers[lo:hi]

    def object_name_of(self, dynamic_id: int) -> Optional[str]:
        return self._object_name[dynamic_id]

    # ------------------------------------------------------------------ #
    # column views
    # ------------------------------------------------------------------ #
    def columns(self) -> Optional[TraceColumns]:
        """NumPy views over the integer columns (``None`` without NumPy).

        Built lazily, cached until the next :meth:`append`.
        """
        if _np is None:
            return None
        if self._cols is not None:
            return self._cols
        n = len(self._opcode)
        flat = len(self._operand_producers)
        object_index: Dict[str, int] = {}
        object_id = _np.empty(n, dtype=_np.int64)
        for i, name in enumerate(self._object_name):
            if name is None:
                object_id[i] = -1
            else:
                oid = object_index.get(name)
                if oid is None:
                    oid = object_index[name] = len(object_index)
                object_id[i] = oid
        offsets = _np.fromiter(self._operand_offsets, dtype=_np.int64, count=n + 1)
        self._cols = TraceColumns(
            opcode=_np.fromiter(
                (_OPCODE_CODE[op] for op in self._opcode), dtype=_np.int16, count=n
            ),
            static_uid=_np.fromiter(self._static_uid, dtype=_np.int64, count=n),
            address=_np.fromiter(
                (-1 if a is None else a for a in self._address),
                dtype=_np.int64, count=n,
            ),
            object_id=object_id,
            element=_np.fromiter(
                (-1 if e is None else e for e in self._element_index),
                dtype=_np.int64, count=n,
            ),
            offsets=offsets,
            producers=_np.fromiter(
                self._operand_producers, dtype=_np.int64, count=flat
            ),
            kinds=_np.fromiter(
                (_KIND_CODE[k] for k in self._operand_kinds),
                dtype=_np.int8, count=flat,
            ),
            owner=_np.repeat(_np.arange(n, dtype=_np.int64), _np.diff(offsets)),
            object_index=object_index,
        )
        return self._cols

    # ------------------------------------------------------------------ #
    # conversions and summaries (ColumnarTraceSink API, kept)
    # ------------------------------------------------------------------ #
    def to_trace(self) -> Trace:
        """Materialise a full :class:`Trace` (with its query indices)."""
        trace = Trace()
        for event in self:
            trace.append(event)
        return trace

    def opcode_histogram(self) -> Dict[str, int]:
        histogram: Dict[str, int] = {}
        for opcode in self._opcode:
            histogram[opcode.value] = histogram.get(opcode.value, 0) + 1
        return histogram

    def addresses(self) -> List[Tuple[int, int]]:
        """``(dynamic_id, address)`` for every memory access, in order."""
        return [
            (i, address)
            for i, address in enumerate(self._address)
            if address is not None
        ]

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    def save(self, path: Union[str, Path]) -> Path:
        """Write the trace to ``path`` (``.npz`` with NumPy, JSONL otherwise).

        The format is chosen by suffix; ``.npz`` requires NumPy.  Writes go
        through a uniquely named temp file in the target directory plus an
        atomic rename, so a crashed writer never leaves a truncated
        artifact behind and concurrent writers of the same path (e.g. two
        campaign processes missing the same cache digest) cannot interleave
        — the last complete rename wins, and both artifacts are identical.
        """
        import tempfile

        path = Path(path)
        fd, tmp_name = tempfile.mkstemp(
            prefix=path.name + ".", suffix=".tmp", dir=path.parent or None
        )
        tmp = Path(tmp_name)
        try:
            if path.suffix == ".npz":
                if _np is None:
                    raise RuntimeError(
                        "saving a .npz trace artifact requires NumPy; use a "
                        ".jsonl path for the pure-python fallback"
                    )
                with os.fdopen(fd, "wb") as fh:
                    _np.savez_compressed(fh, **self._to_arrays())
            else:
                from repro.tracing.serialize import event_to_dict

                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    fh.write(json.dumps({
                        "format": "columnar-trace",
                        "version": self.FORMAT_VERSION,
                    }) + "\n")
                    for event in self:
                        fh.write(json.dumps(event_to_dict(event)) + "\n")
            os.replace(tmp, path)
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ColumnarTrace":
        """Read a trace previously written by :meth:`save`."""
        path = Path(path)
        if path.suffix == ".npz":
            if _np is None:
                raise RuntimeError(
                    f"loading {path.name} requires NumPy (pure-python "
                    f"fallback artifacts use the .jsonl format)"
                )
            # our own artifact: object columns hold only numbers/None.
            with _np.load(path, allow_pickle=True) as data:
                trace = cls._from_arrays(data)
            trace.columns()  # seal the views while the artifact is hot
            return trace
        from repro.tracing.serialize import event_from_dict

        trace = cls()
        with open(path, "r", encoding="utf-8") as fh:
            header = json.loads(fh.readline())
            if header.get("format") != "columnar-trace":
                raise ValueError(f"{path} is not a columnar trace artifact")
            if header.get("version") != cls.FORMAT_VERSION:
                raise ValueError(
                    f"{path} has trace format version {header.get('version')}, "
                    f"this build expects {cls.FORMAT_VERSION}"
                )
            for line in fh:
                line = line.strip()
                if line:
                    trace.append(event_from_dict(json.loads(line)))
        return trace

    # ------------------------------------------------------------------ #
    def _to_arrays(self) -> Dict[str, object]:
        n = len(self._opcode)

        def encode(values):
            """String-intern a column: (id array, vocabulary array)."""
            vocab: List[str] = []
            index: Dict[str, int] = {}
            ids = _np.empty(len(values), dtype=_np.int32)
            for i, value in enumerate(values):
                if value is None:
                    ids[i] = -1
                    continue
                j = index.get(value)
                if j is None:
                    j = index[value] = len(vocab)
                    vocab.append(value)
                ids[i] = j
            return ids, _np.array(vocab, dtype=object)

        opcode_ids, opcode_vocab = encode([op.value for op in self._opcode])
        kind_ids, kind_vocab = encode([k.value for k in self._operand_kinds])
        function_ids, function_vocab = encode(self._function)
        block_ids, block_vocab = encode(self._block)
        predicate_ids, predicate_vocab = encode(self._predicate)
        callee_ids, callee_vocab = encode(self._callee)
        object_ids, object_vocab = encode(self._object_name)
        taken_ids, taken_vocab = encode(self._taken_label)
        operand_type_ids, type_vocab_a = encode(
            [None if t is None else t.name for t in self._operand_types]
        )
        result_type_ids, type_vocab_b = encode(
            [None if t is None else t.name for t in self._result_type]
        )
        return {
            "version": _np.array([self.FORMAT_VERSION], dtype=_np.int64),
            "opcode": opcode_ids, "opcode_vocab": opcode_vocab,
            "function": function_ids, "function_vocab": function_vocab,
            "block": block_ids, "block_vocab": block_vocab,
            "static_uid": _np.fromiter(self._static_uid, _np.int64, n),
            "source_line": _np.fromiter(
                (-1 if v is None else v for v in self._source_line), _np.int64, n
            ),
            "operand_values": _np.array(self._operand_data, dtype=object),
            "operand_types": operand_type_ids,
            "operand_type_vocab": type_vocab_a,
            "operand_producers": _np.fromiter(
                self._operand_producers, _np.int64, len(self._operand_producers)
            ),
            "operand_kinds": kind_ids, "kind_vocab": kind_vocab,
            "operand_offsets": _np.fromiter(self._operand_offsets, _np.int64, n + 1),
            "result_value": _np.array(self._result_value, dtype=object),
            "result_type": result_type_ids, "result_type_vocab": type_vocab_b,
            "predicate": predicate_ids, "predicate_vocab": predicate_vocab,
            "callee": callee_ids, "callee_vocab": callee_vocab,
            "address": _np.fromiter(
                (-1 if v is None else v for v in self._address), _np.int64, n
            ),
            "object_name": object_ids, "object_vocab": object_vocab,
            "element_index": _np.fromiter(
                (-1 if v is None else v for v in self._element_index), _np.int64, n
            ),
            "writer_id": _np.fromiter(self._writer_id, _np.int64, n),
            "taken_label": taken_ids, "taken_vocab": taken_vocab,
        }

    @classmethod
    def _from_arrays(cls, data) -> "ColumnarTrace":
        version = int(data["version"][0])
        if version != cls.FORMAT_VERSION:
            raise ValueError(
                f"trace artifact has format version {version}, this build "
                f"expects {cls.FORMAT_VERSION}"
            )

        def decode(ids, vocab, mapper=None):
            table = [v if mapper is None else mapper(v) for v in vocab.tolist()]
            return [None if i < 0 else table[i] for i in ids.tolist()]

        def optional(array):
            return [None if v < 0 else v for v in array.tolist()]

        trace = cls()
        trace._opcode = decode(data["opcode"], data["opcode_vocab"], Opcode)
        trace._function = decode(data["function"], data["function_vocab"])
        trace._block = decode(data["block"], data["block_vocab"])
        trace._static_uid = data["static_uid"].tolist()
        trace._source_line = optional(data["source_line"])
        trace._operand_data = data["operand_values"].tolist()
        trace._operand_types = decode(
            data["operand_types"], data["operand_type_vocab"], parse_type
        )
        trace._operand_producers = data["operand_producers"].tolist()
        trace._operand_kinds = decode(
            data["operand_kinds"], data["kind_vocab"], OperandKind
        )
        trace._operand_offsets = data["operand_offsets"].tolist()
        trace._result_value = data["result_value"].tolist()
        trace._result_type = decode(
            data["result_type"], data["result_type_vocab"], parse_type
        )
        trace._predicate = decode(data["predicate"], data["predicate_vocab"])
        trace._callee = decode(data["callee"], data["callee_vocab"])
        trace._address = optional(data["address"])
        trace._object_name = decode(data["object_name"], data["object_vocab"])
        trace._element_index = optional(data["element_index"])
        trace._writer_id = data["writer_id"].tolist()
        trace._taken_label = decode(data["taken_label"], data["taken_vocab"])
        return trace

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        backend = "numpy" if _np is not None else "pure-python"
        return f"<ColumnarTrace: {len(self)} events, {backend}>"
