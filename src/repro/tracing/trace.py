"""The in-memory dynamic trace and its query helpers."""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.ir.instructions import Opcode
from repro.tracing.events import OperandKind, TraceEvent


@dataclass
class TraceSummary:
    """Aggregate statistics over a trace (for reports and sanity checks)."""

    total_events: int
    by_opcode: Dict[str, int]
    loads: int
    stores: int
    objects_touched: Dict[str, int]
    functions: Dict[str, int]


class Trace:
    """An ordered sequence of :class:`TraceEvent` with lookup indices.

    Events are appended by the VM in execution order; ``dynamic_id`` equals
    the position in the list, which the analyses rely on for O(1) producer
    lookups.  ``Trace`` is the full-fidelity implementation of the
    :class:`~repro.tracing.sinks.TraceSink` protocol — see that module for
    the compact and counting alternatives.
    """

    #: Sink-protocol flag: this sink stores complete events.
    wants_events = True

    def __init__(self) -> None:
        self._events: List[TraceEvent] = []
        #: name -> list of dynamic ids of events touching the object's memory
        self._touch_index: Dict[str, List[int]] = {}

    @property
    def events(self) -> List[TraceEvent]:
        """Deprecated: the concrete event list.

        Reaching into ``Trace.events`` ties callers to the full in-memory
        trace; analyses should go through the ``TraceLike`` protocol
        (``len`` / indexing / iteration, see :mod:`repro.tracing.cursor`)
        so they also accept the columnar store.
        """
        warnings.warn(
            "direct Trace.events access is deprecated; iterate/index the "
            "trace itself (TraceLike protocol) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._events

    def tick(self, opcode: Opcode) -> None:  # pragma: no cover - protocol
        raise TypeError("Trace stores full events; use append()")

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def append(self, event: TraceEvent) -> None:
        if event.dynamic_id != len(self._events):
            raise ValueError(
                f"trace events must be appended in order: expected id "
                f"{len(self._events)}, got {event.dynamic_id}"
            )
        self._events.append(event)
        if event.object_name is not None:
            self._touch_index.setdefault(event.object_name, []).append(event.dynamic_id)

    # ------------------------------------------------------------------ #
    # basic container protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def __getitem__(self, dynamic_id: int) -> TraceEvent:
        return self._events[dynamic_id]

    # ------------------------------------------------------------------ #
    # queries used by the MOARD analyses
    # ------------------------------------------------------------------ #
    def memory_events_for(self, object_name: str) -> List[TraceEvent]:
        """All loads/stores whose address resolves into ``object_name``."""
        return [self._events[i] for i in self._touch_index.get(object_name, [])]

    def loads_for(self, object_name: str) -> List[TraceEvent]:
        return [e for e in self.memory_events_for(object_name) if e.is_load]

    def stores_for(self, object_name: str) -> List[TraceEvent]:
        return [e for e in self.memory_events_for(object_name) if e.is_store]

    def consumers_of(self, dynamic_id: int, window: Optional[int] = None) -> List[TraceEvent]:
        """Events that use the result of ``dynamic_id`` as an operand.

        ``window`` bounds how far forward to look (number of subsequent
        events); ``None`` scans to the end of the trace.
        """
        end = len(self._events) if window is None else min(
            len(self._events), dynamic_id + 1 + window
        )
        out: List[TraceEvent] = []
        for event in self._events[dynamic_id + 1 : end]:
            if dynamic_id in event.operand_producers:
                out.append(event)
        return out

    def producer_event(self, event: TraceEvent, operand_index: int) -> Optional[TraceEvent]:
        """The event that produced operand ``operand_index``, if any."""
        producer = event.operand_producers[operand_index]
        if producer < 0:
            return None
        return self._events[producer]

    def operand_is_direct_load_of(
        self, event: TraceEvent, operand_index: int, object_name: str
    ) -> Optional[Tuple[int, int]]:
        """If the operand is the unmodified result of a load from the object.

        Returns ``(element index, load dynamic id)`` when operand
        ``operand_index`` of ``event`` is directly the value loaded from
        ``object_name`` (no intervening arithmetic), else ``None``.  This is
        the trace-level notion of "an operation consumes an element of the
        target data object" used by the aDVF engine.
        """
        if event.operand_kinds[operand_index] is not OperandKind.INSTRUCTION:
            return None
        producer = self.producer_event(event, operand_index)
        if producer is None or not producer.is_load:
            return None
        if producer.object_name != object_name:
            return None
        return (producer.element_index, producer.dynamic_id)  # type: ignore[return-value]

    def filter(self, predicate: Callable[[TraceEvent], bool]) -> List[TraceEvent]:
        """Events satisfying ``predicate`` (keeps order)."""
        return [e for e in self._events if predicate(e)]

    def slice(self, start: int, count: int) -> List[TraceEvent]:
        """``count`` events starting at dynamic id ``start``."""
        return self._events[start : start + count]

    # ------------------------------------------------------------------ #
    # statistics
    # ------------------------------------------------------------------ #
    def summary(self) -> TraceSummary:
        by_opcode: Dict[str, int] = {}
        objects: Dict[str, int] = {}
        functions: Dict[str, int] = {}
        loads = stores = 0
        for event in self._events:
            by_opcode[event.opcode.value] = by_opcode.get(event.opcode.value, 0) + 1
            functions[event.function] = functions.get(event.function, 0) + 1
            if event.is_load:
                loads += 1
            elif event.is_store:
                stores += 1
            if event.object_name is not None:
                objects[event.object_name] = objects.get(event.object_name, 0) + 1
        return TraceSummary(
            total_events=len(self._events),
            by_opcode=by_opcode,
            loads=loads,
            stores=stores,
            objects_touched=objects,
            functions=functions,
        )

    def opcode_histogram(self) -> Dict[str, int]:
        return self.summary().by_opcode

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Trace: {len(self._events)} events>"
