"""Trace (de)serialisation.

Traces are written as JSON-lines: one event per line, types spelled with
their canonical IR names.  The format is intentionally self-contained so a
trace captured on one machine (or by a worker process in a parallel
campaign) can be analysed on another.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Optional, Union

from repro.ir.instructions import Opcode
from repro.ir.types import IRType, parse_type
from repro.tracing.events import OperandKind, TraceEvent
from repro.tracing.trace import Trace


def _type_name(ir_type: Optional[object]) -> Optional[str]:
    if ir_type is None:
        return None
    assert isinstance(ir_type, IRType)
    return ir_type.name


def event_to_dict(event: TraceEvent) -> dict:
    """Convert one event to a JSON-serialisable dict."""
    return {
        "id": event.dynamic_id,
        "op": event.opcode.value,
        "fn": event.function,
        "bb": event.block,
        "static": event.static_uid,
        "line": event.source_line,
        "ov": list(event.operand_values),
        "ot": [_type_name(t) for t in event.operand_types],
        "op_prod": list(event.operand_producers),
        "op_kind": [k.value for k in event.operand_kinds],
        "rv": event.result_value,
        "rt": _type_name(event.result_type),
        "pred": event.predicate,
        "callee": event.callee,
        "addr": event.address,
        "obj": event.object_name,
        "elt": event.element_index,
        "writer": event.writer_id,
        "taken": event.taken_label,
    }


def event_from_dict(data: dict) -> TraceEvent:
    """Inverse of :func:`event_to_dict`."""
    return TraceEvent(
        dynamic_id=data["id"],
        opcode=Opcode(data["op"]),
        function=data["fn"],
        block=data["bb"],
        static_uid=data["static"],
        source_line=data["line"],
        operand_values=tuple(data["ov"]),
        operand_types=tuple(parse_type(t) if t else None for t in data["ot"]),
        operand_producers=tuple(data["op_prod"]),
        operand_kinds=tuple(OperandKind(k) for k in data["op_kind"]),
        result_value=data["rv"],
        result_type=parse_type(data["rt"]) if data["rt"] else None,
        predicate=data["pred"],
        callee=data["callee"],
        address=data["addr"],
        object_name=data["obj"],
        element_index=data["elt"],
        writer_id=data["writer"],
        taken_label=data["taken"],
    )


def trace_to_jsonl(trace: Trace) -> str:
    """Render a whole trace as JSON-lines text."""
    return "\n".join(json.dumps(event_to_dict(e)) for e in trace)


def trace_from_jsonl(text: str) -> Trace:
    """Parse JSON-lines text back into a :class:`Trace`."""
    trace = Trace()
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        trace.append(event_from_dict(json.loads(line)))
    return trace


def save_trace(trace: Trace, path: Union[str, Path]) -> None:
    """Write a trace to ``path`` as JSON-lines."""
    Path(path).write_text(trace_to_jsonl(trace) + "\n", encoding="utf-8")


def load_trace(path: Union[str, Path]) -> Trace:
    """Read a trace previously written by :func:`save_trace`."""
    return trace_from_jsonl(Path(path).read_text(encoding="utf-8"))
