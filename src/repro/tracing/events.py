"""Trace event records.

One :class:`TraceEvent` is emitted per executed IR instruction.  The fields
are chosen to make the three MOARD analyses possible *without re-executing
the program*:

* operation-level analysis needs the opcode, predicate, operand values and
  operand types;
* error-propagation analysis needs producer links (which earlier dynamic
  instruction produced each operand, and which store last wrote the memory a
  load reads) so corrupted values can be chased forward;
* data-semantics association needs the ``(object, element)`` resolution of
  every load/store address.
"""

from __future__ import annotations

import enum
from typing import Optional, Tuple, Union

from repro.ir.instructions import Opcode

Number = Union[int, float]


class OperandKind(enum.Enum):
    """How an operand value came to be."""

    #: Result of an earlier dynamic instruction (``producer`` is its id).
    INSTRUCTION = "instr"
    #: A literal constant embedded in the IR.
    CONSTANT = "const"
    #: A function argument (pointer base addresses and scalar parameters).
    ARGUMENT = "arg"


class TraceEvent:
    """A single executed instruction.

    Attributes are documented in the module docstring; ``producer`` entries
    are ``-1`` when the operand is a constant or an argument, and
    ``writer_id`` is ``-1`` when a load reads memory never written during the
    traced execution (initial workload data).
    """

    __slots__ = (
        "dynamic_id",
        "opcode",
        "function",
        "block",
        "static_uid",
        "source_line",
        "operand_values",
        "operand_types",
        "operand_producers",
        "operand_kinds",
        "result_value",
        "result_type",
        "predicate",
        "callee",
        "address",
        "object_name",
        "element_index",
        "writer_id",
        "taken_label",
    )

    def __init__(
        self,
        dynamic_id: int,
        opcode: Opcode,
        function: str,
        block: str,
        static_uid: int,
        source_line: Optional[int],
        operand_values: Tuple[Number, ...],
        operand_types: Tuple[object, ...],
        operand_producers: Tuple[int, ...],
        operand_kinds: Tuple[OperandKind, ...],
        result_value: Optional[Number],
        result_type: Optional[object],
        predicate: Optional[str] = None,
        callee: Optional[str] = None,
        address: Optional[int] = None,
        object_name: Optional[str] = None,
        element_index: Optional[int] = None,
        writer_id: int = -1,
        taken_label: Optional[str] = None,
    ) -> None:
        self.dynamic_id = dynamic_id
        self.opcode = opcode
        self.function = function
        self.block = block
        self.static_uid = static_uid
        self.source_line = source_line
        self.operand_values = operand_values
        self.operand_types = operand_types
        self.operand_producers = operand_producers
        self.operand_kinds = operand_kinds
        self.result_value = result_value
        self.result_type = result_type
        self.predicate = predicate
        self.callee = callee
        self.address = address
        self.object_name = object_name
        self.element_index = element_index
        self.writer_id = writer_id
        self.taken_label = taken_label

    # ------------------------------------------------------------------ #
    # classification helpers used throughout the analyses
    # ------------------------------------------------------------------ #
    @property
    def is_load(self) -> bool:
        return self.opcode is Opcode.LOAD

    @property
    def is_store(self) -> bool:
        return self.opcode is Opcode.STORE

    @property
    def is_memory_access(self) -> bool:
        return self.opcode in (Opcode.LOAD, Opcode.STORE)

    @property
    def is_branch(self) -> bool:
        return self.opcode is Opcode.BR

    @property
    def is_call(self) -> bool:
        return self.opcode is Opcode.CALL

    @property
    def touches(self) -> Optional[Tuple[str, int]]:
        """``(object name, element index)`` for memory accesses, else ``None``."""
        if self.object_name is None or self.element_index is None:
            return None
        return (self.object_name, self.element_index)

    def operand_count(self) -> int:
        return len(self.operand_values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        extra = ""
        if self.object_name is not None:
            extra = f" -> {self.object_name}[{self.element_index}]"
        return (
            f"<TraceEvent #{self.dynamic_id} {self.opcode.value} "
            f"in {self.function}{extra}>"
        )
