"""Positioned cursor over any event source (the analyses' read API).

The MOARD analyses used to reach directly into ``Trace.events`` — a concrete
``List[TraceEvent]`` — which tied them to the full in-memory trace.  With
pluggable sinks (:mod:`repro.tracing.sinks`) events may instead live in
columnar storage and be materialised lazily, so the analyses go through a
:class:`TraceCursor`: a seekable reader over anything *trace-like* (supports
``len``, integer indexing by dynamic id, and iteration).

Both :class:`~repro.tracing.trace.Trace` and
:class:`~repro.tracing.sinks.ColumnarTraceSink` are trace-like.
"""

from __future__ import annotations

from typing import Iterator, Optional, Protocol, runtime_checkable

from repro.tracing.events import TraceEvent


@runtime_checkable
class TraceLike(Protocol):
    """Anything the analyses can read dynamic events from."""

    def __len__(self) -> int:  # pragma: no cover - protocol
        ...

    def __getitem__(self, dynamic_id: int) -> TraceEvent:  # pragma: no cover
        ...

    def __iter__(self) -> Iterator[TraceEvent]:  # pragma: no cover - protocol
        ...


class TraceCursor:
    """A seekable position in a trace-like event source.

    The cursor is intentionally tiny: ``seek`` to a dynamic id, ``peek`` the
    event there, ``advance`` through events one at a time, or ``take`` a
    bounded window — exactly the access patterns of the propagation and
    re-execution analyses.
    """

    __slots__ = ("source", "position")

    def __init__(self, source: TraceLike, position: int = 0) -> None:
        self.source = source
        self.position = 0
        self.seek(position)

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.source)

    @property
    def exhausted(self) -> bool:
        return self.position >= len(self.source)

    def seek(self, dynamic_id: int) -> "TraceCursor":
        """Move to ``dynamic_id`` (chainable)."""
        if dynamic_id < 0:
            raise ValueError("cannot seek to a negative dynamic id")
        self.position = dynamic_id
        return self

    def peek(self) -> Optional[TraceEvent]:
        """The event at the current position, or ``None`` at the end."""
        if self.exhausted:
            return None
        return self.source[self.position]

    def advance(self) -> Optional[TraceEvent]:
        """Return the event at the current position and move past it."""
        event = self.peek()
        if event is not None:
            self.position += 1
        return event

    def take(self, count: int) -> Iterator[TraceEvent]:
        """Yield up to ``count`` events from the current position.

        The cursor position tracks the iteration, so a partially consumed
        window leaves the cursor where the consumer stopped.
        """
        end = min(len(self.source), self.position + count)
        while self.position < end:
            yield self.source[self.position]
            self.position += 1

    def remaining(self) -> int:
        """Number of events between the cursor and the end of the source."""
        return max(0, len(self.source) - self.position)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TraceCursor @{self.position}/{len(self.source)}>"
