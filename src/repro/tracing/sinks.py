"""Pluggable trace sinks for the execution engine.

The engine (:mod:`repro.vm.engine`) streams its dynamic events into a
*sink*.  Different consumers need radically different fidelity:

* the aDVF analyses need every field of every event — the classic in-memory
  :class:`~repro.tracing.trace.Trace`;
* trace post-processing, serialization and the vectorized analysis passes
  only need the raw columns — :class:`~repro.tracing.columnar.ColumnarTrace`
  (historically exported here as ``ColumnarTraceSink``) stores them as
  parallel flat columns, several times smaller than a list of event
  objects, and reconstructs :class:`~repro.tracing.events.TraceEvent`
  views on demand;
* fault-injection replays need **nothing**: the :class:`CountingSink` keeps
  per-opcode tallies without ever materialising an event, so injection runs
  execute trace-free.

The contract is :class:`TraceSink`: sinks advertise via ``wants_events``
whether the engine should construct :class:`TraceEvent` objects (calling
``append``) or merely report opcodes (calling ``tick``).  ``Trace`` itself
satisfies the protocol (``wants_events = True``).
"""

from __future__ import annotations

from typing import Dict, Protocol, runtime_checkable

from repro.ir.instructions import Opcode
from repro.tracing.columnar import ColumnarTrace
from repro.tracing.events import TraceEvent


@runtime_checkable
class TraceSink(Protocol):
    """What the engine needs from a trace consumer.

    ``wants_events``
        When ``True`` the engine builds a full :class:`TraceEvent` per
        dynamic instruction and calls :meth:`append`; when ``False`` it
        calls :meth:`tick` with just the opcode — the per-step cost of the
        sink drops to one method call and no allocation.
    """

    wants_events: bool

    def append(self, event: TraceEvent) -> None:  # pragma: no cover - protocol
        ...

    def tick(self, opcode: Opcode) -> None:  # pragma: no cover - protocol
        ...


class CountingSink:
    """No-op sink: counts events (total and per opcode), stores nothing.

    This is what deterministic fault injection runs with — the execution is
    observable only through its final state, so recording events would be
    pure overhead.
    """

    wants_events = False

    __slots__ = ("total", "by_opcode")

    def __init__(self) -> None:
        self.total = 0
        self.by_opcode: Dict[str, int] = {}

    def tick(self, opcode: Opcode) -> None:
        self.total += 1
        key = opcode.value
        self.by_opcode[key] = self.by_opcode.get(key, 0) + 1

    def tick_block(self, counts: Dict[str, int], total: int) -> None:
        """Bulk-aggregate a whole superinstruction in O(distinct opcodes).

        The MIR fast path pre-computes per-segment opcode tallies at
        lowering time, so counting-sink replays pay one call per executed
        *segment* instead of one per dynamic instruction.
        """
        self.total += total
        by_opcode = self.by_opcode
        for key, count in counts.items():
            by_opcode[key] = by_opcode.get(key, 0) + count

    def append(self, event: TraceEvent) -> None:
        # accept full events too, so the sink composes with any producer
        self.tick(event.opcode)

    def __len__(self) -> int:
        return self.total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CountingSink: {self.total} events>"




#: The compact columnar sink of PR 1, promoted to the first-class
#: :class:`~repro.tracing.columnar.ColumnarTrace` (struct-of-arrays store
#: with NumPy column views, ``.npz`` persistence and a trace cache).  The
#: old name remains the canonical alias for "a compact sink to record into".
ColumnarTraceSink = ColumnarTrace
