"""Pluggable trace sinks for the execution engine.

The engine (:mod:`repro.vm.engine`) streams its dynamic events into a
*sink*.  Different consumers need radically different fidelity:

* the aDVF analyses need every field of every event — the classic in-memory
  :class:`~repro.tracing.trace.Trace`;
* trace post-processing and serialization only need the raw columns — the
  :class:`ColumnarTraceSink` stores them as parallel flat lists, several
  times smaller than a list of event objects, and reconstructs
  :class:`~repro.tracing.events.TraceEvent` views on demand;
* fault-injection replays need **nothing**: the :class:`CountingSink` keeps
  per-opcode tallies without ever materialising an event, so injection runs
  execute trace-free.

The contract is :class:`TraceSink`: sinks advertise via ``wants_events``
whether the engine should construct :class:`TraceEvent` objects (calling
``append``) or merely report opcodes (calling ``tick``).  ``Trace`` itself
satisfies the protocol (``wants_events = True``).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Protocol, Tuple, runtime_checkable

from repro.ir.instructions import Opcode
from repro.tracing.events import OperandKind, TraceEvent
from repro.tracing.trace import Trace


@runtime_checkable
class TraceSink(Protocol):
    """What the engine needs from a trace consumer.

    ``wants_events``
        When ``True`` the engine builds a full :class:`TraceEvent` per
        dynamic instruction and calls :meth:`append`; when ``False`` it
        calls :meth:`tick` with just the opcode — the per-step cost of the
        sink drops to one method call and no allocation.
    """

    wants_events: bool

    def append(self, event: TraceEvent) -> None:  # pragma: no cover - protocol
        ...

    def tick(self, opcode: Opcode) -> None:  # pragma: no cover - protocol
        ...


class CountingSink:
    """No-op sink: counts events (total and per opcode), stores nothing.

    This is what deterministic fault injection runs with — the execution is
    observable only through its final state, so recording events would be
    pure overhead.
    """

    wants_events = False

    __slots__ = ("total", "by_opcode")

    def __init__(self) -> None:
        self.total = 0
        self.by_opcode: Dict[str, int] = {}

    def tick(self, opcode: Opcode) -> None:
        self.total += 1
        key = opcode.value
        self.by_opcode[key] = self.by_opcode.get(key, 0) + 1

    def append(self, event: TraceEvent) -> None:
        # accept full events too, so the sink composes with any producer
        self.tick(event.opcode)

    def __len__(self) -> int:
        return self.total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CountingSink: {self.total} events>"


class ColumnarTraceSink:
    """Compact columnar event storage.

    Events are decomposed into parallel per-field lists; variable-length
    fields (operand values / types / producers / kinds) are flattened into
    one data list plus an offsets list, CSR style.  Compared to a list of
    :class:`TraceEvent` objects this roughly halves the memory footprint and
    keeps every column contiguous for analysis passes that only need one or
    two fields.

    Random access (``sink[i]``) reconstructs an equal :class:`TraceEvent`;
    :meth:`to_trace` materialises a full :class:`Trace` when an analysis
    needs the indexed query helpers.
    """

    wants_events = True

    __slots__ = (
        "_opcode", "_function", "_block", "_static_uid", "_source_line",
        "_operand_data", "_operand_types", "_operand_producers",
        "_operand_kinds", "_operand_offsets",
        "_result_value", "_result_type", "_predicate", "_callee",
        "_address", "_object_name", "_element_index", "_writer_id",
        "_taken_label",
    )

    def __init__(self) -> None:
        self._opcode: List[Opcode] = []
        self._function: List[str] = []
        self._block: List[str] = []
        self._static_uid: List[int] = []
        self._source_line: List[Optional[int]] = []
        self._operand_data: List[object] = []
        self._operand_types: List[object] = []
        self._operand_producers: List[int] = []
        self._operand_kinds: List[OperandKind] = []
        self._operand_offsets: List[int] = [0]
        self._result_value: List[Optional[object]] = []
        self._result_type: List[Optional[object]] = []
        self._predicate: List[Optional[str]] = []
        self._callee: List[Optional[str]] = []
        self._address: List[Optional[int]] = []
        self._object_name: List[Optional[str]] = []
        self._element_index: List[Optional[int]] = []
        self._writer_id: List[int] = []
        self._taken_label: List[Optional[str]] = []

    # ------------------------------------------------------------------ #
    # sink protocol
    # ------------------------------------------------------------------ #
    def append(self, event: TraceEvent) -> None:
        if event.dynamic_id != len(self._opcode):
            raise ValueError(
                f"trace events must be appended in order: expected id "
                f"{len(self._opcode)}, got {event.dynamic_id}"
            )
        self._opcode.append(event.opcode)
        self._function.append(event.function)
        self._block.append(event.block)
        self._static_uid.append(event.static_uid)
        self._source_line.append(event.source_line)
        self._operand_data.extend(event.operand_values)
        self._operand_types.extend(event.operand_types)
        self._operand_producers.extend(event.operand_producers)
        self._operand_kinds.extend(event.operand_kinds)
        self._operand_offsets.append(len(self._operand_data))
        self._result_value.append(event.result_value)
        self._result_type.append(event.result_type)
        self._predicate.append(event.predicate)
        self._callee.append(event.callee)
        self._address.append(event.address)
        self._object_name.append(event.object_name)
        self._element_index.append(event.element_index)
        self._writer_id.append(event.writer_id)
        self._taken_label.append(event.taken_label)

    def tick(self, opcode: Opcode) -> None:  # pragma: no cover - not used
        raise TypeError("ColumnarTraceSink stores full events; use append()")

    # ------------------------------------------------------------------ #
    # read access (TraceLike: len / getitem / iter)
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._opcode)

    def __getitem__(self, dynamic_id: int) -> TraceEvent:
        if dynamic_id < 0:
            dynamic_id += len(self._opcode)
        if not 0 <= dynamic_id < len(self._opcode):
            raise IndexError(f"trace index {dynamic_id} out of range")
        lo = self._operand_offsets[dynamic_id]
        hi = self._operand_offsets[dynamic_id + 1]
        return TraceEvent(
            dynamic_id=dynamic_id,
            opcode=self._opcode[dynamic_id],
            function=self._function[dynamic_id],
            block=self._block[dynamic_id],
            static_uid=self._static_uid[dynamic_id],
            source_line=self._source_line[dynamic_id],
            operand_values=tuple(self._operand_data[lo:hi]),
            operand_types=tuple(self._operand_types[lo:hi]),
            operand_producers=tuple(self._operand_producers[lo:hi]),
            operand_kinds=tuple(self._operand_kinds[lo:hi]),
            result_value=self._result_value[dynamic_id],
            result_type=self._result_type[dynamic_id],
            predicate=self._predicate[dynamic_id],
            callee=self._callee[dynamic_id],
            address=self._address[dynamic_id],
            object_name=self._object_name[dynamic_id],
            element_index=self._element_index[dynamic_id],
            writer_id=self._writer_id[dynamic_id],
            taken_label=self._taken_label[dynamic_id],
        )

    def __iter__(self) -> Iterator[TraceEvent]:
        for dynamic_id in range(len(self._opcode)):
            yield self[dynamic_id]

    # ------------------------------------------------------------------ #
    # conversions and column views
    # ------------------------------------------------------------------ #
    def to_trace(self) -> Trace:
        """Materialise a full :class:`Trace` (with its query indices)."""
        trace = Trace()
        for event in self:
            trace.append(event)
        return trace

    def opcode_histogram(self) -> Dict[str, int]:
        histogram: Dict[str, int] = {}
        for opcode in self._opcode:
            histogram[opcode.value] = histogram.get(opcode.value, 0) + 1
        return histogram

    def addresses(self) -> List[Tuple[int, int]]:
        """``(dynamic_id, address)`` for every memory access, in order."""
        return [
            (i, address)
            for i, address in enumerate(self._address)
            if address is not None
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ColumnarTraceSink: {len(self)} events>"
