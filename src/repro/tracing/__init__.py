"""Dynamic instruction traces.

The trace is MOARD's central data structure: the application trace generator
(our VM) records one :class:`~repro.tracing.events.TraceEvent` per executed
IR instruction, carrying operand values, producer links, and the resolution
of every memory access back to a named data object.  The trace analysis tool
(:mod:`repro.core`) consumes these events to count error-masking
opportunities per data object.

Public API
----------
:class:`~repro.tracing.events.TraceEvent`,
:class:`~repro.tracing.events.OperandKind`,
:class:`~repro.tracing.trace.Trace`,
:func:`~repro.tracing.serialize.trace_to_jsonl`,
:func:`~repro.tracing.serialize.trace_from_jsonl`.
"""

from repro.tracing.events import OperandKind, TraceEvent
from repro.tracing.trace import Trace, TraceSummary
from repro.tracing.cursor import TraceCursor, TraceLike
from repro.tracing.columnar import ColumnarTrace, TraceColumns, have_numpy
from repro.tracing.cache import TraceCache, trace_digest
from repro.tracing.sinks import ColumnarTraceSink, CountingSink, TraceSink
from repro.tracing.serialize import (
    trace_to_jsonl,
    trace_from_jsonl,
    save_trace,
    load_trace,
)

__all__ = [
    "OperandKind",
    "TraceEvent",
    "Trace",
    "TraceSummary",
    "TraceCursor",
    "TraceLike",
    "TraceSink",
    "ColumnarTrace",
    "TraceColumns",
    "ColumnarTraceSink",
    "CountingSink",
    "TraceCache",
    "trace_digest",
    "have_numpy",
    "trace_to_jsonl",
    "trace_from_jsonl",
    "save_trace",
    "load_trace",
]
