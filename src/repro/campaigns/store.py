"""Append-only SQLite persistence for fault-injection campaigns.

The :class:`CampaignStore` is the durable half of the campaign subsystem:
per-spec injection outcomes, per-shard completion records, orchestrator
run bookkeeping and per-object aDVF reports all land here, in one SQLite
file that survives interrupts, crashes and machine restarts.

Design points:

* **Content-addressed campaigns.**  A campaign's identity is the SHA-256
  of its canonical JSON description (workload name + constructor kwargs +
  plan + shard size), so re-running the same command resumes the existing
  campaign instead of duplicating work.
* **Append-only writes.**  A shard's outcomes and its completion row are
  committed in a single transaction, and existing rows are never updated
  (campaign ``status`` is the one mutable column).  A crash mid-shard
  leaves no partial shard behind — resume re-executes it from scratch.
* **Run accounting.**  Every orchestrator invocation registers a run;
  shards record which run executed them, so tests (and operators) can
  verify a resume re-executed only the unfinished shards.
* **Schema versioning.**  The schema version is stamped into the file on
  creation and checked on open; older stores are migrated in place (v2
  only adds defaulted columns, v3 only adds the protection tables, v4
  adds defaulted replay-batch columns, v5 adds the ``run_metrics`` table
  and a defaulted version column, v6 adds defaulted speculation columns,
  v7 adds the ``run_spans`` table), any other mismatch raises
  :class:`StoreVersionError` instead of silently misreading rows.
* **Protection rows (v3).**  The selective-protection subsystem
  (:mod:`repro.protection`) persists its advisor plans
  (``protection_plans``) and the closed-loop validation campaigns run
  against the protected variants (``validation_runs``), so
  ``python -m repro protect report`` renders entirely from the store.
* **Replay-batch telemetry (v4).**  Shards carry the batched replay
  scheduler's counters (``batches``, ``memo_hits``, ``memo_misses``) so
  ``campaign status`` can show per-shard amortization and memo hit rates;
  ``validation_runs`` carry the ``campaign_id`` of the orchestrated
  campaign that measured them, linking closed-loop validations to their
  shard timings.
* **Run metrics (v5).**  Every orchestrator run persists its merged
  :mod:`repro.obs` metrics snapshot (``run_metrics``, one JSON blob per
  run) and campaigns stamp the ``repro_version`` that created them, so
  ``python -m repro stats`` renders engine/replay/cache telemetry from
  the store alone and exports carry their provenance.
* **Speculation telemetry (v6).**  Shards carry the aDVF speculative
  injection scheduler's counters (``speculated``, ``spec_discards``,
  ``spec_windows``) next to the replay-batch columns, so
  ``campaign status`` can show how much of a shard's injection work ran
  speculatively and how much speculation was discarded.
* **Run spans (v7).**  The campaign flight recorder: every finished span
  an orchestrator run (or its worker processes) records lands in
  ``run_spans`` — name, parent, nesting depth, recording pid, the shard
  the span belongs to (``-1`` for run-scoped "orphan" spans such as trace
  acquisition), wall-clock start and duration, and the full correlation
  label set as JSON.  ``python -m repro timeline`` renders the per-shard
  phase waterfall entirely from these rows, so the time structure of a
  campaign survives process exit exactly like its counters do.
"""

from __future__ import annotations

import hashlib
import json
import sqlite3
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, IO, List, Optional, Sequence, Tuple, Union

from repro.core.acceptance import OutcomeClass
from repro.core.advf import ObjectReport
from repro.core.injector import FaultInjectionResult
from repro.obs.metrics import merge_snapshots
from repro.version import __version__ as _REPRO_VERSION
from repro.vm.faults import FaultSpec, FaultTarget

SCHEMA_VERSION = 7

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS campaigns (
    campaign_id     TEXT PRIMARY KEY,
    workload        TEXT NOT NULL,
    workload_kwargs TEXT NOT NULL,
    plan            TEXT NOT NULL,
    shard_size      INTEGER NOT NULL,
    created_at      REAL NOT NULL,
    status          TEXT NOT NULL DEFAULT 'running',
    trace_digest    TEXT NOT NULL DEFAULT '',
    repro_version   TEXT NOT NULL DEFAULT ''
);
CREATE TABLE IF NOT EXISTS runs (
    campaign_id TEXT NOT NULL,
    run_id      INTEGER NOT NULL,
    started_at  REAL NOT NULL,
    executed    INTEGER NOT NULL DEFAULT 0,
    skipped     INTEGER NOT NULL DEFAULT 0,
    PRIMARY KEY (campaign_id, run_id)
);
CREATE TABLE IF NOT EXISTS shards (
    campaign_id TEXT NOT NULL,
    shard_index INTEGER NOT NULL,
    object_name TEXT NOT NULL,
    batch       INTEGER NOT NULL,
    run_id      INTEGER NOT NULL,
    spec_count  INTEGER NOT NULL,
    duration_s  REAL NOT NULL,
    analysis_s  REAL NOT NULL DEFAULT 0,
    batches     INTEGER NOT NULL DEFAULT 0,
    memo_hits   INTEGER NOT NULL DEFAULT 0,
    memo_misses INTEGER NOT NULL DEFAULT 0,
    speculated    INTEGER NOT NULL DEFAULT 0,
    spec_discards INTEGER NOT NULL DEFAULT 0,
    spec_windows  INTEGER NOT NULL DEFAULT 0,
    recorded_at REAL NOT NULL,
    PRIMARY KEY (campaign_id, shard_index)
);
CREATE TABLE IF NOT EXISTS outcomes (
    campaign_id   TEXT NOT NULL,
    shard_index   INTEGER NOT NULL,
    seq           INTEGER NOT NULL,
    object_name   TEXT NOT NULL,
    dynamic_id    INTEGER NOT NULL,
    bit           INTEGER NOT NULL,
    target        TEXT NOT NULL,
    operand_index INTEGER NOT NULL,
    note          TEXT NOT NULL DEFAULT '',
    outcome       TEXT NOT NULL,
    detail        TEXT NOT NULL DEFAULT '',
    PRIMARY KEY (campaign_id, shard_index, seq)
);
CREATE INDEX IF NOT EXISTS idx_outcomes_object
    ON outcomes (campaign_id, object_name);
CREATE TABLE IF NOT EXISTS reports (
    campaign_id TEXT NOT NULL,
    object_name TEXT NOT NULL,
    report      TEXT NOT NULL,
    recorded_at REAL NOT NULL,
    PRIMARY KEY (campaign_id, object_name)
);
CREATE TABLE IF NOT EXISTS protection_plans (
    plan_id         TEXT PRIMARY KEY,
    workload        TEXT NOT NULL,
    workload_kwargs TEXT NOT NULL,
    budget          REAL NOT NULL,
    plan            TEXT NOT NULL,
    status          TEXT NOT NULL DEFAULT 'planned',
    created_at      REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS run_metrics (
    campaign_id   TEXT NOT NULL,
    run_id        INTEGER NOT NULL,
    metrics       TEXT NOT NULL,
    repro_version TEXT NOT NULL DEFAULT '',
    recorded_at   REAL NOT NULL,
    PRIMARY KEY (campaign_id, run_id)
);
CREATE TABLE IF NOT EXISTS run_spans (
    campaign_id TEXT NOT NULL,
    run_id      INTEGER NOT NULL,
    seq         INTEGER NOT NULL,
    name        TEXT NOT NULL,
    parent      TEXT NOT NULL DEFAULT '',
    depth       INTEGER NOT NULL DEFAULT 0,
    pid         INTEGER NOT NULL DEFAULT 0,
    shard_index INTEGER NOT NULL DEFAULT -1,
    start_ts    REAL NOT NULL,
    duration_s  REAL NOT NULL,
    labels      TEXT NOT NULL DEFAULT '{}',
    PRIMARY KEY (campaign_id, run_id, seq)
);
CREATE TABLE IF NOT EXISTS validation_runs (
    plan_id     TEXT NOT NULL,
    object_name TEXT NOT NULL,
    variant     TEXT NOT NULL,
    scheme      TEXT NOT NULL DEFAULT '',
    tests       INTEGER NOT NULL,
    successes   INTEGER NOT NULL,
    histogram   TEXT NOT NULL DEFAULT '{}',
    campaign_id TEXT NOT NULL DEFAULT '',
    recorded_at REAL NOT NULL,
    PRIMARY KEY (plan_id, object_name, variant)
);
"""


class StoreVersionError(RuntimeError):
    """The store file was written by an incompatible schema version."""


def _canonical_json(value: object) -> str:
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def compute_campaign_id(
    workload: str,
    workload_kwargs: Dict[str, object],
    plan: Dict[str, object],
    shard_size: int,
) -> str:
    """Content-addressed campaign identifier.

    Two campaigns with the same workload, constructor kwargs, plan and
    shard partitioning are the same campaign — re-running dedupes into a
    resume.  (Timestamps and store location deliberately do not
    participate.)
    """
    payload = _canonical_json(
        {
            "workload": workload,
            "workload_kwargs": workload_kwargs,
            "plan": plan,
            "shard_size": shard_size,
        }
    )
    return "c" + hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class CampaignRecord:
    """One row of the ``campaigns`` table, with JSON columns decoded."""

    campaign_id: str
    workload: str
    workload_kwargs: Dict[str, object]
    plan: Dict[str, object]
    shard_size: int
    created_at: float
    status: str
    #: Content address of the cached golden trace the campaign plans over
    #: (see :mod:`repro.tracing.cache`); empty until the first run records it.
    trace_digest: str = ""
    #: ``repro.__version__`` that created the campaign (v5) — empty for
    #: campaigns written by older builds.
    repro_version: str = ""


@dataclass(frozen=True)
class ShardRecord:
    """One completed shard."""

    shard_index: int
    object_name: str
    batch: int
    run_id: int
    spec_count: int
    duration_s: float
    #: Seconds spent in the analysis passes (participation discovery + site
    #: enumeration) attributable to the shard's data object.
    analysis_s: float = 0.0
    #: Replay-batch scheduler telemetry (v4): lockstep walks (= snapshot
    #: restores) executed for the shard, and convergence-memo hits/misses
    #: among its divergent replays.  ``spec_count / batches`` is the
    #: faults-per-restore amortization.
    batches: int = 0
    memo_hits: int = 0
    memo_misses: int = 0
    #: aDVF speculative-injection telemetry (v6): pattern resolutions the
    #: speculation scheduler predicted ahead of their budget decisions,
    #: how many of those predictions were discarded, and how many
    #: speculation windows were flushed for the shard.
    speculated: int = 0
    spec_discards: int = 0
    spec_windows: int = 0

    @property
    def faults_per_restore(self) -> float:
        return self.spec_count / self.batches if self.batches else 0.0

    @property
    def memo_hit_rate(self) -> float:
        probes = self.memo_hits + self.memo_misses
        return self.memo_hits / probes if probes else 0.0


@dataclass(frozen=True)
class StoredOutcome:
    """One persisted injection outcome (spec + classification)."""

    shard_index: int
    seq: int
    object_name: str
    spec: FaultSpec
    outcome: OutcomeClass
    detail: str

    def to_result(self) -> FaultInjectionResult:
        return FaultInjectionResult(
            spec=self.spec, outcome=self.outcome, detail=self.detail
        )


@dataclass(frozen=True)
class SpanRecord:
    """One persisted flight-recorder span (a ``run_spans`` row, v7)."""

    run_id: int
    seq: int
    name: str
    parent: str
    depth: int
    #: Pid of the process that recorded the span (orchestrator or worker).
    pid: int
    #: Shard the span executed for; ``-1`` for run-scoped spans (trace
    #: acquisition, analysis, memo merge) that belong to no single shard.
    shard_index: int
    #: Wall-clock start — the cross-process timeline coordinate.
    start_ts: float
    duration_s: float
    #: Correlation labels (campaign/run/shard/caller labels) as recorded.
    labels: Dict[str, str]

    @property
    def end_ts(self) -> float:
        return self.start_ts + self.duration_s


@dataclass(frozen=True)
class ProtectionPlanRecord:
    """One row of the ``protection_plans`` table (v3)."""

    plan_id: str
    workload: str
    workload_kwargs: Dict[str, object]
    budget: float
    #: Full :meth:`repro.protection.advisor.ProtectionPlan.to_dict` payload.
    plan: Dict[str, object]
    status: str
    created_at: float


@dataclass(frozen=True)
class ValidationRunRecord:
    """One closed-loop validation campaign row (v3).

    ``variant`` is ``"baseline"`` (the unprotected workload) or
    ``"protected"`` (the plan's applied variant); ``successes`` counts
    corrected/benign outcomes, so ``successes / tests`` is the masked
    fraction the closed loop compares across variants.
    """

    plan_id: str
    object_name: str
    variant: str
    scheme: str
    tests: int
    successes: int
    histogram: Dict[str, int]
    #: Id of the orchestrated campaign that measured this row (v4) — empty
    #: for rows written before validation ran through the orchestrator.
    campaign_id: str = ""

    @property
    def masked_fraction(self) -> float:
        return self.successes / self.tests if self.tests else 0.0


@dataclass
class CampaignStatus:
    """Aggregate progress view of one campaign."""

    record: CampaignRecord
    shards_done: int
    injections_done: int
    runs: List[Tuple[int, int, int]] = field(default_factory=list)
    histograms: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: Completed shards in index order (for per-shard timing tables).
    shards: List[ShardRecord] = field(default_factory=list)


class CampaignStore:
    """Append-only SQLite store for campaign results.

    ``path`` may be a filesystem path or ``":memory:"`` (tests).  The
    store is safe to reopen concurrently with readers; writers serialise
    through SQLite's own locking.
    """

    def __init__(self, path: Union[str, Path] = "campaigns.sqlite") -> None:
        self.path = str(path)
        self._conn = sqlite3.connect(self.path)
        self._conn.execute("PRAGMA foreign_keys = ON")
        self._init_schema()

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def _init_schema(self) -> None:
        with self._conn:
            self._conn.executescript(_SCHEMA)
            row = self._conn.execute(
                "SELECT value FROM meta WHERE key = 'schema_version'"
            ).fetchone()
            if row is None:
                self._conn.execute(
                    "INSERT INTO meta (key, value) VALUES ('schema_version', ?)",
                    (str(SCHEMA_VERSION),),
                )
                return
            version = int(row[0])
            if version == 1:
                version = self._migrate_v1_to_v2()
            if version == 2:
                version = self._migrate_v2_to_v3()
            if version == 3:
                version = self._migrate_v3_to_v4()
            if version == 4:
                version = self._migrate_v4_to_v5()
            if version == 5:
                version = self._migrate_v5_to_v6()
            if version == 6:
                version = self._migrate_v6_to_v7()
            if version != SCHEMA_VERSION:
                raise StoreVersionError(
                    f"store {self.path!r} has schema version {row[0]}, "
                    f"this build expects {SCHEMA_VERSION}"
                )

    def _migrate_v1_to_v2(self) -> int:
        """v1 → v2: both additions are defaulted columns, so existing rows
        migrate in place and stay fully usable."""
        columns = {
            row[1]
            for row in self._conn.execute("PRAGMA table_info(campaigns)")
        }
        if "trace_digest" not in columns:
            self._conn.execute(
                "ALTER TABLE campaigns ADD COLUMN "
                "trace_digest TEXT NOT NULL DEFAULT ''"
            )
        columns = {
            row[1] for row in self._conn.execute("PRAGMA table_info(shards)")
        }
        if "analysis_s" not in columns:
            self._conn.execute(
                "ALTER TABLE shards ADD COLUMN analysis_s REAL NOT NULL DEFAULT 0"
            )
        self._conn.execute(
            "UPDATE meta SET value = '2' WHERE key = 'schema_version'"
        )
        return 2

    def _migrate_v2_to_v3(self) -> int:
        """v2 → v3: only adds the (empty) protection tables, which the
        ``CREATE TABLE IF NOT EXISTS`` schema script has already created;
        existing campaign rows are untouched."""
        self._conn.execute(
            "UPDATE meta SET value = '3' WHERE key = 'schema_version'"
        )
        return 3

    def _migrate_v3_to_v4(self) -> int:
        """v3 → v4: defaulted replay-batch columns only — pre-batching
        shards read back with zeroed scheduler counters and stay fully
        usable."""
        columns = {
            row[1] for row in self._conn.execute("PRAGMA table_info(shards)")
        }
        for column in ("batches", "memo_hits", "memo_misses"):
            if column not in columns:
                self._conn.execute(
                    f"ALTER TABLE shards ADD COLUMN {column} "
                    f"INTEGER NOT NULL DEFAULT 0"
                )
        columns = {
            row[1]
            for row in self._conn.execute("PRAGMA table_info(validation_runs)")
        }
        if "campaign_id" not in columns:
            self._conn.execute(
                "ALTER TABLE validation_runs ADD COLUMN "
                "campaign_id TEXT NOT NULL DEFAULT ''"
            )
        self._conn.execute(
            "UPDATE meta SET value = '4' WHERE key = 'schema_version'"
        )
        return 4

    def _migrate_v4_to_v5(self) -> int:
        """v4 → v5: the (empty) ``run_metrics`` table comes from the schema
        script; the only row change is the defaulted ``repro_version``
        column on campaigns — pre-v5 campaigns read back with an empty
        version stamp and stay fully usable."""
        columns = {
            row[1]
            for row in self._conn.execute("PRAGMA table_info(campaigns)")
        }
        if "repro_version" not in columns:
            self._conn.execute(
                "ALTER TABLE campaigns ADD COLUMN "
                "repro_version TEXT NOT NULL DEFAULT ''"
            )
        self._conn.execute(
            "UPDATE meta SET value = '5' WHERE key = 'schema_version'"
        )
        return 5

    def _migrate_v5_to_v6(self) -> int:
        """v5 → v6: defaulted speculation columns only — pre-speculation
        shards read back with zeroed counters and stay fully usable."""
        columns = {
            row[1] for row in self._conn.execute("PRAGMA table_info(shards)")
        }
        for column in ("speculated", "spec_discards", "spec_windows"):
            if column not in columns:
                self._conn.execute(
                    f"ALTER TABLE shards ADD COLUMN {column} "
                    f"INTEGER NOT NULL DEFAULT 0"
                )
        self._conn.execute(
            "UPDATE meta SET value = '6' WHERE key = 'schema_version'"
        )
        return 6

    def _migrate_v6_to_v7(self) -> int:
        """v6 → v7: only adds the (empty) ``run_spans`` table, which the
        ``CREATE TABLE IF NOT EXISTS`` schema script has already created;
        pre-v7 campaigns simply have no flight-recorder rows yet."""
        self._conn.execute(
            "UPDATE meta SET value = '7' WHERE key = 'schema_version'"
        )
        return 7

    @property
    def schema_version(self) -> int:
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key = 'schema_version'"
        ).fetchone()
        return int(row[0])

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "CampaignStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # campaigns
    # ------------------------------------------------------------------ #
    def ensure_campaign(
        self,
        workload: str,
        workload_kwargs: Dict[str, object],
        plan: Dict[str, object],
        shard_size: int,
    ) -> str:
        """Create the campaign row if absent; return its (stable) id."""
        campaign_id = compute_campaign_id(workload, workload_kwargs, plan, shard_size)
        with self._conn:
            self._conn.execute(
                "INSERT OR IGNORE INTO campaigns "
                "(campaign_id, workload, workload_kwargs, plan, shard_size, "
                " created_at, status, repro_version) "
                "VALUES (?, ?, ?, ?, ?, ?, 'running', ?)",
                (
                    campaign_id,
                    workload,
                    _canonical_json(workload_kwargs),
                    _canonical_json(plan),
                    shard_size,
                    time.time(),
                    _REPRO_VERSION,
                ),
            )
        return campaign_id

    def campaign(self, campaign_id: str) -> CampaignRecord:
        row = self._conn.execute(
            "SELECT campaign_id, workload, workload_kwargs, plan, shard_size, "
            "created_at, status, trace_digest, repro_version FROM campaigns "
            "WHERE campaign_id = ?",
            (campaign_id,),
        ).fetchone()
        if row is None:
            raise KeyError(f"no campaign {campaign_id!r} in {self.path!r}")
        return CampaignRecord(
            campaign_id=row[0],
            workload=row[1],
            workload_kwargs=json.loads(row[2]),
            plan=json.loads(row[3]),
            shard_size=row[4],
            created_at=row[5],
            status=row[6],
            trace_digest=row[7],
            repro_version=row[8],
        )

    def has_campaign(self, campaign_id: str) -> bool:
        row = self._conn.execute(
            "SELECT 1 FROM campaigns WHERE campaign_id = ?", (campaign_id,)
        ).fetchone()
        return row is not None

    def campaigns(self) -> List[CampaignRecord]:
        ids = [
            row[0]
            for row in self._conn.execute(
                "SELECT campaign_id FROM campaigns ORDER BY created_at"
            )
        ]
        return [self.campaign(campaign_id) for campaign_id in ids]

    def set_status(self, campaign_id: str, status: str) -> None:
        with self._conn:
            self._conn.execute(
                "UPDATE campaigns SET status = ? WHERE campaign_id = ?",
                (status, campaign_id),
            )

    def set_trace_digest(self, campaign_id: str, trace_digest: str) -> None:
        """Record the digest of the golden-trace artifact the campaign uses.

        Resumed campaigns verify/reuse the cached artifact through this
        digest, so the plan re-derivation provably reads the same trace.
        """
        with self._conn:
            self._conn.execute(
                "UPDATE campaigns SET trace_digest = ? WHERE campaign_id = ?",
                (trace_digest, campaign_id),
            )

    # ------------------------------------------------------------------ #
    # runs
    # ------------------------------------------------------------------ #
    def begin_run(self, campaign_id: str) -> int:
        """Register a new orchestrator run; returns its 1-based id."""
        with self._conn:
            row = self._conn.execute(
                "SELECT COALESCE(MAX(run_id), 0) FROM runs WHERE campaign_id = ?",
                (campaign_id,),
            ).fetchone()
            run_id = int(row[0]) + 1
            self._conn.execute(
                "INSERT INTO runs (campaign_id, run_id, started_at) VALUES (?, ?, ?)",
                (campaign_id, run_id, time.time()),
            )
        return run_id

    def finish_run(
        self, campaign_id: str, run_id: int, executed: int, skipped: int
    ) -> None:
        with self._conn:
            self._conn.execute(
                "UPDATE runs SET executed = ?, skipped = ? "
                "WHERE campaign_id = ? AND run_id = ?",
                (executed, skipped, campaign_id, run_id),
            )

    def run_accounting(self, campaign_id: str) -> List[Tuple[int, int, int]]:
        """``(run_id, executed, skipped)`` per orchestrator run, in order."""
        return [
            (int(r), int(e), int(s))
            for r, e, s in self._conn.execute(
                "SELECT run_id, executed, skipped FROM runs "
                "WHERE campaign_id = ? ORDER BY run_id",
                (campaign_id,),
            )
        ]

    # ------------------------------------------------------------------ #
    # run metrics (schema v5)
    # ------------------------------------------------------------------ #
    def save_run_metrics(
        self, campaign_id: str, run_id: int, metrics: Dict[str, object]
    ) -> None:
        """Persist one run's merged :mod:`repro.obs` metrics snapshot.

        ``metrics`` is a :meth:`~repro.obs.metrics.MetricsRegistry.to_dict`
        payload — the orchestrator's registry delta for the run, with every
        worker-process delta already folded in.  Latest write wins, so a
        re-recorded run replaces (never double-counts) its snapshot.
        """
        with self._conn:
            self._conn.execute(
                "INSERT OR REPLACE INTO run_metrics "
                "(campaign_id, run_id, metrics, repro_version, recorded_at) "
                "VALUES (?, ?, ?, ?, ?)",
                (
                    campaign_id,
                    run_id,
                    _canonical_json(metrics),
                    _REPRO_VERSION,
                    time.time(),
                ),
            )

    def run_metrics(self, campaign_id: str) -> Dict[int, Dict[str, object]]:
        """Per-run metrics snapshots, keyed by run id (ascending)."""
        return {
            int(row[0]): json.loads(row[1])
            for row in self._conn.execute(
                "SELECT run_id, metrics FROM run_metrics "
                "WHERE campaign_id = ? ORDER BY run_id",
                (campaign_id,),
            )
        }

    def campaign_metrics(self, campaign_id: str) -> Dict[str, object]:
        """Every run's metrics folded into one campaign-level snapshot.

        Uses the registry's merge semantics (counters add, gauges max,
        histogram buckets add), so the result equals what one process
        observing the whole campaign would have recorded.
        """
        return merge_snapshots(*self.run_metrics(campaign_id).values())

    # ------------------------------------------------------------------ #
    # run spans — the flight recorder (schema v7)
    # ------------------------------------------------------------------ #
    def save_run_spans(
        self,
        campaign_id: str,
        run_id: int,
        records: Sequence[Dict[str, object]],
    ) -> int:
        """Append finished-span records (from
        :func:`repro.obs.spans.drain_span_records`) to a run's flight
        recording; returns the number of rows written.

        The shard a span belongs to is read from its ``shard`` correlation
        label; records with no such label persist with ``shard_index=-1``
        (orphan spans — run-scoped phases like trace acquisition).
        Sequence numbers continue from the run's current maximum, so the
        orchestrator can flush per shard without coordinating a counter.
        """
        if not records:
            return 0
        with self._conn:
            row = self._conn.execute(
                "SELECT COALESCE(MAX(seq), -1) FROM run_spans "
                "WHERE campaign_id = ? AND run_id = ?",
                (campaign_id, run_id),
            ).fetchone()
            seq = int(row[0]) + 1
            rows = []
            for record in records:
                labels = dict(record.get("labels") or {})
                try:
                    shard_index = int(labels.get("shard", -1))
                except (TypeError, ValueError):
                    shard_index = -1
                rows.append(
                    (
                        campaign_id,
                        run_id,
                        seq,
                        str(record["name"]),
                        str(record.get("parent") or ""),
                        int(record.get("depth") or 0),
                        int(record.get("pid") or 0),
                        shard_index,
                        float(record["start_ts"]),
                        float(record["duration_s"]),
                        _canonical_json(labels),
                    )
                )
                seq += 1
            self._conn.executemany(
                "INSERT INTO run_spans (campaign_id, run_id, seq, name, "
                "parent, depth, pid, shard_index, start_ts, duration_s, "
                "labels) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                rows,
            )
        return len(rows)

    def run_spans(
        self, campaign_id: str, run_id: Optional[int] = None
    ) -> List[SpanRecord]:
        """A campaign's flight recording (optionally one run's), ordered
        ``(run_id, seq)`` — i.e. in persistence order within each run."""
        query = (
            "SELECT run_id, seq, name, parent, depth, pid, shard_index, "
            "start_ts, duration_s, labels FROM run_spans WHERE campaign_id = ?"
        )
        params: List[object] = [campaign_id]
        if run_id is not None:
            query += " AND run_id = ?"
            params.append(run_id)
        query += " ORDER BY run_id, seq"
        return [
            SpanRecord(
                run_id=int(row[0]),
                seq=int(row[1]),
                name=row[2],
                parent=row[3],
                depth=int(row[4]),
                pid=int(row[5]),
                shard_index=int(row[6]),
                start_ts=row[7],
                duration_s=row[8],
                labels=json.loads(row[9]),
            )
            for row in self._conn.execute(query, params)
        ]

    # ------------------------------------------------------------------ #
    # shards + outcomes (the append-only core)
    # ------------------------------------------------------------------ #
    def record_shard(
        self,
        campaign_id: str,
        shard_index: int,
        object_name: str,
        batch: int,
        run_id: int,
        duration_s: float,
        results: Sequence[FaultInjectionResult],
        analysis_s: float = 0.0,
        batch_stats: Optional[Dict[str, int]] = None,
    ) -> None:
        """Persist one completed shard and all its outcomes atomically.

        ``batch_stats`` (if given) carries the replay-batch scheduler's
        counters for this shard — ``batches``, ``memo_hits`` and
        ``memo_misses`` are stamped onto the shard row, along with the
        aDVF speculation counters (``speculated``, ``spec_discards``,
        ``spec_windows``) when the speculative scheduler ran.
        """
        stats = batch_stats or {}
        with self._conn:
            self._conn.executemany(
                "INSERT INTO outcomes (campaign_id, shard_index, seq, object_name, "
                "dynamic_id, bit, target, operand_index, note, outcome, detail) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                [
                    (
                        campaign_id,
                        shard_index,
                        seq,
                        object_name,
                        result.spec.dynamic_id,
                        result.spec.bit,
                        result.spec.target.value,
                        result.spec.operand_index,
                        result.spec.note,
                        result.outcome.value,
                        result.detail,
                    )
                    for seq, result in enumerate(results)
                ],
            )
            self._conn.execute(
                "INSERT INTO shards (campaign_id, shard_index, object_name, batch, "
                "run_id, spec_count, duration_s, analysis_s, batches, memo_hits, "
                "memo_misses, speculated, spec_discards, spec_windows, recorded_at) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    campaign_id,
                    shard_index,
                    object_name,
                    batch,
                    run_id,
                    len(results),
                    duration_s,
                    analysis_s,
                    int(stats.get("batches", 0)),
                    int(stats.get("memo_hits", 0)),
                    int(stats.get("memo_misses", 0)),
                    int(stats.get("speculated", 0)),
                    int(stats.get("spec_discards", 0)),
                    int(stats.get("spec_windows", 0)),
                    time.time(),
                ),
            )

    def completed_shards(self, campaign_id: str) -> Dict[int, ShardRecord]:
        """All persisted (fully completed) shards, keyed by shard index."""
        out: Dict[int, ShardRecord] = {}
        for row in self._conn.execute(
            "SELECT shard_index, object_name, batch, run_id, spec_count, "
            "duration_s, analysis_s, batches, memo_hits, memo_misses, "
            "speculated, spec_discards, spec_windows "
            "FROM shards WHERE campaign_id = ? ORDER BY shard_index",
            (campaign_id,),
        ):
            record = ShardRecord(
                shard_index=int(row[0]),
                object_name=row[1],
                batch=int(row[2]),
                run_id=int(row[3]),
                spec_count=int(row[4]),
                duration_s=row[5],
                analysis_s=row[6],
                batches=int(row[7]),
                memo_hits=int(row[8]),
                memo_misses=int(row[9]),
                speculated=int(row[10]),
                spec_discards=int(row[11]),
                spec_windows=int(row[12]),
            )
            out[record.shard_index] = record
        return out

    def outcomes(
        self,
        campaign_id: str,
        object_name: Optional[str] = None,
        shard_index: Optional[int] = None,
    ) -> List[StoredOutcome]:
        """Persisted outcomes in deterministic (shard, seq) order."""
        query = (
            "SELECT shard_index, seq, object_name, dynamic_id, bit, target, "
            "operand_index, note, outcome, detail FROM outcomes WHERE campaign_id = ?"
        )
        params: List[object] = [campaign_id]
        if object_name is not None:
            query += " AND object_name = ?"
            params.append(object_name)
        if shard_index is not None:
            query += " AND shard_index = ?"
            params.append(shard_index)
        query += " ORDER BY shard_index, seq"
        out: List[StoredOutcome] = []
        for row in self._conn.execute(query, params):
            spec = FaultSpec(
                dynamic_id=int(row[3]),
                bit=int(row[4]),
                target=FaultTarget(row[5]),
                operand_index=int(row[6]),
                note=row[7],
            )
            out.append(
                StoredOutcome(
                    shard_index=int(row[0]),
                    seq=int(row[1]),
                    object_name=row[2],
                    spec=spec,
                    outcome=OutcomeClass(row[8]),
                    detail=row[9],
                )
            )
        return out

    def outcome_histograms(self, campaign_id: str) -> Dict[str, Dict[str, int]]:
        """Per-object outcome-class counts (rendered by the reporting layer)."""
        out: Dict[str, Dict[str, int]] = {}
        for obj, outcome, count in self._conn.execute(
            "SELECT object_name, outcome, COUNT(*) FROM outcomes "
            "WHERE campaign_id = ? GROUP BY object_name, outcome",
            (campaign_id,),
        ):
            out.setdefault(obj, {})[outcome] = int(count)
        return out

    def object_tallies(self, campaign_id: str) -> Dict[str, Tuple[int, int]]:
        """Per-object ``(successes, trials)`` for CI computation."""
        tallies: Dict[str, Tuple[int, int]] = {}
        for obj, hist in self.outcome_histograms(campaign_id).items():
            trials = sum(hist.values())
            successes = sum(
                count
                for outcome, count in hist.items()
                if OutcomeClass(outcome).is_success
            )
            tallies[obj] = (successes, trials)
        return tallies

    # ------------------------------------------------------------------ #
    # aDVF reports
    # ------------------------------------------------------------------ #
    def save_report(
        self, campaign_id: str, object_name: str, report: ObjectReport
    ) -> None:
        with self._conn:
            self._conn.execute(
                "INSERT OR REPLACE INTO reports "
                "(campaign_id, object_name, report, recorded_at) VALUES (?, ?, ?, ?)",
                (
                    campaign_id,
                    object_name,
                    _canonical_json(report.to_dict()),
                    time.time(),
                ),
            )

    def reports(self, campaign_id: str) -> Dict[str, ObjectReport]:
        return {
            row[0]: ObjectReport.from_dict(json.loads(row[1]))
            for row in self._conn.execute(
                "SELECT object_name, report FROM reports "
                "WHERE campaign_id = ? ORDER BY object_name",
                (campaign_id,),
            )
        }

    # ------------------------------------------------------------------ #
    # protection plans + closed-loop validation (schema v3)
    # ------------------------------------------------------------------ #
    def save_protection_plan(
        self,
        plan_id: str,
        workload: str,
        workload_kwargs: Dict[str, object],
        budget: float,
        plan: Dict[str, object],
    ) -> None:
        """Persist an advisor plan (idempotent: plans are content-addressed)."""
        with self._conn:
            self._conn.execute(
                "INSERT OR IGNORE INTO protection_plans "
                "(plan_id, workload, workload_kwargs, budget, plan, created_at) "
                "VALUES (?, ?, ?, ?, ?, ?)",
                (
                    plan_id,
                    workload,
                    _canonical_json(workload_kwargs),
                    budget,
                    _canonical_json(plan),
                    time.time(),
                ),
            )

    def protection_plan(self, plan_id: str) -> ProtectionPlanRecord:
        row = self._conn.execute(
            "SELECT plan_id, workload, workload_kwargs, budget, plan, status, "
            "created_at FROM protection_plans WHERE plan_id = ?",
            (plan_id,),
        ).fetchone()
        if row is None:
            raise KeyError(f"no protection plan {plan_id!r} in {self.path!r}")
        return ProtectionPlanRecord(
            plan_id=row[0],
            workload=row[1],
            workload_kwargs=json.loads(row[2]),
            budget=row[3],
            plan=json.loads(row[4]),
            status=row[5],
            created_at=row[6],
        )

    def has_protection_plan(self, plan_id: str) -> bool:
        row = self._conn.execute(
            "SELECT 1 FROM protection_plans WHERE plan_id = ?", (plan_id,)
        ).fetchone()
        return row is not None

    def protection_plans(
        self, workload: Optional[str] = None
    ) -> List[ProtectionPlanRecord]:
        """All plans (optionally of one workload), oldest first."""
        query = "SELECT plan_id FROM protection_plans"
        params: List[object] = []
        if workload is not None:
            query += " WHERE workload = ?"
            params.append(workload)
        query += " ORDER BY created_at, plan_id"
        return [
            self.protection_plan(row[0])
            for row in self._conn.execute(query, params)
        ]

    def set_plan_status(self, plan_id: str, status: str) -> None:
        with self._conn:
            self._conn.execute(
                "UPDATE protection_plans SET status = ? WHERE plan_id = ?",
                (status, plan_id),
            )

    def save_validation_run(
        self,
        plan_id: str,
        object_name: str,
        variant: str,
        scheme: str,
        tests: int,
        successes: int,
        histogram: Dict[str, int],
        campaign_id: str = "",
    ) -> None:
        """Persist one residual-vulnerability measurement (latest wins).

        ``campaign_id`` links the row to the orchestrated campaign whose
        shards measured it, so shard timings and replay-batch telemetry
        stay reachable from the validation view.
        """
        with self._conn:
            self._conn.execute(
                "INSERT OR REPLACE INTO validation_runs "
                "(plan_id, object_name, variant, scheme, tests, successes, "
                "histogram, campaign_id, recorded_at) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    plan_id,
                    object_name,
                    variant,
                    scheme,
                    tests,
                    successes,
                    _canonical_json(histogram),
                    campaign_id,
                    time.time(),
                ),
            )

    def validation_runs(self, plan_id: str) -> List[ValidationRunRecord]:
        """Validation rows of a plan, ordered (object, variant)."""
        return [
            ValidationRunRecord(
                plan_id=row[0],
                object_name=row[1],
                variant=row[2],
                scheme=row[3],
                tests=int(row[4]),
                successes=int(row[5]),
                histogram=json.loads(row[6]),
                campaign_id=row[7],
            )
            for row in self._conn.execute(
                "SELECT plan_id, object_name, variant, scheme, tests, "
                "successes, histogram, campaign_id FROM validation_runs "
                "WHERE plan_id = ? ORDER BY object_name, variant",
                (plan_id,),
            )
        ]

    # ------------------------------------------------------------------ #
    # aggregate views + export
    # ------------------------------------------------------------------ #
    def status(self, campaign_id: str) -> CampaignStatus:
        record = self.campaign(campaign_id)
        shards = self.completed_shards(campaign_id)
        return CampaignStatus(
            record=record,
            shards_done=len(shards),
            injections_done=sum(s.spec_count for s in shards.values()),
            runs=self.run_accounting(campaign_id),
            histograms=self.outcome_histograms(campaign_id),
            shards=[shards[index] for index in sorted(shards)],
        )

    def export_jsonl(self, campaign_id: str, fh: IO[str]) -> int:
        """Write the campaign as JSON lines; returns the line count.

        Line types: one ``campaign`` header, one ``shard`` per completed
        shard, one ``outcome`` per injection, one ``report`` per stored
        aDVF report — a self-contained, diff-able dump of the campaign.
        """
        record = self.campaign(campaign_id)
        lines = 0

        def emit(payload: Dict[str, object]) -> None:
            nonlocal lines
            fh.write(_canonical_json(payload) + "\n")
            lines += 1

        emit(
            {
                "type": "campaign",
                "campaign_id": record.campaign_id,
                "workload": record.workload,
                "workload_kwargs": record.workload_kwargs,
                "plan": record.plan,
                "shard_size": record.shard_size,
                "status": record.status,
                "trace_digest": record.trace_digest,
                "schema_version": self.schema_version,
                "repro_version": record.repro_version or _REPRO_VERSION,
            }
        )
        for shard in self.completed_shards(campaign_id).values():
            emit(
                {
                    "type": "shard",
                    "shard_index": shard.shard_index,
                    "object": shard.object_name,
                    "batch": shard.batch,
                    "run_id": shard.run_id,
                    "spec_count": shard.spec_count,
                    "duration_s": shard.duration_s,
                    "analysis_s": shard.analysis_s,
                    "batches": shard.batches,
                    "memo_hits": shard.memo_hits,
                    "memo_misses": shard.memo_misses,
                }
            )
        for outcome in self.outcomes(campaign_id):
            payload = {"type": "outcome", "object": outcome.object_name}
            payload.update(outcome.to_result().to_row())
            payload["shard_index"] = outcome.shard_index
            payload["seq"] = outcome.seq
            emit(payload)
        for object_name, report in self.reports(campaign_id).items():
            emit({"type": "report", "object": object_name, "report": report.to_dict()})
        for run_id, metrics in self.run_metrics(campaign_id).items():
            emit({"type": "run_metrics", "run_id": run_id, "metrics": metrics})
        for span in self.run_spans(campaign_id):
            emit(
                {
                    "type": "run_span",
                    "run_id": span.run_id,
                    "seq": span.seq,
                    "span": span.name,
                    "parent": span.parent,
                    "depth": span.depth,
                    "pid": span.pid,
                    "shard_index": span.shard_index,
                    "start_ts": span.start_ts,
                    "duration_s": span.duration_s,
                    "labels": span.labels,
                }
            )
        return lines
