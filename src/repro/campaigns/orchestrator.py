"""Durable, resumable campaign orchestration.

The :class:`CampaignOrchestrator` turns a :mod:`~repro.campaigns.plans`
sampling plan into deterministic *shards* of fault specs, executes them
over the existing :class:`~repro.parallel.CampaignRunner` workers (or a
persistent in-process injector when ``workers=1``), and checkpoints every
completed shard into a :class:`~repro.campaigns.store.CampaignStore`.

Because shard contents are a pure function of (workload, plan, shard
size) and shards are persisted atomically, **resume is just run**: a
second invocation of :meth:`CampaignOrchestrator.run` recomputes the same
shard sequence, skips every shard already in the store, and executes only
the remainder — producing results bit-identical to an uninterrupted run.
Adaptive plans replay their stopping decisions from the persisted
outcomes, so even "keep sampling until the CI converges" campaigns resume
exactly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.campaigns.plans import (
    AdaptivePlan,
    ExhaustivePlan,
    SamplingPlan,
    StaticPlan,
)
from repro.campaigns.stats import wilson_interval
from repro.campaigns.store import CampaignStore
from repro.core.advf import AnalysisConfig, ObjectReport
from repro.core.injector import DeterministicFaultInjector, FaultInjectionResult
from repro.obs.log import get_logger
from repro.obs.metrics import registry as _metrics_registry
from repro.obs.spans import (
    disable_recording,
    drain_span_records,
    enable_recording,
    recording_enabled,
    set_span_context,
    span,
)
from repro.parallel.campaign import CampaignRunner, _default_workers
from repro.parallel.partition import chunk_evenly
from repro.tracing.cache import MemoCache, TraceCache, trace_digest
from repro.vm.faults import FaultSpec
from repro.workloads.registry import get_workload, validate_workload

#: Default number of fault specs per persisted shard (checkpoint granularity).
DEFAULT_SHARD_SIZE = 32


@dataclass(frozen=True)
class ShardTask:
    """One unit of durable work: a deterministic slice of the plan."""

    index: int
    object_name: str
    batch: int
    specs: Tuple[FaultSpec, ...]


@dataclass
class CampaignResult:
    """What one orchestrator run did, plus the campaign's cumulative state."""

    campaign_id: str
    run_id: int
    status: str
    executed_shards: int
    skipped_shards: int
    executed_injections: int
    #: Cumulative per-object outcome-class counts, read back from the store.
    histograms: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: Cumulative per-object ``(successes, trials)``.
    tallies: Dict[str, Tuple[int, int]] = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        return self.status == "complete"

    def interval(self, object_name: str, z: float = 1.96) -> Tuple[float, float]:
        """Wilson CI of the object's masking rate from the stored tallies.

        Raises ``KeyError`` for objects the campaign never injected, so a
        typo surfaces instead of silently yielding the vacuous ``(0, 1)``.
        """
        if object_name not in self.tallies:
            raise KeyError(
                f"no outcomes for object {object_name!r} in campaign "
                f"{self.campaign_id}; objects with data: {sorted(self.tallies)}"
            )
        successes, trials = self.tallies[object_name]
        return wilson_interval(successes, trials, z)


@dataclass
class _RunCounters:
    """Mutable per-run accounting, updated as shards finish (not after)."""

    executed: int = 0
    skipped: int = 0
    injected: int = 0


class CampaignOrchestrator:
    """Shard a sampling plan, execute it durably, resume it for free.

    Parameters
    ----------
    store:
        The persistent result store.  The campaign's content-addressed id
        is computed (and its row created) on construction.
    workload_name / workload_kwargs:
        Registry name and constructor overrides of the workload; the name
        is validated eagerly so typos fail before any work is done.
    plan:
        A :class:`~repro.campaigns.plans.SamplingPlan`
        (default: :class:`~repro.campaigns.plans.ExhaustivePlan`).
    workers:
        Worker processes per shard; ``1`` (the default via
        ``REPRO_WORKERS`` unset on small machines) keeps one in-process
        injector alive across shards, which amortises the golden run.
    shard_size:
        Specs per shard for static plans — the checkpoint granularity.
        Adaptive plans shard per batch (``plan.batch_size``).
    progress:
        Optional callable receiving human-readable progress lines.
    """

    def __init__(
        self,
        store: CampaignStore,
        workload_name: str,
        workload_kwargs: Optional[Dict[str, object]] = None,
        plan: Optional[SamplingPlan] = None,
        workers: Optional[int] = None,
        shard_size: int = DEFAULT_SHARD_SIZE,
        progress: Optional[Callable[[str], None]] = None,
    ) -> None:
        if shard_size < 1:
            raise ValueError(f"shard_size must be >= 1, got {shard_size}")
        self.store = store
        self.workload_name = validate_workload(workload_name)
        self.workload_kwargs = dict(workload_kwargs or {})
        self.plan = plan if plan is not None else ExhaustivePlan()
        self.workers = workers if workers is not None else _default_workers()
        self.shard_size = shard_size
        self.progress = progress
        self.campaign_id = store.ensure_campaign(
            self.workload_name,
            self.workload_kwargs,
            self.plan.to_dict(),
            self.shard_size,
        )
        #: Content address of the golden-trace artifact (trace cache key).
        self.trace_digest = trace_digest(self.workload_name, self.workload_kwargs)
        self._injector: Optional[DeterministicFaultInjector] = None
        self._runner: Optional[CampaignRunner] = None
        #: Seconds spent enumerating fault sites, per data object (the
        #: analysis-pass timing stamped onto the object's shards).
        self._pass_seconds: Dict[str, float] = {}
        self._log = get_logger("campaign")
        #: Registry cursor scoping each run's metrics delta for the store.
        self._run_cursor = f"campaign-run:{self.campaign_id}"

    # ------------------------------------------------------------------ #
    # construction from persisted state
    # ------------------------------------------------------------------ #
    @classmethod
    def from_store(
        cls,
        store: CampaignStore,
        campaign_id: str,
        workers: Optional[int] = None,
        progress: Optional[Callable[[str], None]] = None,
    ) -> "CampaignOrchestrator":
        """Rebuild the orchestrator of a persisted campaign (for resume)."""
        from repro.campaigns.plans import plan_from_dict

        record = store.campaign(campaign_id)
        orchestrator = cls(
            store,
            record.workload,
            record.workload_kwargs,
            plan_from_dict(record.plan),
            workers=workers,
            shard_size=record.shard_size,
            progress=progress,
        )
        if orchestrator.campaign_id != campaign_id:  # pragma: no cover - paranoia
            raise RuntimeError(
                f"campaign id drifted on rebuild: {orchestrator.campaign_id} "
                f"!= {campaign_id}"
            )
        return orchestrator

    # ------------------------------------------------------------------ #
    # shard planning
    # ------------------------------------------------------------------ #
    def static_shards(self, trace) -> List[ShardTask]:
        """The full deterministic shard list of a static plan."""
        assert isinstance(self.plan, StaticPlan)
        workload = self._workload()
        tasks: List[ShardTask] = []
        index = 0
        for object_name in self.plan.objects_for(workload):
            pass_start = time.perf_counter()
            with span("campaign.analysis", object=object_name):
                specs = self.plan.specs_for(trace, object_name)
            self._pass_seconds[object_name] = time.perf_counter() - pass_start
            pieces = max(1, -(-len(specs) // self.shard_size))
            for batch, chunk in enumerate(chunk_evenly(specs, pieces)):
                if not chunk:
                    continue
                tasks.append(
                    ShardTask(
                        index=index,
                        object_name=object_name,
                        batch=batch,
                        specs=tuple(chunk),
                    )
                )
                index += 1
        return tasks

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def run(self, max_shards: Optional[int] = None) -> CampaignResult:
        """Execute (or resume) the campaign.

        ``max_shards`` bounds the number of shards *executed* by this run
        — the standard way to interrupt a campaign deterministically in
        tests and smoke runs.  Completed shards found in the store are
        skipped, never re-executed.
        """
        run_id = self.store.begin_run(self.campaign_id)
        self.store.set_status(self.campaign_id, "running")
        self.store.set_trace_digest(self.campaign_id, self.trace_digest)
        reg = _metrics_registry()
        if reg.enabled:
            # reset the run cursor so the persisted delta covers exactly
            # this run's activity (worker-process deltas fold in as the
            # runner merges them)
            reg.snapshot_delta(self._run_cursor)
        # Flight recorder: buffer finished spans for the store; discard any
        # records predating this run, and stamp the correlation ids that
        # fork-started worker processes inherit.
        was_recording = recording_enabled()
        enable_recording()
        drain_span_records()
        set_span_context(campaign=self.campaign_id, run=run_id)

        counters = _RunCounters()
        status = "failed"
        try:
            with span("campaign.run", campaign=self.campaign_id, run=run_id):
                workload = self._workload()
                trace = self._acquire_trace(workload)
                if isinstance(self.plan, AdaptivePlan):
                    finished = self._run_adaptive(
                        trace, workload, run_id, max_shards, counters
                    )
                else:
                    tasks = self.static_shards(trace)
                    done = self.store.completed_shards(self.campaign_id)
                    finished = True
                    for task in tasks:
                        if task.index in done:
                            counters.skipped += 1
                            continue
                        if max_shards is not None and counters.executed >= max_shards:
                            finished = False
                            break
                        self._execute_shard(task, run_id)
                        counters.executed += 1
                        counters.injected += len(task.specs)
            status = "complete" if finished else "interrupted"
        finally:
            # A worker crash mid-campaign must not leave the row claiming
            # "running" forever, and whatever was persisted before the
            # failure still counts toward the run's accounting.
            self.store.set_status(self.campaign_id, status)
            self.store.finish_run(
                self.campaign_id, run_id, counters.executed, counters.skipped
            )
            # the campaign.run span (and any other run-scoped spans) closed
            # above, so this final flush captures them as orphan rows
            self._persist_spans(run_id)
            self._close_runner()
            set_span_context(campaign=None, run=None)
            if not was_recording:
                disable_recording()
            if reg.enabled:
                self.store.save_run_metrics(
                    self.campaign_id, run_id, reg.snapshot_delta(self._run_cursor)
                )
        return CampaignResult(
            campaign_id=self.campaign_id,
            run_id=run_id,
            status=status,
            executed_shards=counters.executed,
            skipped_shards=counters.skipped,
            executed_injections=counters.injected,
            histograms=self.store.outcome_histograms(self.campaign_id),
            tallies=self.store.object_tallies(self.campaign_id),
        )

    def resume(self, max_shards: Optional[int] = None) -> CampaignResult:
        """Alias of :meth:`run` — resuming *is* running (shards dedupe)."""
        return self.run(max_shards=max_shards)

    # ------------------------------------------------------------------ #
    # adaptive execution
    # ------------------------------------------------------------------ #
    def _run_adaptive(
        self,
        trace,
        workload,
        run_id: int,
        max_shards: Optional[int],
        counters: "_RunCounters",
    ) -> bool:
        """Adaptive loop: per object, draw batches until the CI converges.

        Shard index ``object_index * max_batches + batch`` is globally
        unique and deterministic; persisted batches are folded into the
        cumulative tally without re-execution, so the stop decision replays
        identically on resume.  ``counters`` is updated incrementally (so
        accounting survives a mid-loop exception); returns whether the
        plan ran to completion.
        """
        plan = self.plan
        assert isinstance(plan, AdaptivePlan)
        done = self.store.completed_shards(self.campaign_id)
        objects = plan.objects_for(workload)
        for object_index, object_name in enumerate(objects):
            pass_start = time.perf_counter()
            with span("campaign.analysis", object=object_name):
                sites = plan.site_pool(trace, object_name)
            self._pass_seconds[object_name] = time.perf_counter() - pass_start
            successes = trials = 0
            for batch in range(plan.max_batches):
                if trials > 0 and plan.satisfied(successes, trials):
                    break
                shard_index = object_index * plan.max_batches + batch
                if shard_index in done:
                    counters.skipped += 1
                    for outcome in self.store.outcomes(
                        self.campaign_id, shard_index=shard_index
                    ):
                        trials += 1
                        successes += int(outcome.outcome.is_success)
                    continue
                if max_shards is not None and counters.executed >= max_shards:
                    return False
                specs = plan.batch_specs(sites, object_name, batch)
                task = ShardTask(
                    index=shard_index,
                    object_name=object_name,
                    batch=batch,
                    specs=tuple(specs),
                )
                results = self._execute_shard(task, run_id)
                counters.executed += 1
                counters.injected += len(specs)
                for result in results:
                    trials += 1
                    successes += int(result.outcome.is_success)
            low, high = wilson_interval(successes, trials, plan.z)
            self._say(
                f"[{self.campaign_id}] {object_name}: {successes}/{trials} masked, "
                f"CI [{low:.3f}, {high:.3f}]",
                event="object.converged",
                object=object_name,
                successes=successes,
                trials=trials,
                ci_low=low,
                ci_high=high,
            )
        return True

    # ------------------------------------------------------------------ #
    # aDVF reports
    # ------------------------------------------------------------------ #
    def compute_reports(
        self,
        config: Optional[AnalysisConfig] = None,
        object_names: Optional[Sequence[str]] = None,
        refresh: bool = False,
    ) -> Dict[str, ObjectReport]:
        """aDVF reports for the campaign's objects, persisted in the store.

        Reports already in the store are returned as-is unless ``refresh``
        is set; missing ones are computed with the parallel runner and
        saved, so ``campaign report`` renders from durable rows only.
        """
        workload = self._workload()
        names = list(object_names or self.plan.objects_for(workload))
        stored = {} if refresh else self.store.reports(self.campaign_id)
        missing = [name for name in names if name not in stored]
        if missing:
            runner = CampaignRunner(
                self.workload_name, self.workload_kwargs, workers=self.workers
            )
            fresh = runner.analyze_objects(missing, config)
            for name, report in fresh.items():
                self.store.save_report(self.campaign_id, name, report)
            stored.update(fresh)
        return {name: stored[name] for name in names if name in stored}

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _workload(self):
        return get_workload(self.workload_name, **self.workload_kwargs)

    def _acquire_trace(self, workload):
        """The golden columnar trace: cache artifact when enabled, else fresh.

        Resumed campaigns land on the same digest, so the artifact built by
        the first run is reused instead of re-tracing the workload.
        """
        start = time.perf_counter()
        with span("campaign.trace", campaign=self.campaign_id):
            cache = TraceCache.from_env()
            if cache is not None:
                trace, hit = cache.get_or_build(
                    self.trace_digest,
                    lambda: workload.traced_run(columnar=True).trace,
                )
                source = "cache hit" if hit else "cache miss, built"
            else:
                trace = workload.traced_run(columnar=True).trace
                source = "cache disabled, built"
        self._say(
            f"[{self.campaign_id}] golden trace {self.trace_digest}: {source} "
            f"({len(trace)} events, {time.perf_counter() - start:.2f}s)",
            event="trace.acquired",
            trace_digest=self.trace_digest,
            source=source,
            events=len(trace),
        )
        return trace

    def _say(self, message: str, event: str = "progress", **fields) -> None:
        """One progress line: stderr via the structured logger (gated by
        ``REPRO_LOG_LEVEL``), JSONL via ``REPRO_LOG``, plus any explicitly
        supplied ``progress`` callback."""
        self._log.info(event, message, campaign_id=self.campaign_id, **fields)
        if self.progress is not None:
            self.progress(message)

    def _execute_shard(
        self, task: ShardTask, run_id: int
    ) -> List[FaultInjectionResult]:
        start = time.perf_counter()
        with span(
            "campaign.shard", shard=task.index, object=task.object_name
        ):
            results, batch_stats, memo_delta = self._execute_specs(
                list(task.specs)
            )
        duration = time.perf_counter() - start
        if memo_delta:
            with span(
                "campaign.memo_merge", shard=task.index, object=task.object_name
            ):
                self._persist_memo(memo_delta)
        self.store.record_shard(
            self.campaign_id,
            task.index,
            task.object_name,
            task.batch,
            run_id,
            duration,
            results,
            analysis_s=self._pass_seconds.get(task.object_name, 0.0),
            batch_stats=batch_stats,
        )
        rate = len(results) / duration if duration > 0 else float("inf")
        self._say(
            f"[{self.campaign_id}] shard {task.index} ({task.object_name}, "
            f"batch {task.batch}): {len(results)} injections in {duration:.2f}s "
            f"({rate:.0f}/s, {batch_stats.get('batches', 0)} replay batches, "
            f"{batch_stats.get('memo_hits', 0)} memo hits)",
            event="shard.done",
            shard=task.index,
            object=task.object_name,
            batch=task.batch,
            injections=len(results),
            duration_s=duration,
        )
        self._persist_spans(run_id, shard_index=task.index)
        return results

    def _persist_spans(
        self, run_id: int, shard_index: Optional[int] = None
    ) -> None:
        """Flush buffered flight-recorder spans to the store.

        Worker-shipped records (which cannot know their shard) are stamped
        with ``shard_index`` before persisting; records from this process
        either carry their own ``shard`` label (``campaign.shard``,
        ``campaign.memo_merge``) or are run-scoped phases — trace
        acquisition, analysis passes — that persist as orphan rows
        (``shard_index = -1``)."""
        records: List[Dict[str, object]] = []
        if self._runner is not None and self._runner.last_span_records:
            for record in self._runner.last_span_records:
                if shard_index is not None:
                    labels = record.setdefault("labels", {})
                    labels.setdefault("shard", str(shard_index))
                records.append(record)
            self._runner.last_span_records = []
        records.extend(drain_span_records())
        if records:
            self.store.save_run_spans(self.campaign_id, run_id, records)

    def _execute_specs(
        self, specs: List[FaultSpec]
    ) -> Tuple[
        List[FaultInjectionResult], Dict[str, int], Optional[Dict[str, object]]
    ]:
        """Run one shard's specs; returns results + replay-batch counters +
        the shard's convergence-memo delta (``None`` when nothing new)."""
        if self.workers <= 1:
            if self._injector is None:
                self._injector = DeterministicFaultInjector(
                    self._workload(), memo_key=self.trace_digest
                )
            results = self._injector.inject_many(specs)
            return (
                results,
                self._injector.consume_batch_stats(),
                self._injector.consume_memo_delta(),
            )
        if self._runner is None:
            # One persistent pool for the whole run: worker processes (and
            # their per-workload injectors) are reused across shards instead
            # of being respawned per ~shard_size specs.
            self._runner = CampaignRunner(
                self.workload_name,
                self.workload_kwargs,
                workers=self.workers,
                keep_pool=True,
            )
        results = self._runner.run_injections(specs)
        return (
            results,
            dict(self._runner.last_batch_stats),
            self._runner.last_memo_delta,
        )

    def _persist_memo(self, delta: Optional[Dict[str, object]]) -> None:
        """Fold one shard's learned memo entries into the shared artifact.

        Persisted after every shard (not at campaign end) so an interrupted
        campaign's resume — and any concurrently-starting worker — already
        warm-starts from the entries completed shards learned.
        """
        if not delta:
            return
        cache = MemoCache.from_env()
        if cache is None:
            return
        from repro.vm.engine import default_backend

        cache.merge_store(self.trace_digest, default_backend(), delta)

    def _close_runner(self) -> None:
        if self._runner is not None:
            self._runner.close()
            self._runner = None
