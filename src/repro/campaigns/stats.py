"""Campaign statistics: Wilson score intervals for masking-rate estimates.

Random fault-injection campaigns estimate a binomial proportion (the
masking / success rate of a data object).  The normal-approximation
interval used by the seed's :class:`~repro.core.rfi.RFIResult` collapses to
zero width at p̂ ∈ {0, 1} and undercovers for small samples — exactly the
regimes adaptive campaigns operate in while deciding whether to keep
sampling.  The Wilson score interval (Wilson 1927) is well-behaved there,
which is why :class:`~repro.campaigns.plans.AdaptivePlan` drives its
stopping rule off :func:`wilson_interval` rather than the Wald margin.
"""

from __future__ import annotations

import math
from typing import Tuple

#: Two-sided z-scores for common confidence levels.
Z_SCORES = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}


def z_for_confidence(confidence: float) -> float:
    """Two-sided z-score for a supported confidence level."""
    try:
        return Z_SCORES[round(confidence, 2)]
    except KeyError:
        raise ValueError(
            f"unsupported confidence level {confidence}; "
            f"choose from {sorted(Z_SCORES)}"
        ) from None


def wilson_interval(
    successes: int, trials: int, z: float = 1.96
) -> Tuple[float, float]:
    """Wilson score confidence interval for a binomial proportion.

    Returns ``(low, high)`` with ``0 <= low <= high <= 1``.  With zero
    trials nothing is known and the vacuous interval ``(0.0, 1.0)`` is
    returned.

    ``center = (p̂ + z²/2n) / (1 + z²/n)``
    ``half   = z·sqrt(p̂(1-p̂)/n + z²/4n²) / (1 + z²/n)``
    """
    if trials < 0:
        raise ValueError("trials must be non-negative")
    if not 0 <= successes <= trials:
        raise ValueError(
            f"successes must lie in [0, trials]; got {successes}/{trials}"
        )
    if z <= 0:
        raise ValueError("z must be positive")
    if trials == 0:
        return (0.0, 1.0)
    n = float(trials)
    p = successes / n
    z2 = z * z
    denom = 1.0 + z2 / n
    center = (p + z2 / (2.0 * n)) / denom
    half = z * math.sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom
    return (max(0.0, center - half), min(1.0, center + half))


def wilson_half_width(successes: int, trials: int, z: float = 1.96) -> float:
    """Half the width of :func:`wilson_interval` (the campaign's precision)."""
    low, high = wilson_interval(successes, trials, z)
    return (high - low) / 2.0


def fixed_sample_size_for_half_width(half_width: float, z: float = 1.96) -> int:
    """Tests a *fixed-count* plan must commit to for the same precision.

    A fixed plan has to size for the worst case p = 0.5 before seeing any
    outcome: ``n = z²·p(1-p)/h²``.  An adaptive plan stops as soon as the
    observed interval is narrow enough, which at skewed masking rates (the
    common case — most objects mask well above or below 50%) needs fewer
    injections.  This is the baseline :mod:`benchmarks.bench_campaign`
    compares :class:`~repro.campaigns.plans.AdaptivePlan` against.
    """
    if half_width <= 0:
        raise ValueError("half_width must be positive")
    return max(1, int(math.ceil(z * z * 0.25 / (half_width * half_width))))
