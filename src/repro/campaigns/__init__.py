"""Durable campaign orchestration: store, plans, orchestrator, statistics.

This package scales the paper's fault-injection methodology from one-shot
in-memory runs to durable, resumable campaigns:

* :mod:`repro.campaigns.store` — append-only SQLite persistence with
  content-addressed campaign identities;
* :mod:`repro.campaigns.plans` — first-class sampling plans (exhaustive,
  fixed random, stratified, adaptive CI-driven);
* :mod:`repro.campaigns.orchestrator` — deterministic sharding over the
  :mod:`repro.parallel` workers with checkpoint/resume;
* :mod:`repro.campaigns.stats` — Wilson intervals for masking-rate CIs;
* :mod:`repro.campaigns.cli` — the ``python -m repro`` command line.

Public API
----------
:class:`~repro.campaigns.store.CampaignStore`,
:class:`~repro.campaigns.orchestrator.CampaignOrchestrator`,
:class:`~repro.campaigns.plans.ExhaustivePlan`,
:class:`~repro.campaigns.plans.FixedRandomPlan`,
:class:`~repro.campaigns.plans.StratifiedPlan`,
:class:`~repro.campaigns.plans.AdaptivePlan`,
:func:`~repro.campaigns.plans.parse_plan`,
:func:`~repro.campaigns.stats.wilson_interval`.
"""

from repro.campaigns.orchestrator import (
    DEFAULT_SHARD_SIZE,
    CampaignOrchestrator,
    CampaignResult,
    ShardTask,
)
from repro.campaigns.plans import (
    AdaptivePlan,
    ExhaustivePlan,
    FixedRandomPlan,
    SamplingPlan,
    StratifiedPlan,
    ValidationPlan,
    parse_plan,
    plan_from_dict,
)
from repro.campaigns.stats import (
    fixed_sample_size_for_half_width,
    wilson_half_width,
    wilson_interval,
    z_for_confidence,
)
from repro.campaigns.store import (
    CampaignRecord,
    CampaignStore,
    StoreVersionError,
    compute_campaign_id,
)

__all__ = [
    "DEFAULT_SHARD_SIZE",
    "CampaignOrchestrator",
    "CampaignResult",
    "ShardTask",
    "AdaptivePlan",
    "ExhaustivePlan",
    "FixedRandomPlan",
    "SamplingPlan",
    "StratifiedPlan",
    "ValidationPlan",
    "parse_plan",
    "plan_from_dict",
    "fixed_sample_size_for_half_width",
    "wilson_half_width",
    "wilson_interval",
    "z_for_confidence",
    "CampaignRecord",
    "CampaignStore",
    "StoreVersionError",
    "compute_campaign_id",
]
