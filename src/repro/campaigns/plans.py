"""First-class sampling plans for fault-injection campaigns.

A *plan* describes which fault sites of a workload's data objects a
campaign injects, independently of how the work is executed or stored.
Plans are value objects: they serialise to plain dictionaries (so a
campaign's identity can be content-addressed from workload + plan) and
every selection they make is a pure function of the plan's parameters and
the deterministic golden trace — two runs of the same plan, on the same
workload, issue the same injections in the same order.  That determinism
is what lets :class:`~repro.campaigns.orchestrator.CampaignOrchestrator`
resume an interrupted campaign by replaying the plan and skipping shards
already persisted in the store.

Four plan families are provided:

* :class:`ExhaustivePlan` — every valid fault site (§V-B's validator);
* :class:`FixedRandomPlan` — a fixed number of uniform random sites per
  object (classical statistical fault injection);
* :class:`StratifiedPlan` — uniform sampling within dynamic-time strata,
  so early/mid/late participations of each object are all covered;
* :class:`AdaptivePlan` — keeps drawing random batches until the Wilson
  confidence interval on the observed masking rate is narrower than a
  target half-width (convergence-driven sizing instead of fixed counts).
"""

from __future__ import annotations

import zlib
from abc import ABC, abstractmethod
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.sites import FaultSite, enumerate_fault_sites
from repro.campaigns.stats import wilson_half_width, z_for_confidence
from repro.tracing.cursor import TraceLike
from repro.vm.faults import FaultSpec


def _stable_hash(text: str) -> int:
    """Process-independent 32-bit hash (``hash()`` is salted per process)."""
    return zlib.crc32(text.encode("utf-8"))


@dataclass(frozen=True)
class SamplingPlan(ABC):
    """Base class of all campaign sampling plans.

    ``objects=None`` means "the workload's declared target objects";
    ``bit_stride``/``max_participations`` subsample the fault-site space
    exactly as :func:`~repro.core.sites.enumerate_fault_sites` does, so all
    plans draw from the same fault-space definition as the paper.
    """

    objects: Optional[Tuple[str, ...]] = None
    bit_stride: int = 1
    max_participations: Optional[int] = None

    #: Registry key; overridden per subclass.
    kind = "abstract"
    #: True when the number of injections is decided while running.
    adaptive = False

    def objects_for(self, workload) -> List[str]:
        """The data objects this plan targets on ``workload``."""
        if self.objects is not None:
            return list(self.objects)
        return list(workload.target_objects)

    def site_pool(self, trace: TraceLike, object_name: str) -> List[FaultSite]:
        """The valid fault sites the plan selects from, in canonical order."""
        return enumerate_fault_sites(
            trace,
            object_name,
            bit_stride=self.bit_stride,
            max_participations=self.max_participations,
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable representation (used for campaign identity)."""
        payload = asdict(self)
        if payload.get("objects") is not None:
            payload["objects"] = list(payload["objects"])
        payload["kind"] = self.kind
        return payload

    @abstractmethod
    def describe(self) -> str:
        """Human-readable one-liner for status output."""


class StaticPlan(SamplingPlan):
    """A plan whose complete spec list is known before the campaign starts."""

    @abstractmethod
    def specs_for(self, trace: TraceLike, object_name: str) -> List[FaultSpec]:
        """All fault specs of ``object_name``, in deterministic order."""


@dataclass(frozen=True)
class ExhaustivePlan(StaticPlan):
    """Every valid fault site of every target object."""

    kind = "exhaustive"

    def specs_for(self, trace: TraceLike, object_name: str) -> List[FaultSpec]:
        return [site.to_spec() for site in self.site_pool(trace, object_name)]

    def describe(self) -> str:
        return f"exhaustive (bit_stride={self.bit_stride})"


@dataclass(frozen=True)
class FixedRandomPlan(StaticPlan):
    """``tests`` uniform random fault sites per object (with replacement)."""

    tests: int = 100
    seed: int = 0

    kind = "fixed"

    def specs_for(self, trace: TraceLike, object_name: str) -> List[FaultSpec]:
        if self.tests <= 0:
            raise ValueError("tests must be positive")
        sites = self.site_pool(trace, object_name)
        if not sites:
            raise ValueError(f"{object_name} has no valid fault sites")
        rng = np.random.default_rng([self.seed, _stable_hash(object_name)])
        indices = rng.integers(0, len(sites), size=self.tests)
        return [sites[int(i)].to_spec() for i in indices]

    def describe(self) -> str:
        return f"fixed random, {self.tests} tests/object (seed={self.seed})"


@dataclass(frozen=True)
class StratifiedPlan(StaticPlan):
    """Sampling stratified over dynamic-time intervals of the trace.

    Each object's participations are bucketed into ``intervals`` equal
    spans of dynamic instruction IDs and up to ``per_stratum`` sites are
    drawn (without replacement) from every bucket, so the sample covers
    early, middle and late uses of the object even when its participation
    density is heavily skewed.
    """

    per_stratum: int = 25
    intervals: int = 4
    seed: int = 0

    kind = "stratified"

    def specs_for(self, trace: TraceLike, object_name: str) -> List[FaultSpec]:
        if self.per_stratum <= 0 or self.intervals <= 0:
            raise ValueError("per_stratum and intervals must be positive")
        sites = self.site_pool(trace, object_name)
        if not sites:
            raise ValueError(f"{object_name} has no valid fault sites")
        first = min(site.participation.event_id for site in sites)
        last = max(site.participation.event_id for site in sites)
        span = max(1, (last - first + 1))
        buckets: List[List[FaultSite]] = [[] for _ in range(self.intervals)]
        for site in sites:
            slot = (site.participation.event_id - first) * self.intervals // span
            buckets[min(slot, self.intervals - 1)].append(site)
        specs: List[FaultSpec] = []
        for interval, bucket in enumerate(buckets):
            if not bucket:
                continue
            if len(bucket) <= self.per_stratum:
                chosen = list(range(len(bucket)))
            else:
                rng = np.random.default_rng(
                    [self.seed, _stable_hash(object_name), interval]
                )
                chosen = sorted(
                    int(i)
                    for i in rng.choice(
                        len(bucket), size=self.per_stratum, replace=False
                    )
                )
            specs.extend(bucket[i].to_spec() for i in chosen)
        return specs

    def describe(self) -> str:
        return (
            f"stratified, {self.per_stratum}/stratum x {self.intervals} "
            f"dynamic intervals (seed={self.seed})"
        )


@dataclass(frozen=True)
class ValidationPlan(StaticPlan):
    """Strided-exhaustive subsample used by closed-loop validation.

    Enumerates every valid site at ``bit_stride`` and, when the pool
    exceeds ``tests``, takes an even stride through it — the exact site
    selection the protection validator has always used, lifted into a
    first-class plan so baseline-vs-protected campaigns run through the
    durable orchestrator (content-addressed, sharded, resumable) like any
    other campaign.
    """

    tests: Optional[int] = 40

    kind = "validation"

    def specs_for(self, trace: TraceLike, object_name: str) -> List[FaultSpec]:
        sites = self.site_pool(trace, object_name)
        if self.tests is not None and len(sites) > self.tests:
            stride = len(sites) / self.tests
            sites = [sites[int(i * stride)] for i in range(self.tests)]
        return [site.to_spec() for site in sites]

    def describe(self) -> str:
        bound = "all" if self.tests is None else f"<= {self.tests}"
        return (
            f"validation, strided-exhaustive {bound} tests/object "
            f"(bit_stride={self.bit_stride})"
        )


@dataclass(frozen=True)
class AdaptivePlan(SamplingPlan):
    """Draw RFI batches until the masking-rate CI is tight enough.

    After every persisted batch the orchestrator evaluates the Wilson
    interval of the object's cumulative success (masking) rate; once its
    half-width is at most ``target_half_width`` — or ``max_batches`` have
    been issued — the object is done.  Batch ``b`` of an object is a pure
    function of ``(seed, object, b)``, so resuming a campaign regenerates
    the identical batch sequence and the stop decision replays exactly.
    """

    target_half_width: float = 0.05
    confidence: float = 0.95
    batch_size: int = 32
    max_batches: int = 64
    seed: int = 0

    kind = "adaptive"
    adaptive = True

    def __post_init__(self) -> None:
        if self.target_half_width <= 0 or self.target_half_width >= 1:
            raise ValueError("target_half_width must be in (0, 1)")
        if self.batch_size <= 0 or self.max_batches <= 0:
            raise ValueError("batch_size and max_batches must be positive")
        z_for_confidence(self.confidence)  # validate eagerly

    @property
    def z(self) -> float:
        return z_for_confidence(self.confidence)

    def batch_specs(
        self, sites: Sequence[FaultSite], object_name: str, batch_index: int
    ) -> List[FaultSpec]:
        """Batch ``batch_index`` for ``object_name`` (deterministic)."""
        if not sites:
            raise ValueError(f"{object_name} has no valid fault sites")
        rng = np.random.default_rng(
            [self.seed, _stable_hash(object_name), batch_index]
        )
        indices = rng.integers(0, len(sites), size=self.batch_size)
        return [sites[int(i)].to_spec() for i in indices]

    def satisfied(self, successes: int, trials: int) -> bool:
        """True once the Wilson CI half-width meets the target."""
        if trials <= 0:
            return False
        return wilson_half_width(successes, trials, self.z) <= self.target_half_width

    def describe(self) -> str:
        return (
            f"adaptive, CI half-width <= {self.target_half_width:g} at "
            f"{self.confidence:.0%}, batches of {self.batch_size} "
            f"(max {self.max_batches}, seed={self.seed})"
        )


#: kind -> plan class, for deserialisation and CLI parsing.
PLAN_KINDS: Dict[str, type] = {
    ExhaustivePlan.kind: ExhaustivePlan,
    FixedRandomPlan.kind: FixedRandomPlan,
    StratifiedPlan.kind: StratifiedPlan,
    ValidationPlan.kind: ValidationPlan,
    AdaptivePlan.kind: AdaptivePlan,
}


def plan_from_dict(payload: Dict[str, object]) -> SamplingPlan:
    """Rebuild a plan from :meth:`SamplingPlan.to_dict` output."""
    data = dict(payload)
    kind = data.pop("kind", None)
    try:
        cls = PLAN_KINDS[kind]
    except KeyError:
        raise ValueError(
            f"unknown plan kind {kind!r}; available: {', '.join(sorted(PLAN_KINDS))}"
        ) from None
    if data.get("objects") is not None:
        data["objects"] = tuple(data["objects"])
    return cls(**data)


def parse_plan(spec: str, objects: Optional[Sequence[str]] = None) -> SamplingPlan:
    """Parse a CLI plan spec into a plan object.

    Grammar (``@SEED`` is optional on the randomised plans; exhaustive
    plans are seedless and reject one)::

        exhaustive[:BIT_STRIDE]
        fixed:TESTS[@SEED]
        stratified:PER_STRATUMxINTERVALS[@SEED]
        adaptive:HALF_WIDTH[xBATCH_SIZE][@SEED]

    Examples: ``fixed:64``, ``fixed:500@7``, ``stratified:8x4``,
    ``adaptive:0.05x32``.
    """
    objects_t = tuple(objects) if objects else None
    kind, _, rest = spec.strip().partition(":")
    seed = 0
    seeded = "@" in rest
    if seeded:
        rest, _, seed_text = rest.rpartition("@")
        try:
            seed = int(seed_text)
        except ValueError:
            raise ValueError(f"bad plan seed {seed_text!r} in {spec!r}") from None
    try:
        if kind == "exhaustive":
            if seeded:
                raise ValueError("exhaustive plans take no seed")
            stride = int(rest) if rest else 1
            return ExhaustivePlan(objects=objects_t, bit_stride=stride)
        if kind == "fixed":
            if not rest:
                raise ValueError("fixed plan needs a test count, e.g. fixed:64")
            return FixedRandomPlan(tests=int(rest), seed=seed, objects=objects_t)
        if kind == "stratified":
            per, _, intervals = rest.partition("x")
            return StratifiedPlan(
                per_stratum=int(per),
                intervals=int(intervals) if intervals else 4,
                seed=seed,
                objects=objects_t,
            )
        if kind == "adaptive":
            width, _, batch = rest.partition("x")
            return AdaptivePlan(
                target_half_width=float(width),
                batch_size=int(batch) if batch else 32,
                seed=seed,
                objects=objects_t,
            )
    except ValueError as exc:
        raise ValueError(f"cannot parse plan spec {spec!r}: {exc}") from None
    raise ValueError(
        f"unknown plan kind {kind!r} in {spec!r}; "
        f"available: {', '.join(sorted(PLAN_KINDS))}"
    )
