"""``python -m repro`` — the campaign command line.

Subcommands::

    repro campaign run WORKLOAD --plan SPEC [options]   start / continue
    repro campaign resume TARGET [options]              continue an interrupted one
    repro campaign status [TARGET]                      progress + outcome tables
    repro campaign export TARGET [--out FILE]           JSONL dump of the store rows
    repro campaign report TARGET [options]              aDVF tables (from the store)
    repro stats TARGET [--promfile FILE]                telemetry tables (from the store)
    repro timeline TARGET [--run N]                     flight-recorder waterfall (from the store)
    repro obs serve [--port N]                          live HTTP observability endpoint
    repro bench check [--tolerance F]                   bench-regression watchdog
    repro protect plan|apply|validate|report ...        selective protection
    repro workloads                                     list registered workloads

``campaign run``/``resume`` accept ``--serve [PORT]`` (or the
``REPRO_OBS_PORT`` environment variable) to start the observability
endpoint in-process, so a running campaign is scrapeable at
``/metrics`` and watchable at ``/events`` while it executes.

``TARGET`` is either a campaign id (``c0123abcd…`` as printed by ``run``)
or a workload name combined with ``--plan`` — the content-addressed id is
recomputed from them, so ``run`` followed by ``resume`` with the same
arguments lands on the same campaign without copying ids around.

The store location comes from ``--store`` or the ``REPRO_STORE``
environment variable (default ``campaigns.sqlite``); worker counts from
``--workers`` or ``REPRO_WORKERS``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List, Optional, Sequence

from repro.campaigns.orchestrator import (
    DEFAULT_SHARD_SIZE,
    CampaignOrchestrator,
)
from repro.campaigns.plans import parse_plan, plan_from_dict
from repro.campaigns.store import CampaignStore, compute_campaign_id
from repro.core.advf import AnalysisConfig
from repro.core.patterns import SingleBitModel
from repro.obs.log import get_logger
from repro.obs.prom import render_promfile
from repro.protection import cli as protect_cli
from repro.reporting import (
    format_advf_report_table,
    format_campaign_list,
    format_metrics_table,
    format_outcome_table,
    format_shard_table,
    format_table,
    format_timeline,
)
from repro.workloads.registry import validate_workload, workload_summaries

DEFAULT_STORE = "campaigns.sqlite"


def _parse_set(values: Sequence[str]) -> Dict[str, object]:
    """Parse repeated ``--set key=value`` overrides (values decoded as JSON
    when possible, kept as strings otherwise)."""
    out: Dict[str, object] = {}
    for item in values:
        key, sep, raw = item.partition("=")
        if not sep or not key:
            raise SystemExit(f"--set expects key=value, got {item!r}")
        try:
            out[key] = json.loads(raw)
        except json.JSONDecodeError:
            out[key] = raw
    return out


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MOARD reproduction: durable fault-injection campaigns.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("workloads", help="list registered workloads")

    campaign = sub.add_parser("campaign", help="run and inspect campaigns")
    csub = campaign.add_subparsers(dest="action", required=True)

    def common(p: argparse.ArgumentParser, with_exec: bool = False) -> None:
        p.add_argument(
            "--store",
            default=None,
            help=f"SQLite store path (default: $REPRO_STORE or {DEFAULT_STORE})",
        )
        if with_exec:
            p.add_argument("--workers", type=int, default=None,
                           help="worker processes (default: $REPRO_WORKERS or cores-1)")
            p.add_argument("--max-shards", type=int, default=None,
                           help="execute at most N shards this run (smoke/interrupt)")
            p.add_argument("--serve", nargs="?", const=0, type=int, default=None,
                           metavar="PORT",
                           help="serve the live observability endpoint while the "
                                "campaign runs (bare --serve: $REPRO_OBS_PORT or "
                                "the default port)")

    def target_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("target", help="campaign id, or workload name (with --plan)")
        p.add_argument("--plan", default=None, help="plan spec when TARGET is a workload")
        p.add_argument("--objects", default=None,
                       help="comma-separated data objects (default: workload targets)")
        p.add_argument("--shard-size", type=int, default=DEFAULT_SHARD_SIZE,
                       help=f"specs per shard (default {DEFAULT_SHARD_SIZE})")
        p.add_argument("--set", action="append", default=[], metavar="KEY=VALUE",
                       help="workload constructor override (repeatable)")

    run = csub.add_parser("run", help="start (or continue) a campaign")
    run.add_argument("workload", help="registered workload name")
    run.add_argument("--plan", required=True,
                     help="sampling plan: exhaustive[:STRIDE] | fixed:N[@SEED] | "
                          "stratified:NxI[@SEED] | adaptive:H[xBATCH][@SEED]")
    run.add_argument("--objects", default=None,
                     help="comma-separated data objects (default: workload targets)")
    run.add_argument("--shard-size", type=int, default=DEFAULT_SHARD_SIZE,
                     help=f"specs per shard (default {DEFAULT_SHARD_SIZE})")
    run.add_argument("--set", action="append", default=[], metavar="KEY=VALUE",
                     help="workload constructor override (repeatable)")
    common(run, with_exec=True)

    resume = csub.add_parser("resume", help="resume an interrupted campaign")
    target_args(resume)
    common(resume, with_exec=True)

    status = csub.add_parser("status", help="campaign progress and outcomes")
    status.add_argument("target", nargs="?", default=None,
                        help="campaign id or workload name (with --plan); "
                             "omit to list all campaigns")
    status.add_argument("--plan", default=None)
    status.add_argument("--objects", default=None)
    status.add_argument("--shard-size", type=int, default=DEFAULT_SHARD_SIZE)
    status.add_argument("--set", action="append", default=[], metavar="KEY=VALUE")
    status.add_argument("--metrics", action="store_true",
                        help="append the campaign's merged metrics table")
    common(status)

    export = csub.add_parser("export", help="dump a campaign as JSON lines")
    target_args(export)
    export.add_argument("--out", default="-", help="output file (default: stdout)")
    common(export)

    report = csub.add_parser("report", help="aDVF report tables (store-backed)")
    target_args(report)
    report.add_argument("--max-injections", type=int, default=100,
                        help="injection budget per object when computing reports")
    report.add_argument("--bit-stride", type=int, default=8,
                        help="bit stride of the analysis error model")
    report.add_argument("--refresh", action="store_true",
                        help="recompute reports even if already stored")
    common(report, with_exec=True)

    stats = sub.add_parser(
        "stats",
        help="campaign telemetry: shard timings, hit rates, merged metrics",
    )
    target_args(stats)
    stats.add_argument("--promfile", default=None, metavar="FILE",
                       help="also write the merged metrics as a Prometheus "
                            "textfile (node-exporter collector format)")
    common(stats)

    timeline = sub.add_parser(
        "timeline",
        help="flight-recorder waterfall: per-shard span timings from the store",
    )
    target_args(timeline)
    timeline.add_argument("--run", type=int, default=None,
                          help="show one orchestrator run only (default: all)")
    timeline.add_argument("--width", type=int, default=40,
                          help="timeline bar width in characters (default 40)")
    timeline.add_argument("--limit", type=int, default=None,
                          help="show at most N spans per run")
    common(timeline)

    obs = sub.add_parser("obs", help="live observability endpoint")
    osub = obs.add_subparsers(dest="action", required=True)
    serve = osub.add_parser(
        "serve",
        help="serve /metrics, /healthz, /campaigns and SSE /events over HTTP",
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=None,
                       help="port (default: $REPRO_OBS_PORT or 9208; 0 = ephemeral)")
    common(serve)

    bench = sub.add_parser("bench", help="bench-regression watchdog")
    bsub = bench.add_subparsers(dest="action", required=True)
    check = bsub.add_parser(
        "check",
        help="re-run watched benchmarks against the committed BENCH_*.json "
             "baselines; exit nonzero on regression past tolerance",
    )
    check.add_argument("--tolerance", type=float, default=None,
                       help="relative regression tolerance (default 0.2 = 20%%)")
    check.add_argument("--bench", action="append", default=None,
                       metavar="NAME",
                       help="benchmark to check (repeatable; default: all watched)")
    check.add_argument("--update", action="store_true",
                       help="rewrite the baseline measurements from the fresh run "
                            "(history is kept either way)")
    check.add_argument("--no-record", action="store_true",
                       help="compare only; do not append a history entry")

    protect_cli.register(sub, common)

    return parser


# --------------------------------------------------------------------- #
# target resolution
# --------------------------------------------------------------------- #
def _objects_tuple(args) -> Optional[Sequence[str]]:
    if getattr(args, "objects", None):
        return tuple(part.strip() for part in args.objects.split(",") if part.strip())
    return None


def _parse_plan_arg(args):
    try:
        return parse_plan(args.plan, objects=_objects_tuple(args))
    except ValueError as exc:
        raise SystemExit(str(exc)) from None


def _resolve_campaign_id(store: CampaignStore, args) -> str:
    """TARGET → campaign id: a stored id verbatim, or workload + --plan."""
    target = args.target
    if target and store.has_campaign(target):
        return target
    if target is None:
        raise SystemExit("a campaign id or workload name is required")
    try:
        workload = validate_workload(target)
    except KeyError as exc:
        raise SystemExit(
            f"{target!r} is neither a campaign id in {store.path!r} nor a "
            f"known workload: {exc}"
        ) from None
    if not args.plan:
        raise SystemExit(
            f"TARGET {target!r} is a workload name; pass --plan to identify "
            "the campaign (ids are derived from workload + plan)"
        )
    plan = _parse_plan_arg(args)
    kwargs = _parse_set(args.set)
    campaign_id = compute_campaign_id(
        workload, kwargs, plan.to_dict(), args.shard_size
    )
    if not store.has_campaign(campaign_id):
        raise SystemExit(
            f"no campaign for workload {workload!r} with plan {args.plan!r} "
            f"in {store.path!r} (expected id {campaign_id})"
        )
    return campaign_id


def _open_store(args) -> CampaignStore:
    path = args.store or os.environ.get("REPRO_STORE") or DEFAULT_STORE
    return CampaignStore(path)


def _print_result(store: CampaignStore, result) -> None:
    print(
        f"campaign {result.campaign_id}: {result.status} "
        f"(run {result.run_id}: executed {result.executed_shards} shards / "
        f"{result.executed_injections} injections, skipped "
        f"{result.skipped_shards} already-persisted shards)"
    )
    if result.histograms:
        print()
        print(format_outcome_table(result.histograms))


# --------------------------------------------------------------------- #
# in-process observability endpoint (campaign run/resume --serve)
# --------------------------------------------------------------------- #
def _maybe_serve(args, store_path: str):
    """Start the observability endpoint next to a campaign, if requested.

    ``--serve PORT`` binds that port; bare ``--serve`` (or just setting
    ``REPRO_OBS_PORT``) uses the environment's port or the default.
    Returns the running server, or ``None`` when serving is off.
    """
    env_port = os.environ.get("REPRO_OBS_PORT")
    if getattr(args, "serve", None) is None and not env_port:
        return None
    from repro.obs.serve import DEFAULT_PORT, ObsServer

    port = args.serve if args.serve else int(env_port or DEFAULT_PORT)
    server = ObsServer(port=port, store_path=store_path).start()
    print(f"observability endpoint: {server.url}", file=sys.stderr)
    return server


def _stop_server(server) -> None:
    """Stop the in-process endpoint, honouring the ``REPRO_OBS_GRACE``
    linger (seconds) so scrapers can still read the finished campaign."""
    if server is None:
        return
    grace = float(os.environ.get("REPRO_OBS_GRACE", "0") or 0)
    if grace > 0:
        time.sleep(grace)
    server.stop()


def _cmd_run(args) -> int:
    with _open_store(args) as store:
        plan = _parse_plan_arg(args)
        orchestrator = CampaignOrchestrator(
            store,
            args.workload,
            workload_kwargs=_parse_set(args.set),
            plan=plan,
            workers=args.workers,
            shard_size=args.shard_size,
        )
        server = _maybe_serve(args, store.path)
        try:
            result = orchestrator.run(max_shards=args.max_shards)
            _print_result(store, result)
        finally:
            _stop_server(server)
    return 0


def _cmd_resume(args) -> int:
    with _open_store(args) as store:
        campaign_id = _resolve_campaign_id(store, args)
        orchestrator = CampaignOrchestrator.from_store(
            store,
            campaign_id,
            workers=args.workers,
        )
        server = _maybe_serve(args, store.path)
        try:
            result = orchestrator.run(max_shards=args.max_shards)
            _print_result(store, result)
        finally:
            _stop_server(server)
    return 0


def _cmd_status(args) -> int:
    with _open_store(args) as store:
        if args.target is None:
            rows = []
            for record in store.campaigns():
                status = store.status(record.campaign_id)
                plan = plan_from_dict(record.plan)
                rows.append(
                    {
                        "campaign_id": record.campaign_id,
                        "workload": record.workload,
                        "plan": plan.describe(),
                        "status": record.status,
                        "shards": status.shards_done,
                        "injections": status.injections_done,
                    }
                )
            if not rows:
                print(f"no campaigns in {store.path!r}")
            else:
                print(format_campaign_list(rows))
            return 0
        campaign_id = _resolve_campaign_id(store, args)
        status = store.status(campaign_id)
        record = status.record
        plan = plan_from_dict(record.plan)
        print(f"campaign   : {campaign_id}")
        print(f"workload   : {record.workload} {record.workload_kwargs or ''}".rstrip())
        print(f"plan       : {plan.describe()}")
        print(f"status     : {record.status}")
        print(f"trace      : {record.trace_digest or '-'} (cached columnar "
              f"golden trace; see REPRO_TRACE_CACHE)")
        print(f"shards done: {status.shards_done} ({status.injections_done} injections)")
        for run_id, executed, skipped in status.runs:
            print(f"  run {run_id}: executed {executed} shards, skipped {skipped}")
        if status.shards:
            print()
            print(format_shard_table(_shard_rows(status.shards), limit=20))
        if status.histograms:
            print()
            print(format_outcome_table(status.histograms))
        if getattr(args, "metrics", False):
            merged = store.campaign_metrics(campaign_id)
            print()
            if any(merged.values()):
                print(format_metrics_table(merged))
            else:
                print("no run metrics recorded (REPRO_METRICS=0, or a "
                      "pre-v5 campaign)")
    return 0


def _shard_rows(shards) -> List[Dict[str, object]]:
    """Store shard records → the flat row dicts ``format_shard_table`` takes."""
    return [
        {
            "shard": shard.shard_index,
            "object": shard.object_name,
            "batch": shard.batch,
            "run": shard.run_id,
            "specs": shard.spec_count,
            "inject_s": shard.duration_s,
            "analysis_s": shard.analysis_s,
            "rbatches": shard.batches,
            "memo_hits": shard.memo_hits,
            "memo_misses": shard.memo_misses,
            "speculated": shard.speculated,
            "spec_discards": shard.spec_discards,
            "spec_windows": shard.spec_windows,
        }
        for shard in shards
    ]


def _counter_total(snapshot: Dict[str, object], name: str) -> int:
    """Sum of one counter over every label combination in a snapshot."""
    return int(sum(
        entry["value"]
        for entry in snapshot.get("counters", ())  # type: ignore[union-attr]
        if entry["name"] == name
    ))


def _cmd_stats(args) -> int:
    with _open_store(args) as store:
        campaign_id = _resolve_campaign_id(store, args)
        status = store.status(campaign_id)
        record = status.record
        merged = store.campaign_metrics(campaign_id)
        print(f"campaign : {campaign_id} ({record.workload}, {record.status})")
        print(f"repro    : {record.repro_version or '-'} "
              f"(store schema v{store.schema_version})")
        print(f"runs     : {len(store.run_metrics(campaign_id))} of "
              f"{len(status.runs)} with metrics")
        if status.shards:
            print()
            print(format_shard_table(_shard_rows(status.shards), limit=20))
        print()
        for label, hit_name, miss_name in (
            ("trace cache", "trace_cache.hits", "trace_cache.misses"),
            ("mir cache", "mir_cache.hits", "mir_cache.misses"),
            ("replay memo", "replay.memo_hits", "replay.memo_misses"),
        ):
            hits = _counter_total(merged, hit_name)
            misses = _counter_total(merged, miss_name)
            probes = hits + misses
            rate = f"{hits / probes:.2f}" if probes else "-"
            print(f"{label:<11}: {hits} hits / {misses} misses "
                  f"(hit rate {rate})")
        persist_hits = _counter_total(merged, "replay.memo_persist_hits")
        persist_loads = _counter_total(merged, "replay.memo_persist_loads")
        persist_merges = _counter_total(merged, "replay.memo_persist_merges")
        print(f"{'memo store':<11}: {persist_hits} warm-start hits / "
              f"{persist_loads} loads / {persist_merges} merges "
              f"(persisted convergence memo; see REPRO_MEMO_CACHE)")
        speculated = _counter_total(merged, "advf.speculated")
        discards = _counter_total(merged, "advf.speculation_discards")
        disc_rate = f"{discards / speculated:.2f}" if speculated else "-"
        print(f"{'speculation':<11}: {speculated} speculated / "
              f"{discards} discarded (discard rate {disc_rate})")
        print()
        if any(merged.values()):
            print(format_metrics_table(merged))
        else:
            print("no run metrics recorded (REPRO_METRICS=0, or a pre-v5 "
                  "campaign)")
        if args.promfile:
            with open(args.promfile, "w", encoding="utf-8") as fh:
                fh.write(render_promfile(merged))
            print(f"wrote promfile to {args.promfile}", file=sys.stderr)
    return 0


def _cmd_timeline(args) -> int:
    with _open_store(args) as store:
        campaign_id = _resolve_campaign_id(store, args)
        spans = store.run_spans(campaign_id, run_id=args.run)
        print(f"campaign {campaign_id}: {len(spans)} recorded spans")
        records = [
            {
                "run_id": span.run_id,
                "name": span.name,
                "depth": span.depth,
                "pid": span.pid,
                "shard_index": span.shard_index,
                "start_ts": span.start_ts,
                "duration_s": span.duration_s,
                "labels": span.labels,
            }
            for span in spans
        ]
        print(format_timeline(records, width=args.width, limit=args.limit))
    return 0


def _cmd_obs_serve(args) -> int:
    from repro.obs.serve import DEFAULT_PORT, ObsServer

    port = args.port
    if port is None:
        port = int(os.environ.get("REPRO_OBS_PORT") or DEFAULT_PORT)
    store_path = args.store or os.environ.get("REPRO_STORE") or DEFAULT_STORE
    server = ObsServer(host=args.host, port=port, store_path=store_path)
    server.start()
    print(
        f"serving observability endpoint on {server.url} "
        f"(store {store_path!r}); Ctrl-C to stop",
        file=sys.stderr,
    )
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    return 0


def _cmd_bench_check(args) -> int:
    from repro.obs.bench import (
        DEFAULT_TOLERANCE,
        check_benches,
        format_reports,
    )

    tolerance = args.tolerance if args.tolerance is not None else DEFAULT_TOLERANCE
    reports = check_benches(
        args.bench,
        tolerance=tolerance,
        update=args.update,
        record=not args.no_record,
    )
    print(format_reports(reports))
    regressed = [report.name for report in reports if report.regressed]
    if regressed:
        print(
            f"bench regression past tolerance {tolerance:.0%}: "
            f"{', '.join(regressed)}",
            file=sys.stderr,
        )
        return 1
    print(
        f"bench check ok ({len(reports)} benchmarks within "
        f"{tolerance:.0%} of baseline)",
        file=sys.stderr,
    )
    return 0


def _cmd_export(args) -> int:
    with _open_store(args) as store:
        campaign_id = _resolve_campaign_id(store, args)
        if args.out == "-":
            lines = store.export_jsonl(campaign_id, sys.stdout)
        else:
            with open(args.out, "w", encoding="utf-8") as fh:
                lines = store.export_jsonl(campaign_id, fh)
            print(f"wrote {lines} lines to {args.out}", file=sys.stderr)
    return 0


def _cmd_report(args) -> int:
    with _open_store(args) as store:
        campaign_id = _resolve_campaign_id(store, args)
        orchestrator = CampaignOrchestrator.from_store(
            store,
            campaign_id,
            workers=args.workers,
        )
        config = AnalysisConfig(
            max_injections=args.max_injections,
            error_model=SingleBitModel(bit_stride=args.bit_stride),
            equivalence_samples=1,
            injection_samples_per_class=1,
        )
        reports = orchestrator.compute_reports(config, refresh=args.refresh)
        payloads = {name: report.to_dict() for name, report in reports.items()}
        print(format_advf_report_table(payloads))
        histograms = store.outcome_histograms(campaign_id)
        if histograms:
            print()
            print(format_outcome_table(histograms))
    return 0


def _cmd_workloads() -> int:
    rows = workload_summaries()
    print(
        format_table(
            ["name", "description", "target objects"],
            [
                [row["name"], row["description"], ", ".join(row["target_objects"])]
                for row in rows
            ],
        )
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "workloads":
            return _cmd_workloads()
        if args.command == "stats":
            return _cmd_stats(args)
        if args.command == "timeline":
            return _cmd_timeline(args)
        if args.command == "obs":
            return _cmd_obs_serve(args)
        if args.command == "bench":
            return _cmd_bench_check(args)
        if args.command == "protect":
            return protect_cli.dispatch(
                args,
                open_store=_open_store,
                parse_set=_parse_set,
                say=lambda line: get_logger("protect").info("progress", line),
            )
        action = {
            "run": _cmd_run,
            "resume": _cmd_resume,
            "status": _cmd_status,
            "export": _cmd_export,
            "report": _cmd_report,
        }[args.action]
        return action(args)
    except BrokenPipeError:
        # stdout was closed early (e.g. piped into `head`); not an error.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
