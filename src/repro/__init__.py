"""MOARD reproduction: modeling application resilience to transient faults on data objects.

This package reproduces the system described in "MOARD: Modeling Application
Resilience to Transient Faults on Data Objects" (Guo & Li, IPDPS 2019).  It
provides, in pure Python:

* a small LLVM-like IR, a Python-subset kernel frontend and a tracing
  virtual machine (``repro.ir``, ``repro.frontend``, ``repro.vm``,
  ``repro.tracing``) — the substrates the original tool gets from LLVM
  instrumentation;
* the MOARD trace-analysis model itself (``repro.core``): error-masking
  classification, bounded error-propagation analysis, deterministic /
  exhaustive / random fault injection and the aDVF metric;
* the workloads studied in the paper (``repro.workloads``), an ABFT GEMM
  (``repro.abft``), a multiprocessing campaign runner (``repro.parallel``)
  and text reporting of the paper's tables and figures (``repro.reporting``);
* durable campaign orchestration (``repro.campaigns``): an append-only
  SQLite result store, resumable sharded campaigns, adaptive sampling
  plans and the ``python -m repro campaign`` CLI.

Quickstart
----------
>>> from repro import analyze_workload
>>> report = analyze_workload("lu", targets=["sum"])       # doctest: +SKIP
>>> report.advf["sum"].value                               # doctest: +SKIP
0.43
"""

from repro.version import __version__

__all__ = ["__version__"]


def __getattr__(name):
    # Lazy re-exports so `import repro` stays cheap and cycle-free.
    if name in ("analyze_workload", "AdvfEngine", "AnalysisConfig"):
        from repro.core import advf as _advf

        return getattr(_advf, name)
    if name == "WORKLOADS":
        from repro.workloads.registry import WORKLOADS

        return WORKLOADS
    if name in ("CampaignStore", "CampaignOrchestrator", "wilson_interval"):
        import repro.campaigns as _campaigns

        return getattr(_campaigns, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
