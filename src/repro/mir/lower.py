"""Lowering from :class:`~repro.vm.engine.DecodedProgram` into a block MIR.

The decoded engine executes one ``DecodedOp`` per Python loop iteration; the
dispatch overhead of that loop (operand resolution, fault-window checks,
per-op sink calls) is the hard floor under every golden run.  This module
lowers a decoded function into *extended basic blocks*: maximal loop-free
straight-line segments of slot-typed instructions.  A segment starts at any
executable pc, follows fall-through control flow, and — when an
unconditional branch targets a block with exactly one predecessor and no
phis — merges across the branch, so a chain ``body → tail → exit-check``
becomes a single segment even though the frontend split it into blocks.

Segments are a *partition* of the function's pc space: every pc belongs to
exactly one segment at exactly one offset, and
:meth:`MirFunction.location_of` / :meth:`MirFunction.pc_at` convert between
the two addressings losslessly.  Fault-site addressing, checkpoint
schedules, and trace dynamic ids all remain in op-index space; the MIR is
pure execution strategy.

Segments with at least two ops are *fused*: compiled (see
:mod:`repro.mir.fuse`) into a superinstruction — an ``exec``-specialized
Python callable that executes the whole segment without touching the op
loop.  Single-op segments and the non-fusable ops (``ret``, user calls,
``phi``) stay with the op loop, which doubles as the bit-identity oracle.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.vm.engine import (
    DecodedFunction,
    DecodedProgram,
    K_ALLOCA,
    K_BR,
    K_BR_COND,
    K_CALL_INTRINSIC,
    K_CALL_USER,
    K_FN,
    K_GEP,
    K_LOAD,
    K_PHI,
    K_RET,
    K_STORE,
)

#: Kinds that may appear in the interior of a fused segment.
FUSABLE_BODY = frozenset((K_FN, K_LOAD, K_STORE, K_GEP, K_ALLOCA, K_CALL_INTRINSIC))

#: Kinds that end a segment *before* themselves (executed by the op loop).
SEGMENT_BARRIERS = frozenset((K_RET, K_CALL_USER, K_PHI))


class MirSegment:
    """One straight-line segment: a run of pcs executed as a unit.

    ``pcs`` lists the op-index of every op in execution order (contiguous
    within a block; EBB merges jump to the start of the merged block).
    ``plain`` / ``traced`` are the compiled superinstruction variants
    (``None`` for unfused segments); the traced variant is compiled lazily
    because most runs never trace.
    """

    __slots__ = (
        "index",
        "start_pc",
        "pcs",
        "n_ops",
        "fused",
        "plain",
        "traced",
        "counts",
        "opcode_values",
        "_df",
        "_static",
    )

    def __init__(self, index: int, pcs: Tuple[int, ...], fused: bool, df: DecodedFunction):
        self.index = index
        self.start_pc = pcs[0]
        self.pcs = pcs
        self.n_ops = len(pcs)
        self.fused = fused
        self.plain = None
        self.traced = None
        self._df = df
        self._static = None
        ops = df.ops
        self.opcode_values: Tuple[str, ...] = tuple(ops[pc].opcode.value for pc in pcs)
        counts: Dict[str, int] = {}
        for key in self.opcode_values:
            counts[key] = counts.get(key, 0) + 1
        self.counts = counts

    def counts_prefix(self, k: int) -> Dict[str, int]:
        """Opcode counts of the first ``k`` ops (partial-crash accounting)."""
        counts: Dict[str, int] = {}
        for key in self.opcode_values[:k]:
            counts[key] = counts.get(key, 0) + 1
        return counts

    def compile_traced(self):
        """Compile (and cache) the trace-emitting superinstruction variant."""
        from repro.mir.fuse import compile_segment

        fn = compile_segment(self._df, self, traced=True)
        self.traced = fn
        return fn

    def block_static(self):
        """Per-segment static trace columns (see ``ColumnarTrace.append_block``)."""
        if self._static is None:
            from repro.mir.fuse import build_block_static

            self._static = build_block_static(self._df, self)
        return self._static

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tag = "fused" if self.fused else "plain-loop"
        return f"<MirSegment #{self.index} pcs={self.pcs[0]}..{self.pcs[-1]} n={self.n_ops} {tag}>"


class MirFunction:
    """All segments of one decoded function plus the two addressings."""

    __slots__ = ("name", "df", "segments", "dispatch", "_loc")

    def __init__(self, df: DecodedFunction, segments: List[MirSegment]):
        self.name = df.name
        self.df = df
        self.segments = segments
        n = len(df.ops)
        # op-index -> (segment, offset); total over all pcs by construction.
        loc: List[Optional[Tuple[int, int]]] = [None] * n
        for seg in segments:
            for offset, pc in enumerate(seg.pcs):
                loc[pc] = (seg.index, offset)
        self._loc = loc
        # Fast-path dispatch table: a fused segment at its *entry* pc, None
        # everywhere else.  Resuming mid-segment (checkpoints land anywhere)
        # simply misses the table and runs the op loop until the next entry.
        dispatch: List[Optional[MirSegment]] = [None] * n
        for seg in segments:
            if seg.fused:
                dispatch[seg.start_pc] = seg
        self.dispatch = dispatch

    def location_of(self, pc: int) -> Tuple[int, int]:
        """Map an op index to its ``(segment_index, offset)``."""
        return self._loc[pc]

    def pc_at(self, segment_index: int, offset: int) -> int:
        """Map ``(segment_index, offset)`` back to the op index."""
        return self.segments[segment_index].pcs[offset]


class MirProgram:
    """Lowered form of a whole decoded program."""

    __slots__ = ("functions",)

    def __init__(self, functions: Dict[str, MirFunction]):
        self.functions = functions


def _block_meta(df: DecodedFunction) -> Tuple[List[int], List[int]]:
    """Per-block start pcs and predecessor counts (entry gets an implicit one)."""
    nblocks = len(df.block_labels)
    block_start = [-1] * nblocks
    preds = [0] * nblocks
    if nblocks:
        preds[0] += 1  # function entry edge
    for pc, op in enumerate(df.ops):
        bi = op.block_index
        if block_start[bi] < 0:
            block_start[bi] = pc
        kind = op.kind
        if kind == K_BR:
            preds[op.block_true] += 1
        elif kind == K_BR_COND:
            preds[op.block_true] += 1
            preds[op.block_false] += 1
    return block_start, preds


def lower_function(df: DecodedFunction) -> MirFunction:
    """Partition ``df`` into segments and compile the fused ones."""
    from repro.mir.fuse import compile_segment

    ops = df.ops
    n = len(ops)
    block_start, preds = _block_meta(df)
    covered = [False] * n
    segments: List[MirSegment] = []

    for pc0 in range(n):
        if covered[pc0]:
            continue
        if ops[pc0].kind in SEGMENT_BARRIERS:
            covered[pc0] = True
            segments.append(MirSegment(len(segments), (pc0,), False, df))
            continue

        pcs: List[int] = []
        visited_blocks = {ops[pc0].block_index}
        pc = pc0
        while True:
            op = ops[pc]
            kind = op.kind
            if kind in FUSABLE_BODY:
                pcs.append(pc)
                pc += 1
                continue
            if kind == K_BR_COND:
                pcs.append(pc)
                break
            if kind == K_BR:
                target = op.block_true
                target_pc = block_start[target]
                if (
                    preds[target] == 1
                    and target not in visited_blocks
                    and not covered[target_pc]
                    and ops[target_pc].kind != K_PHI
                ):
                    # EBB merge: the branch is the sole way into ``target``
                    # and the merge stays loop-free, so fall through it.
                    pcs.append(pc)
                    visited_blocks.add(target)
                    pc = target_pc
                    continue
                pcs.append(pc)
                break
            # ret / user call / phi: segment ends just before it and the op
            # loop picks up at this pc (the codegen's static exit).
            break

        for covered_pc in pcs:
            covered[covered_pc] = True
        fused = len(pcs) >= 2
        seg = MirSegment(len(segments), tuple(pcs), fused, df)
        if fused:
            seg.plain = compile_segment(df, seg, traced=False)
        segments.append(seg)

    return MirFunction(df, segments)


def lower_program(decoded: DecodedProgram) -> MirProgram:
    """Lower every function of a decoded program."""
    return MirProgram({name: lower_function(df) for name, df in decoded.functions.items()})
