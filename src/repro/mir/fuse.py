"""Superinstruction codegen: straight-line segments → specialized Python.

Each fused :class:`~repro.mir.lower.MirSegment` is compiled — once per
distinct program, via the digest-keyed cache — into an ``exec``-specialized
callable that executes the whole segment without per-op dispatch.  The
generated code *inlines* the engine's semantics (operand resolution, the
masking arithmetic of :mod:`repro.vm.semantics`, the address resolution and
access checks of :mod:`repro.vm.memory`) so the op loop remains the single
source of truth only in the sense of an oracle: every inlined rule mirrors
one rule there bit-exactly, including error types, error messages, and
evaluation order.  The differential fuzz harness (``tests/test_mir_parity``)
and the benchmark bit-identity gate hold the two implementations together.

Two variants per segment:

* **plain** — ``fn(frame, regs, memory, cell) -> next_pc``; used for
  sink-free runs and (with an O(1) ``tick_block`` call layered on top by the
  engine) for counting sinks.
* **traced** — ``fn(frame, regs, prods, memory, sink, last_writer,
  dynbase, cell) -> next_pc``; accumulates the segment's trace rows locally
  and bulk-appends them into the columnar sink
  (:meth:`~repro.tracing.columnar.ColumnarTrace.append_block`).  Compiled
  lazily: most runs never trace.

Crash protocol: the generated body maintains ``done`` (ops fully executed so
far); on any exception it stores ``done`` into the caller's ``cell`` and
re-raises, so the engine can advance ``dyn`` by the completed prefix — the
op loop's exact accounting (a crashing op contributes no step and no trace
event).  Register/producer writeback is deferred to segment success; memory
effects happen in place, matching the op loop's ordering observable at any
crash or pause boundary (pauses never land mid-segment, and a crash pops
the frames anyway).

Known (accepted) sharing caveat: compiled segments are shared across
structurally identical modules via the print-digest cache, and the
use-before-definition error message embeds ``src_names``, which for unnamed
values contains a process-global uid.  The ``-O0`` frontend cannot emit a
use-before-def, so this near-dead path can differ only in message text
across module instances — never in behaviour.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, List, Optional, Set, Tuple

from repro.ir.instructions import Opcode
from repro.ir.types import IRType
from repro.vm.engine import (
    DecodedFunction,
    K_ALLOCA,
    K_BR,
    K_BR_COND,
    K_CALL_INTRINSIC,
    K_FN,
    K_GEP,
    K_LOAD,
    K_STORE,
    _UNDEF,
)
from repro.vm.errors import SegmentationFault, VMError
from repro.vm.memory import Memory
from repro.vm.semantics import float_divide, float_remainder

_INT_BIN = {Opcode.ADD: "+", Opcode.SUB: "-", Opcode.MUL: "*"}
_BITWISE = {Opcode.AND: "&", Opcode.OR: "|", Opcode.XOR: "^"}
_FLOAT_BIN = {Opcode.FADD: "+", Opcode.FSUB: "-", Opcode.FMUL: "*"}
_ICMP_OPS = {
    "eq": "==", "ne": "!=",
    "slt": "<", "sle": "<=", "sgt": ">", "sge": ">=",
    "ult": "<", "ule": "<=", "ugt": ">", "uge": ">=",
}
_ICMP_UNSIGNED = frozenset(("ult", "ule", "ugt", "uge"))
_FCMP_OPS = {"oeq": "==", "olt": "<", "ole": "<=", "ogt": ">", "oge": ">="}

_INF = float("inf")


class _MemoEntry:
    """Codegen-time record of an already-resolved address expression.

    Within one segment no allocation is released and fresh allocations only
    extend the address map in place, so ``address -> (object, index)`` is
    stable: repeated accesses through the same address expression reuse the
    first resolution and only (re-)validate the access *type*.
    """

    __slots__ = ("avar", "ovar", "eivar", "etvar", "checked", "fresh")

    def __init__(self, avar, ovar, eivar, etvar, checked, fresh):
        self.avar = avar
        self.ovar = ovar
        self.eivar = eivar
        self.etvar = etvar  # None when the element type is known statically
        self.checked: Set[IRType] = checked
        self.fresh = fresh  # object allocated inside this segment (no CoW)


class _Emitter:
    def __init__(self, df: DecodedFunction, seg, traced: bool):
        self.df = df
        self.seg = seg
        self.traced = traced
        self.lines: List[str] = []
        self.pool: List[object] = []
        self._pool_ids: Dict[int, int] = {}
        self.slot_name: Dict[int, str] = {}
        self.def_offset: Dict[int, int] = {}
        self.int_names: Set[str] = set()
        self.float_names: Set[str] = set()
        self.memo: Dict[str, _MemoEntry] = {}
        self.uses_mem = False
        self.uses_alloca = False
        self.has_loads = False
        self.has_brcond = False
        self.last_branch_block: Optional[int] = None
        self.exit_expr: Optional[str] = None

    # -------------------------------------------------------------- #
    # small helpers
    # -------------------------------------------------------------- #
    def emit(self, line: str) -> None:
        self.lines.append(line)

    def p(self, obj: object) -> str:
        """Pool a static object; return its access expression."""
        key = id(obj)
        index = self._pool_ids.get(key)
        if index is None:
            index = len(self.pool)
            self.pool.append(obj)
            self._pool_ids[key] = index
        return f"P[{index}]"

    def const_expr(self, value) -> Tuple[str, str]:
        if isinstance(value, int) and not isinstance(value, bool):
            return repr(value), "i"
        if isinstance(value, float):
            if value == value and value not in (_INF, -_INF):
                return repr(value), "f"
            return self.p(value), "f"
        return self.p(value), ""

    def operand(self, op, i: int) -> Tuple[str, str]:
        """Expression for raw operand ``i`` plus its known kind (i/f/'')."""
        s = op.src[i]
        if s < 0:
            return self.const_expr(op.consts[i])
        name = self.slot_name.get(s)
        if name is None:
            name = f"e{s}"
            self.emit(f"{name} = regs[{s}]")
            self.emit(f"if {name} is _UNDEF:")
            message = f"use of value {op.src_names[i]} before definition"
            self.emit(f"    raise VMError({message!r})")
            self.slot_name[s] = name
        if name in self.int_names:
            return name, "i"
        if name in self.float_names:
            return name, "f"
        return name, ""

    @staticmethod
    def as_int(ov: Tuple[str, str]) -> str:
        expr, kind = ov
        return expr if kind == "i" else f"int({expr})"

    @staticmethod
    def as_float(ov: Tuple[str, str]) -> str:
        expr, kind = ov
        return expr if kind == "f" else f"float({expr})"

    def bind_result(self, op, j: int, kind: str) -> str:
        name = f"v{j}"
        if op.dest >= 0:
            self.slot_name[op.dest] = name
            self.def_offset[op.dest] = j
        if kind == "i":
            self.int_names.add(name)
        elif kind == "f":
            self.float_names.add(name)
        return name

    # -------------------------------------------------------------- #
    # address resolution with the per-segment memo
    # -------------------------------------------------------------- #
    def resolve_address(self, j: int, addr: Tuple[str, str], vt: IRType) -> _MemoEntry:
        expr, kind = addr
        entry = self.memo.get(expr)
        if entry is not None:
            if vt not in entry.checked:
                if entry.etvar is None:
                    # element type statically known and != vt: mirror the op
                    # loop's check (raises unless size/floatness-compatible).
                    self.emit(f"_chk({entry.ovar}, {self.p(vt)}, {entry.avar})")
                else:
                    self.emit(f"if {entry.etvar} is not {self.p(vt)}:")
                    self.emit(f"    _chk({entry.ovar}, {self.p(vt)}, {entry.avar})")
                entry.checked.add(vt)
            return entry

        self.uses_mem = True
        avar, ovar, eivar, etvar = f"a{j}", f"o{j}", f"ei{j}", f"et{j}"
        self.emit(f"{avar} = {expr}" if kind == "i" else f"{avar} = int({expr})")
        self.emit(f"p{j} = _br(bases, {avar}) - 1")
        self.emit(f"if p{j} < 0:")
        self.emit(f"    raise _SegF({avar})")
        self.emit(f"{ovar} = bybase[p{j}]")
        self.emit(f"{etvar} = {ovar}.element_type")
        self.emit(f"if {etvar} is {self.p(vt)}:")
        size = vt.size_bytes
        shift = size.bit_length() - 1
        self.emit(f"    off{j} = {avar} - {ovar}.base")
        self.emit(f"    {eivar} = off{j} >> {shift}" if shift else f"    {eivar} = off{j}")
        self.emit(f"    if {eivar} >= {ovar}.count:")
        self.emit(f"        raise _SegF({avar})")
        if size > 1:
            self.emit(f"    if off{j} & {size - 1}:")
            self.emit(
                f"        raise _SegF({avar}, 'misaligned access into ' + {ovar}.name)"
            )
        self.emit("else:")
        self.emit(f"    {ovar}, {eivar} = resolve({avar})")
        self.emit(f"    _chk({ovar}, {self.p(vt)}, {avar})")
        entry = _MemoEntry(avar, ovar, eivar, etvar, {vt}, False)
        self.memo[expr] = entry
        return entry

    # -------------------------------------------------------------- #
    # per-op emission
    # -------------------------------------------------------------- #
    def emit_op(self, j: int, pc: int) -> None:
        op = self.df.ops[pc]
        kind = op.kind
        traced = self.traced

        operands = [self.operand(op, i) for i in range(len(op.src))]
        if traced:
            for i, (expr, _) in enumerate(operands):
                self.emit(f"va({expr})")
                s = op.src[i]
                if s < 0:
                    self.emit("pa(-1)")
                elif s in self.def_offset:
                    self.emit(f"pa(dynbase + {self.def_offset[s]})")
                else:
                    self.emit(f"pa(prods[{s}])")

        if kind == K_FN:
            self.emit_fn(op, j, operands)
        elif kind == K_GEP:
            lhs = self.as_int(operands[0])
            rhs = self.as_int(operands[1])
            name = self.bind_result(op, j, "i")
            term = rhs if op.gep_size == 1 else f"{rhs} * {op.gep_size}"
            self.emit(f"{name} = {lhs} + {term}")
            if traced and op.dest >= 0:
                self.emit(f"res[{j}] = {name}")
        elif kind == K_LOAD:
            self.has_loads = True
            vt = op.result_type
            entry = self.resolve_address(j, operands[0], vt)
            name = self.bind_result(op, j, "f" if vt.is_float else "i")
            cast = "float" if vt.is_float else "int"
            self.emit(f"{name} = {cast}({entry.ovar}.array[{entry.eivar}])")
            if traced:
                self.emit(f"res[{j}] = {name}")
                self.emit(f"adr[{j}] = {entry.avar}")
                self.emit(f"onm[{j}] = {entry.ovar}.name")
                self.emit(f"eli[{j}] = {entry.eivar}")
                self.emit(f"wid[{j}] = lw_get({entry.avar}, -1)")
        elif kind == K_STORE:
            vt = op.op_types[0]
            value = operands[0]
            entry = self.resolve_address(j, operands[1], vt)
            if not entry.fresh:
                self.emit(f"if {entry.ovar}._cow_shared:")
                self.emit(f"    {entry.ovar}.array = {entry.ovar}.array.copy()")
                self.emit(f"    {entry.ovar}._cow_shared = False")
            if vt.is_float:
                self.emit(
                    f"{entry.ovar}.array[{entry.eivar}] = {self.as_float(value)}"
                )
            else:
                mb = max(8, vt.bits)
                mask, sign, full = (1 << mb) - 1, 1 << (mb - 1), 1 << mb
                self.emit(f"t{j} = {self.as_int(value)} & {mask}")
                self.emit(
                    f"{entry.ovar}.array[{entry.eivar}] = "
                    f"t{j} - {full} if t{j} >= {sign} else t{j}"
                )
            if traced:
                self.emit(f"adr[{j}] = {entry.avar}")
                self.emit(f"onm[{j}] = {entry.ovar}.name")
                self.emit(f"eli[{j}] = {entry.eivar}")
                self.emit(f"last_writer[{entry.avar}] = dynbase + {j}")
        elif kind == K_ALLOCA:
            self.uses_alloca = True
            name = self.bind_result(op, j, "i")
            self.emit(
                f"o{j} = alloc({op.alloca_hint!r}, {self.p(op.alloca_type)}, "
                f"{op.alloca_count})"
            )
            self.emit(f"sapp(o{j})")
            self.emit(f"{name} = o{j}.base")
            # Seed the memo: loads/stores through this result hit element 0
            # of a statically-typed, definitely-private, in-bounds object.
            self.memo[name] = _MemoEntry(
                name, f"o{j}", "0", None, {op.alloca_type}, True
            )
            if traced and op.dest >= 0:
                self.emit(f"res[{j}] = {name}")
        elif kind == K_CALL_INTRINSIC:
            args = ", ".join(expr for expr, _ in operands)
            comma = "," if len(operands) == 1 else ""
            rkind = "i" if op.result_type.is_integer else "f"
            name = self.bind_result(op, j, rkind)
            self.emit(f"{name} = {self.p(op.fn)}(({args}{comma}))")
            if traced and op.dest >= 0:
                self.emit(f"res[{j}] = {name}")
        elif kind == K_BR:
            self.last_branch_block = op.block_index
            if j == self.seg.n_ops - 1:
                self.exit_expr = repr(op.pc_true)
        elif kind == K_BR_COND:
            self.has_brcond = True
            self.last_branch_block = op.block_index
            cond = operands[0][0]
            self.emit(f"if {cond}:")
            if traced:
                self.emit(f"    tkn[{j}] = {op.label_true!r}")
            self.emit(f"    nxt = {op.pc_true}")
            self.emit("else:")
            if traced:
                self.emit(f"    tkn[{j}] = {op.label_false!r}")
            self.emit(f"    nxt = {op.pc_false}")
            self.exit_expr = "nxt"
        else:  # pragma: no cover - lowering never fuses other kinds
            raise AssertionError(f"unfusable kind {kind} reached codegen")

        self.emit(f"done = {j + 1}")

    def emit_fn(self, op, j: int, operands) -> None:
        opc = op.opcode
        traced = self.traced

        if opc is Opcode.SELECT:
            a, b, c = operands
            name = self.bind_result(op, j, b[1] if b[1] == c[1] else "")
            self.emit(f"{name} = {b[0]} if {a[0]} else {c[0]}")
        elif opc is Opcode.ICMP:
            predicate = op.predicate_str
            lhs = self.as_int(operands[0])
            rhs = self.as_int(operands[1])
            if predicate in _ICMP_UNSIGNED:
                mask = (1 << op.op_types[0].bits) - 1
                lhs, rhs = f"({lhs} & {mask})", f"({rhs} & {mask})"
            name = self.bind_result(op, j, "i")
            self.emit(f"{name} = 1 if {lhs} {_ICMP_OPS[predicate]} {rhs} else 0")
        elif opc is Opcode.FCMP:
            predicate = op.predicate_str
            self.emit(f"x{j} = {self.as_float(operands[0])}")
            self.emit(f"y{j} = {self.as_float(operands[1])}")
            name = self.bind_result(op, j, "i")
            if predicate == "one":
                self.emit(
                    f"{name} = 1 if x{j} == x{j} and y{j} == y{j} "
                    f"and x{j} != y{j} else 0"
                )
            else:
                self.emit(
                    f"{name} = 1 if x{j} {_FCMP_OPS[predicate]} y{j} else 0"
                )
        elif opc is Opcode.FNEG:
            name = self.bind_result(op, j, "f")
            self.emit(f"{name} = -{self.as_float(operands[0])}")
        elif opc in _FLOAT_BIN:
            name = self.bind_result(op, j, "f")
            self.emit(
                f"{name} = {self.as_float(operands[0])} "
                f"{_FLOAT_BIN[opc]} {self.as_float(operands[1])}"
            )
        elif opc is Opcode.FDIV:
            name = self.bind_result(op, j, "f")
            self.emit(
                f"{name} = _fdiv({self.as_float(operands[0])}, "
                f"{self.as_float(operands[1])})"
            )
        elif opc is Opcode.FREM:
            name = self.bind_result(op, j, "f")
            self.emit(
                f"{name} = _frem({self.as_float(operands[0])}, "
                f"{self.as_float(operands[1])})"
            )
        elif opc in _INT_BIN:
            bits = op.result_type.bits
            lhs, rhs = self.as_int(operands[0]), self.as_int(operands[1])
            name = self.bind_result(op, j, "i")
            if bits == 1:
                self.emit(f"{name} = ({lhs} {_INT_BIN[opc]} {rhs}) & 1")
            else:
                mask, sign, full = (1 << bits) - 1, 1 << (bits - 1), 1 << bits
                self.emit(f"t{j} = ({lhs} {_INT_BIN[opc]} {rhs}) & {mask}")
                self.emit(f"{name} = t{j} - {full} if t{j} >= {sign} else t{j}")
        elif opc in _BITWISE:
            bits = op.result_type.bits
            lhs, rhs = self.as_int(operands[0]), self.as_int(operands[1])
            name = self.bind_result(op, j, "i")
            if bits == 1:
                self.emit(f"{name} = ({lhs} & 1) {_BITWISE[opc]} ({rhs} & 1)")
            else:
                mask, sign, full = (1 << bits) - 1, 1 << (bits - 1), 1 << bits
                self.emit(
                    f"t{j} = ({lhs} & {mask}) {_BITWISE[opc]} ({rhs} & {mask})"
                )
                self.emit(f"{name} = t{j} - {full} if t{j} >= {sign} else t{j}")
        elif opc is Opcode.TRUNC:
            bits = op.result_type.bits
            value = self.as_int(operands[0])
            name = self.bind_result(op, j, "i")
            if bits == 1:
                self.emit(f"{name} = {value} & 1")
            else:
                mask, sign, full = (1 << bits) - 1, 1 << (bits - 1), 1 << bits
                self.emit(f"t{j} = {value} & {mask}")
                self.emit(f"{name} = t{j} - {full} if t{j} >= {sign} else t{j}")
        elif opc is Opcode.ZEXT:
            mask = (1 << op.op_types[0].bits) - 1
            name = self.bind_result(op, j, "i")
            self.emit(f"{name} = {self.as_int(operands[0])} & {mask}")
        elif opc is Opcode.SEXT:
            name = self.bind_result(op, j, "i")
            self.emit(f"{name} = {self.as_int(operands[0])}")
        elif opc is Opcode.SITOFP:
            name = self.bind_result(op, j, "f")
            self.emit(f"{name} = float({self.as_int(operands[0])})")
        elif opc is Opcode.FPEXT:
            name = self.bind_result(op, j, "f")
            self.emit(f"{name} = {self.as_float(operands[0])}")
        else:
            # rare/irregular ops (sdiv/srem/udiv/urem, shifts, fptosi,
            # fptrunc, bitcast): call the decode-time bound evaluator.
            args = ", ".join(expr for expr, _ in operands)
            comma = "," if len(operands) == 1 else ""
            rkind = ""
            if op.has_result:
                rkind = "f" if op.result_type.is_float else "i"
            name = self.bind_result(op, j, rkind)
            self.emit(f"{name} = {self.p(op.fn)}(({args}{comma}))")

        if traced and op.dest >= 0:
            self.emit(f"res[{j}] = v{j}")

    # -------------------------------------------------------------- #
    # assembly
    # -------------------------------------------------------------- #
    def build(self) -> Tuple[str, Dict[str, object]]:
        seg = self.seg
        for j, pc in enumerate(seg.pcs):
            self.emit_op(j, pc)
        if self.exit_expr is None:
            self.exit_expr = repr(seg.pcs[-1] + 1)

        n = seg.n_ops
        traced = self.traced
        body: List[str] = ["done = 0"]
        if traced:
            body.append("flushed = False")
            body.append("vals = []")
            body.append("va = vals.append")
            body.append("prodl = []")
            body.append("pa = prodl.append")
            body.append(f"res = [None] * {n}")
            body.append(f"adr = [None] * {n}")
            body.append(f"onm = [None] * {n}")
            body.append(f"eli = [None] * {n}")
            body.append(f"wid = [-1] * {n}")
            body.append("tkn = TK[:]" if self.has_brcond else "tkn = TK")
            if self.has_loads:
                body.append("lw_get = last_writer.get")
        if self.uses_mem:
            body.append("bases = memory._bases")
            body.append("bybase = memory._by_base")
            body.append("resolve = memory.resolve")
        if self.uses_alloca:
            body.append("alloc = memory.allocate_stack")
            body.append("sapp = frame.stack_objects.append")
        body.extend(self.lines)

        # success epilogue: deferred register/producer writeback, then the
        # bulk sink append, then the next pc.
        for slot in sorted(self.def_offset):
            body.append(f"regs[{slot}] = {self.slot_name[slot]}")
        if traced:
            for slot in sorted(self.def_offset):
                body.append(f"prods[{slot}] = dynbase + {self.def_offset[slot]}")
        if self.last_branch_block is not None:
            body.append(f"frame.prev_block = {self.last_branch_block}")
        if traced:
            body.append("flushed = True")
            body.append(
                f"sink.append_block(ST, {n}, dynbase, vals, prodl, res, adr, "
                f"onm, eli, wid, tkn)"
            )
        body.append(f"return {self.exit_expr}")

        if traced:
            header = (
                "def _seg(frame, regs, prods, memory, sink, last_writer, "
                "dynbase, cell):"
            )
            handler = [
                "cell[0] = done",
                "if done and not flushed:",
                "    sink.append_block(ST, done, dynbase, vals, prodl, res, "
                "adr, onm, eli, wid, tkn)",
                "raise",
            ]
        else:
            header = "def _seg(frame, regs, memory, cell):"
            handler = ["cell[0] = done", "raise"]

        source_lines = [header, "    try:"]
        source_lines.extend("        " + line for line in body)
        source_lines.append("    except BaseException:")
        source_lines.extend("        " + line for line in handler)
        source = "\n".join(source_lines) + "\n"

        module_globals: Dict[str, object] = {
            "P": self.pool,
            "_UNDEF": _UNDEF,
            "VMError": VMError,
            "_SegF": SegmentationFault,
            "_br": bisect_right,
            "_chk": Memory._check_access_type,
            "_fdiv": float_divide,
            "_frem": float_remainder,
        }
        if traced:
            module_globals["ST"] = seg.block_static()
            module_globals["TK"] = _taken_template(self.df, seg)
        return source, module_globals


def _taken_template(df: DecodedFunction, seg) -> List[Optional[str]]:
    """Static taken-label column: unconditional branches are known a priori."""
    template: List[Optional[str]] = []
    for pc in seg.pcs:
        op = df.ops[pc]
        template.append(op.label_true if op.kind == K_BR else None)
    return template


def build_block_static(df: DecodedFunction, seg):
    """Static (per-program) trace columns for one segment."""
    from repro.tracing.columnar import BlockStatic

    opcodes, functions, blocks, static_uids, source_lines = [], [], [], [], []
    result_types, predicates, callees = [], [], []
    operand_types: List[object] = []
    operand_kinds: List[object] = []
    ends: List[int] = []
    for pc in seg.pcs:
        op = df.ops[pc]
        opcodes.append(op.opcode)
        functions.append(op.function)
        blocks.append(op.block_label)
        static_uids.append(op.static_uid)
        source_lines.append(op.source_line)
        result_types.append(op.result_type if op.has_result else None)
        predicates.append(op.predicate_str)
        callees.append(op.callee)
        operand_types.extend(op.op_types)
        operand_kinds.extend(op.op_kinds)
        ends.append(len(operand_types))
    return BlockStatic(
        n=seg.n_ops,
        opcodes=opcodes,
        functions=functions,
        blocks=blocks,
        static_uids=static_uids,
        source_lines=source_lines,
        operand_types=operand_types,
        operand_kinds=operand_kinds,
        ends=ends,
        result_types=result_types,
        predicates=predicates,
        callees=callees,
    )


def compile_segment(df: DecodedFunction, seg, traced: bool):
    """Compile one fused segment variant into its superinstruction callable."""
    emitter = _Emitter(df, seg, traced)
    source, module_globals = emitter.build()
    suffix = "+traced" if traced else ""
    code = compile(source, f"<mir:{df.name}#{seg.index}{suffix}>", "exec")
    exec(code, module_globals)
    return module_globals["_seg"]
