"""Block-structured MIR with a fused superinstruction backend.

Lowers a :class:`~repro.vm.engine.DecodedProgram` into extended basic
blocks (:mod:`repro.mir.lower`), compiles every loop-free straight-line
segment into an ``exec``-specialized superinstruction
(:mod:`repro.mir.fuse`), and caches the result per program digest
(:mod:`repro.mir.cache`).  The engine's ``backend="block"`` fast path
dispatches whole segments through these callables whenever no fault is
armed in-window, no pause boundary intersects the segment, and the sink
(if any) supports bulk appends — dropping to the per-op loop otherwise, so
the op loop remains the bit-identity oracle.
"""

from repro.mir.cache import clear_digest_cache, invalidate, mir_program_for
from repro.mir.lower import (
    FUSABLE_BODY,
    MirFunction,
    MirProgram,
    MirSegment,
    SEGMENT_BARRIERS,
    lower_function,
    lower_program,
)

__all__ = [
    "FUSABLE_BODY",
    "MirFunction",
    "MirProgram",
    "MirSegment",
    "SEGMENT_BARRIERS",
    "clear_digest_cache",
    "invalidate",
    "lower_function",
    "lower_program",
    "mir_program_for",
]
