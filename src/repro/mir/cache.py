"""Per-process compiled-MIR cache keyed by the program's print digest.

Campaign workers rebuild the same workload module over and over (fresh
instances, worker processes, protected variants); lowering and
superinstruction codegen are pure functions of the *printed IR*, so the
lowered program is cached twice over:

* on the module object itself (same fast-attribute idiom as
  ``DecodedProgram.of``), invalidated together with the decode cache;
* in a process-wide digest-keyed table, so structurally identical modules
  (same workload recompiled) share one compiled program.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.ir.printer import module_digest
from repro.mir.lower import MirFunction, MirProgram, MirSegment, lower_program
from repro.obs.metrics import registry as _metrics_registry
from repro.vm.engine import DecodedProgram

_CACHE_ATTR = "_mir_program_cache"

#: digest -> lowered program (process-wide).
_MIR_CACHE: Dict[bytes, MirProgram] = {}


def _clone_for(template: MirProgram, decoded: DecodedProgram) -> Optional[MirProgram]:
    """Rebind a digest-cached program to another (identical) module.

    The expensive parts — segmentation and the *plain* superinstruction
    callables — are pure functions of the printed IR and are shared
    verbatim.  The *traced* artifacts are not shared: trace events expose
    ``static_uid`` (a process-global value counter, different per module
    instance), so the per-segment ``BlockStatic`` and traced callables are
    left to lazy (re)compilation against the new module's decode, keeping
    traced runs bit-identical to the op loop on the same module.
    """
    if set(template.functions) != set(decoded.functions):
        return None  # digest collision or stale entry: lower from scratch
    functions = {}
    for name, df in decoded.functions.items():
        tf = template.functions[name]
        if tf.segments and tf.segments[-1].pcs[-1] >= len(df.ops):
            return None
        segments = []
        for tseg in tf.segments:
            seg = MirSegment(tseg.index, tseg.pcs, tseg.fused, df)
            seg.plain = tseg.plain
            segments.append(seg)
        functions[name] = MirFunction(df, segments)
    return MirProgram(functions)


def mir_program_for(decoded: DecodedProgram) -> MirProgram:
    """The lowered (and superinstruction-compiled) form of ``decoded``."""
    module = decoded.module
    cached = getattr(module, _CACHE_ATTR, None)
    if cached is not None:
        return cached
    digest = module_digest(module)
    template = _MIR_CACHE.get(digest)
    reg = _metrics_registry()
    if template is None:
        if reg.enabled:
            reg.inc("mir_cache.misses")
        program = lower_program(decoded)
        _MIR_CACHE[digest] = program
    else:
        program = _clone_for(template, decoded)
        if program is None:
            if reg.enabled:
                reg.inc("mir_cache.misses")
            program = lower_program(decoded)
            _MIR_CACHE[digest] = program
        elif reg.enabled:
            reg.inc("mir_cache.hits")
    setattr(module, _CACHE_ATTR, program)
    return program


def invalidate(module) -> None:
    """Drop the per-module cache (call after mutating the module's IR)."""
    if hasattr(module, _CACHE_ATTR):
        delattr(module, _CACHE_ATTR)


def clear_digest_cache() -> None:
    """Drop the process-wide digest table (test isolation hook)."""
    _MIR_CACHE.clear()
