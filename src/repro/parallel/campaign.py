"""Multiprocessing campaign runner for fault injections and aDVF analyses.

Each worker process rebuilds the workload from its registry name and
constructor arguments (workload objects themselves are not pickled — the
kernels hold compiled IR with unpicklable back-references), runs its share
of the work, and sends back plain result objects.  Work is split
deterministically so parallel results equal sequential ones.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.acceptance import OutcomeClass
from repro.core.advf import AnalysisConfig, ObjectReport
from repro.core.injector import DeterministicFaultInjector, FaultInjectionResult
from repro.parallel.partition import chunk_evenly
from repro.vm.faults import FaultSpec


def _default_workers() -> int:
    return max(1, min(8, (os.cpu_count() or 2) - 1))


# --------------------------------------------------------------------- #
# worker entry points (module-level so they are picklable)
# --------------------------------------------------------------------- #
def _inject_chunk(
    workload_name: str,
    workload_kwargs: Dict[str, object],
    specs: List[FaultSpec],
) -> List[Tuple[FaultSpec, str, str]]:
    from repro.workloads.registry import get_workload

    workload = get_workload(workload_name, **workload_kwargs)
    # One injector per worker chunk: the golden run and the checkpoint
    # schedule are computed once here and every spec in the chunk replays
    # against the shared snapshots.
    injector = DeterministicFaultInjector(workload)
    results = []
    for spec in specs:
        outcome = injector.inject(spec)
        results.append((spec, outcome.outcome.value, outcome.detail))
    return results


def _analyze_objects_chunk(
    workload_name: str,
    workload_kwargs: Dict[str, object],
    object_names: List[str],
    config: AnalysisConfig,
) -> List[Tuple[str, ObjectReport]]:
    from repro.core.advf import AdvfEngine
    from repro.workloads.registry import get_workload

    # One workload + one AdvfEngine per worker chunk: the compiled module,
    # the golden trace, the propagation indices and the injector's replay
    # context are built once and reused for every object in the chunk
    # (the seed rebuilt all of them per object).
    workload = get_workload(workload_name, **workload_kwargs)
    engine = AdvfEngine(workload, config)
    return [(name, engine.analyze_object(name)) for name in object_names]


# --------------------------------------------------------------------- #
# public API
# --------------------------------------------------------------------- #
@dataclass
class CampaignRunner:
    """Fan out fault injections / aDVF analyses over local processes.

    ``workload_name`` must be a key of :data:`repro.workloads.registry.WORKLOADS`
    so worker processes can rebuild the workload; ``workload_kwargs`` are the
    constructor overrides (sizes, seed, ABFT flag, …).
    """

    workload_name: str
    workload_kwargs: Dict[str, object] = field(default_factory=dict)
    workers: int = field(default_factory=_default_workers)

    def run_injections(self, specs: Sequence[FaultSpec]) -> List[FaultInjectionResult]:
        """Inject every spec, preserving input order in the result list."""
        specs = list(specs)
        if not specs:
            return []
        if self.workers <= 1 or len(specs) < 4:
            return _wrap(_inject_chunk(self.workload_name, self.workload_kwargs, specs))
        chunks = chunk_evenly(specs, self.workers)
        results: List[FaultInjectionResult] = []
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            futures = [
                pool.submit(_inject_chunk, self.workload_name, self.workload_kwargs, chunk)
                for chunk in chunks
                if chunk
            ]
            for future in futures:
                results.extend(_wrap(future.result()))
        return results

    def analyze_objects(
        self, object_names: Sequence[str], config: Optional[AnalysisConfig] = None
    ) -> Dict[str, ObjectReport]:
        """aDVF analyses fanned out as one object *chunk* per worker.

        Objects of the same workload share everything that is per-workload:
        each worker builds the workload, the golden trace and the injector's
        checkpoint schedule exactly once for its whole chunk instead of once
        per object.
        """
        config = config or AnalysisConfig()
        names = list(object_names)
        if not names:
            return {}
        if self.workers <= 1 or len(names) == 1:
            return dict(
                _analyze_objects_chunk(
                    self.workload_name, self.workload_kwargs, names, config
                )
            )
        out: Dict[str, ObjectReport] = {}
        chunks = chunk_evenly(names, min(self.workers, len(names)))
        with ProcessPoolExecutor(max_workers=min(self.workers, len(names))) as pool:
            futures = [
                pool.submit(
                    _analyze_objects_chunk,
                    self.workload_name,
                    self.workload_kwargs,
                    chunk,
                    config,
                )
                for chunk in chunks
                if chunk
            ]
            for future in futures:
                for name, report in future.result():
                    out[name] = report
        return out


def _wrap(raw: List[Tuple[FaultSpec, str, str]]) -> List[FaultInjectionResult]:
    return [
        FaultInjectionResult(spec=spec, outcome=OutcomeClass(outcome), detail=detail)
        for spec, outcome, detail in raw
    ]


def run_injections_parallel(
    workload_name: str,
    specs: Sequence[FaultSpec],
    workers: Optional[int] = None,
    **workload_kwargs,
) -> List[FaultInjectionResult]:
    """Convenience wrapper around :class:`CampaignRunner.run_injections`."""
    runner = CampaignRunner(
        workload_name, workload_kwargs, workers or _default_workers()
    )
    return runner.run_injections(specs)


def analyze_objects_parallel(
    workload_name: str,
    object_names: Sequence[str],
    config: Optional[AnalysisConfig] = None,
    workers: Optional[int] = None,
    **workload_kwargs,
) -> Dict[str, ObjectReport]:
    """Convenience wrapper around :class:`CampaignRunner.analyze_objects`."""
    runner = CampaignRunner(
        workload_name, workload_kwargs, workers or _default_workers()
    )
    return runner.analyze_objects(object_names, config)
