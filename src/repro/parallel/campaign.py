"""Multiprocessing campaign runner for fault injections and aDVF analyses.

Each worker process rebuilds the workload from its registry name and
constructor arguments (workload objects themselves are not pickled — the
kernels hold compiled IR with unpicklable back-references), runs its share
of the work, and sends back plain result objects.  Work is split
deterministically so parallel results equal sequential ones.

For aDVF analyses the golden trace is built (or fetched from the trace
cache) **once per campaign** and shipped to workers as a file-backed
columnar artifact: each worker process loads the ``.npz`` instead of
re-tracing the workload per chunk, and keeps it cached for later chunks of
the same campaign.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.acceptance import OutcomeClass
from repro.core.advf import AnalysisConfig, ObjectReport
from repro.core.injector import DeterministicFaultInjector, FaultInjectionResult
from repro.obs.metrics import metrics_enabled, registry as _metrics_registry
from repro.obs.spans import drain_span_records, enable_recording, span
from repro.parallel.partition import chunk_evenly
from repro.tracing.cache import TraceCache, trace_digest
from repro.tracing.columnar import ColumnarTrace, artifact_suffix
from repro.vm.faults import FaultSpec

#: Called after each worker chunk completes with ``(chunks_done, chunks_total)``.
ProgressCallback = Callable[[int, int], None]


def _default_workers() -> int:
    """Worker-count default: ``REPRO_WORKERS`` env var, else cores - 1.

    The environment variable wins wherever no explicit ``workers=`` override
    is passed, so batch jobs can size campaigns without touching call sites;
    without it the pool leaves one core free for the coordinating process
    (capped at 8 — injection chunks saturate memory bandwidth well before
    that on typical laptops).
    """
    env = os.environ.get("REPRO_WORKERS")
    if env is not None:
        try:
            workers = int(env)
        except ValueError:
            raise ValueError(
                f"REPRO_WORKERS must be an integer, got {env!r}"
            ) from None
        if workers < 1:
            raise ValueError(f"REPRO_WORKERS must be >= 1, got {workers}")
        return workers
    return max(1, min(8, (os.cpu_count() or 2) - 1))


class CampaignChunkError(RuntimeError):
    """A worker chunk failed, with enough context to reproduce it.

    Wraps the worker's original exception (available as ``__cause__``)
    instead of letting a bare ``future.result()`` traceback escape with no
    hint of which workload/chunk/specs were being processed.
    """

    def __init__(
        self,
        workload_name: str,
        chunk_index: int,
        items: Sequence[object],
        cause: BaseException,
    ) -> None:
        self.workload_name = workload_name
        self.chunk_index = chunk_index
        self.items = list(items)
        first = self.items[0] if self.items else None
        last = self.items[-1] if self.items else None
        super().__init__(
            f"campaign chunk {chunk_index} of workload {workload_name!r} failed "
            f"({len(self.items)} items, first={first!r}, last={last!r}): "
            f"{type(cause).__name__}: {cause}"
        )


# --------------------------------------------------------------------- #
# worker entry points (module-level so they are picklable)
# --------------------------------------------------------------------- #
#: Per-worker-process injector cache, keyed by (workload name, kwargs JSON).
#: A persistent pool (``keep_pool=True``) submits many chunks of the same
#: workload to the same processes; caching keeps the golden run and the
#: checkpoint schedule alive across chunks instead of rebuilding them per
#: submission.
_WORKER_INJECTORS: Dict[Tuple[str, str], DeterministicFaultInjector] = {}


def _worker_injector(
    workload_name: str, workload_kwargs: Dict[str, object]
) -> DeterministicFaultInjector:
    import json

    key = (workload_name, json.dumps(workload_kwargs, sort_keys=True, default=repr))
    injector = _WORKER_INJECTORS.get(key)
    if injector is None:
        from repro.workloads.registry import get_workload

        workload = get_workload(workload_name, **workload_kwargs)
        # the trace digest keys the persisted convergence-memo artifact, so
        # every worker of a campaign (and every resumed campaign) warm-starts
        # from the entries earlier replays already learned
        injector = DeterministicFaultInjector(
            workload, memo_key=trace_digest(workload_name, workload_kwargs)
        )
        _WORKER_INJECTORS[key] = injector
    return injector


#: True only in pool worker processes (set by the initializer).  The chunk
#: functions also run in-process for small jobs; there they must *not*
#: drain the span-record buffer — the parent owns it.
_IS_WORKER = False


def _worker_metrics_baseline() -> None:
    """Pool initializer: discard registry state inherited across ``fork``.

    On fork-start platforms a fresh worker process carries a copy of the
    parent's registry (golden-trace build, analysis passes, …).  Setting
    the chunk cursor here makes the first chunk's delta cover only work
    the worker itself performed, so the parent's pre-fork activity is
    never shipped back and double-counted.  Span recording follows the
    same pattern: enabled, then drained once to discard records inherited
    across fork (the parent persists its own).
    """
    global _IS_WORKER
    _IS_WORKER = True
    if metrics_enabled():
        _metrics_registry().snapshot_delta("worker-chunk")
    enable_recording()
    drain_span_records()


def _chunk_span_records() -> Optional[List[Dict[str, object]]]:
    """This worker's finished spans since the previous chunk (None when
    running in the parent process, whose buffer the orchestrator drains)."""
    if not _IS_WORKER:
        return None
    return drain_span_records()


def _chunk_metrics_delta() -> Optional[Dict[str, object]]:
    """This process's registry activity since the previous chunk.

    Worker processes ship the delta back with each chunk result; the
    parent folds the deltas with ``registry().merge`` — associative, so
    the fold is independent of chunk completion order.  (When the chunk
    runs in the parent process the caller discards the delta: the
    activity is already in the parent registry.)
    """
    if not metrics_enabled():
        return None
    return _metrics_registry().snapshot_delta("worker-chunk")


def _inject_chunk(
    workload_name: str,
    workload_kwargs: Dict[str, object],
    specs: List[FaultSpec],
) -> Tuple[
    List[Tuple[FaultSpec, str, str]],
    Dict[str, int],
    Optional[Dict[str, object]],
    Optional[Dict[str, object]],
    Optional[List[Dict[str, object]]],
]:
    # One injector per (worker process, workload): the golden run and the
    # checkpoint schedule are computed once, and the whole chunk is
    # submitted to the batched replay scheduler in one go (grouped by
    # snapshot interval, shared suffix walk, convergence memo).  The second
    # element is the scheduler's counter delta for this chunk, the third
    # the worker's metrics-registry delta, the fourth the delta of
    # convergence-memo entries this chunk learned (merged + persisted by
    # the parent so later workers and resumed campaigns warm-start), the
    # fifth the worker's finished-span records for the flight recorder.
    injector = _worker_injector(workload_name, workload_kwargs)
    with span("worker.inject", workload=workload_name, specs=len(specs)):
        results = [
            (result.spec, result.outcome.value, result.detail)
            for result in injector.inject_many(specs)
        ]
    return (
        results,
        injector.consume_batch_stats(),
        _chunk_metrics_delta(),
        injector.consume_memo_delta(),
        _chunk_span_records(),
    )


#: Per-worker-process columnar-trace cache, keyed by artifact path.  A
#: persistent pool analyses many chunks of the same campaign; the golden
#: trace is deserialised once per process, not once per chunk.
_WORKER_TRACES: Dict[str, ColumnarTrace] = {}


def _worker_trace(trace_path: str) -> ColumnarTrace:
    trace = _WORKER_TRACES.get(trace_path)
    if trace is None:
        trace = _WORKER_TRACES[trace_path] = ColumnarTrace.load(trace_path)
    return trace


def _analyze_objects_chunk(
    workload_name: str,
    workload_kwargs: Dict[str, object],
    object_names: List[str],
    config: AnalysisConfig,
    trace_path: Optional[str] = None,
) -> Tuple[
    List[Tuple[str, ObjectReport]],
    Optional[Dict[str, object]],
    Optional[List[Dict[str, object]]],
]:
    from repro.core.advf import AdvfEngine
    from repro.workloads.registry import get_workload

    # One workload + one AdvfEngine per worker chunk: the compiled module,
    # the golden trace, the propagation indices and the injector's replay
    # context are built once and reused for every object in the chunk
    # (the seed rebuilt all of them per object).  When the parent shipped a
    # file-backed golden trace, the worker loads that artifact instead of
    # re-tracing the workload.
    workload = get_workload(workload_name, **workload_kwargs)
    trace = _worker_trace(trace_path) if trace_path is not None else None
    engine = AdvfEngine(workload, config, trace=trace)
    with span("worker.analyze", workload=workload_name,
              objects=len(object_names)):
        pairs = [(name, engine.analyze_object(name)) for name in object_names]
    return pairs, _chunk_metrics_delta(), _chunk_span_records()


# --------------------------------------------------------------------- #
# public API
# --------------------------------------------------------------------- #
@dataclass
class CampaignRunner:
    """Fan out fault injections / aDVF analyses over local processes.

    ``workload_name`` must be a key of :data:`repro.workloads.registry.WORKLOADS`
    so worker processes can rebuild the workload; ``workload_kwargs`` are the
    constructor overrides (sizes, seed, ABFT flag, …).
    """

    workload_name: str
    workload_kwargs: Dict[str, object] = field(default_factory=dict)
    workers: int = field(default_factory=_default_workers)
    #: Keep one ProcessPoolExecutor alive across calls (close() releases it).
    #: Long campaigns — e.g. orchestrated shards — reuse worker processes
    #: and their cached injectors instead of respawning a pool per call.
    keep_pool: bool = False
    _pool: Optional[ProcessPoolExecutor] = field(
        default=None, init=False, repr=False, compare=False
    )
    _trace_path: Optional[str] = field(
        default=None, init=False, repr=False, compare=False
    )
    _trace_tmpdir: Optional[str] = field(
        default=None, init=False, repr=False, compare=False
    )
    #: Batch-scheduler counters aggregated over the chunks of the most
    #: recent :meth:`run_injections` call (batches, memo hits/misses, …).
    last_batch_stats: Dict[str, int] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )
    #: Convergence-memo entries the most recent :meth:`run_injections`
    #: call learned (worker chunk deltas merged; ``None`` when nothing
    #: new).  Callers persist it via
    #: :meth:`repro.tracing.cache.MemoCache.merge_store`.
    last_memo_delta: Optional[Dict[str, object]] = field(
        default=None, init=False, repr=False, compare=False
    )
    #: Finished-span records shipped back by worker processes during the
    #: most recent :meth:`run_injections` / :meth:`analyze_objects` call
    #: (flight recorder; empty when chunks ran in this process — those
    #: spans sit in this process's own buffer).
    last_span_records: List[Dict[str, object]] = field(
        default_factory=list, init=False, repr=False, compare=False
    )

    # ------------------------------------------------------------------ #
    # golden-trace artifact
    # ------------------------------------------------------------------ #
    def trace_artifact(self) -> str:
        """Path of the campaign's file-backed columnar golden trace.

        Built (or fetched from the :class:`~repro.tracing.cache.TraceCache`)
        once per runner; all analysis chunks — in-process or in worker
        processes — load this artifact instead of re-tracing the workload.
        With the cache disabled (``REPRO_TRACE_CACHE=off``) the artifact
        lives in a temporary directory released by :meth:`close`.
        """
        if self._trace_path is not None:
            return self._trace_path
        digest = trace_digest(self.workload_name, self.workload_kwargs)
        cache = TraceCache.from_env()
        if cache is not None:
            cache.get_or_build(digest, self._build_golden_trace)
            self._trace_path = str(cache.find(digest))
        else:
            self._trace_tmpdir = tempfile.mkdtemp(prefix="repro-trace-")
            path = Path(self._trace_tmpdir) / f"{digest}{artifact_suffix()}"
            self._build_golden_trace().save(path)
            self._trace_path = str(path)
        return self._trace_path

    def _build_golden_trace(self) -> ColumnarTrace:
        from repro.workloads.registry import get_workload

        workload = get_workload(self.workload_name, **self.workload_kwargs)
        return workload.traced_run(columnar=True).trace

    def run_injections(
        self,
        specs: Sequence[FaultSpec],
        on_progress: Optional[ProgressCallback] = None,
    ) -> List[FaultInjectionResult]:
        """Inject every spec, preserving input order in the result list.

        ``on_progress`` (if given) is called with ``(chunks_done,
        chunks_total)`` as worker chunks complete, so long campaigns —
        e.g. orchestrated shards — can surface progress.  Worker failures
        raise :class:`CampaignChunkError` naming the failing chunk and its
        spec range, with the original exception chained as ``__cause__``.
        """
        specs = list(specs)
        self.last_batch_stats = {}
        self.last_memo_delta = None
        self.last_span_records = []
        if not specs:
            return []
        if self.workers <= 1 or len(specs) < 4:
            try:
                # in-process: the metrics delta is already in this
                # process's registry (discarded, not merged), and the span
                # records sit in this process's own buffer
                raw, stats, _, memo_delta, _ = _inject_chunk(
                    self.workload_name, self.workload_kwargs, specs
                )
            except Exception as exc:
                raise CampaignChunkError(self.workload_name, 0, specs, exc) from exc
            if on_progress is not None:
                on_progress(1, 1)
            self._merge_stats(stats)
            self._merge_memo(memo_delta)
            return _wrap(raw)
        chunks = [c for c in chunk_evenly(specs, self.workers) if c]
        per_chunk = self._collect(
            _inject_chunk,
            [(self.workload_name, self.workload_kwargs, chunk) for chunk in chunks],
            chunks,
            on_progress,
        )
        results: List[FaultInjectionResult] = []
        for raw, stats, delta, memo_delta, span_records in per_chunk:
            results.extend(_wrap(raw))
            self._merge_stats(stats)
            self._fold_metrics(delta)
            self._merge_memo(memo_delta)
            if span_records:
                self.last_span_records.extend(span_records)
        return results

    def _merge_stats(self, stats: Dict[str, int]) -> None:
        for key, value in stats.items():
            self.last_batch_stats[key] = self.last_batch_stats.get(key, 0) + value

    def _merge_memo(self, delta: Optional[Dict[str, object]]) -> None:
        from repro.core.replay import ReplayMemo

        if delta:
            self.last_memo_delta = ReplayMemo.merge_payloads(
                self.last_memo_delta, delta
            )

    @staticmethod
    def _fold_metrics(delta: Optional[Dict[str, object]]) -> None:
        """Fold one worker chunk's registry delta into this process."""
        if delta:
            _metrics_registry().merge(delta)

    def _collect(
        self,
        fn: Callable,
        argument_tuples: Sequence[Tuple],
        chunk_items: Sequence[Sequence[object]],
        on_progress: Optional[ProgressCallback],
    ) -> List[object]:
        """Fan ``fn(*args)`` out over the pool; return results in chunk order.

        Completion is observed as it happens (for progress callbacks) while
        results are reassembled by chunk index so parallel output stays
        deterministic.
        """
        total = len(argument_tuples)
        slots: List[object] = [None] * total
        pool = self._acquire_pool()
        try:
            future_index = {
                pool.submit(fn, *args): index
                for index, args in enumerate(argument_tuples)
            }
            done = 0
            pending = set(future_index)
            while pending:
                finished, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in finished:
                    index = future_index[future]
                    try:
                        slots[index] = future.result()
                    except Exception as exc:
                        raise CampaignChunkError(
                            self.workload_name, index, chunk_items[index], exc
                        ) from exc
                    done += 1
                    if on_progress is not None:
                        on_progress(done, total)
        finally:
            if not self.keep_pool:
                pool.shutdown()
        return slots

    def _acquire_pool(self) -> ProcessPoolExecutor:
        if not self.keep_pool:
            return ProcessPoolExecutor(
                max_workers=self.workers, initializer=_worker_metrics_baseline
            )
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers, initializer=_worker_metrics_baseline
            )
        return self._pool

    def close(self) -> None:
        """Release the persistent pool and any temporary trace artifact."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
        if self._trace_tmpdir is not None:
            shutil.rmtree(self._trace_tmpdir, ignore_errors=True)
            self._trace_tmpdir = None
            self._trace_path = None

    def __enter__(self) -> "CampaignRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def analyze_objects(
        self,
        object_names: Sequence[str],
        config: Optional[AnalysisConfig] = None,
        on_progress: Optional[ProgressCallback] = None,
    ) -> Dict[str, ObjectReport]:
        """aDVF analyses fanned out as one object *chunk* per worker.

        Objects of the same workload share everything that is per-workload:
        the golden trace is built once in the parent (or served by the
        trace cache) and shipped as a columnar artifact that each worker
        process loads once; workers build the workload and the injector's
        checkpoint schedule once per chunk instead of once per object.
        """
        config = config or AnalysisConfig()
        names = list(object_names)
        self.last_span_records = []
        if not names:
            return {}
        try:
            trace_path = self.trace_artifact()
        except Exception as exc:
            raise CampaignChunkError(self.workload_name, 0, names, exc) from exc
        if self.workers <= 1 or len(names) == 1:
            try:
                # in-process: the metrics delta is already in this
                # process's registry (discarded, not merged), and the span
                # records sit in this process's own buffer
                pairs, _, _ = _analyze_objects_chunk(
                    self.workload_name, self.workload_kwargs, names, config,
                    trace_path,
                )
            except Exception as exc:
                raise CampaignChunkError(self.workload_name, 0, names, exc) from exc
            if on_progress is not None:
                on_progress(1, 1)
            return dict(pairs)
        chunks = [
            c for c in chunk_evenly(names, min(self.workers, len(names))) if c
        ]
        per_chunk = self._collect(
            _analyze_objects_chunk,
            [
                (self.workload_name, self.workload_kwargs, chunk, config, trace_path)
                for chunk in chunks
            ],
            chunks,
            on_progress,
        )
        out: Dict[str, ObjectReport] = {}
        for pairs, delta, span_records in per_chunk:
            self._fold_metrics(delta)
            if span_records:
                self.last_span_records.extend(span_records)
            for name, report in pairs:
                out[name] = report
        return out


def _wrap(raw: List[Tuple[FaultSpec, str, str]]) -> List[FaultInjectionResult]:
    return [
        FaultInjectionResult(spec=spec, outcome=OutcomeClass(outcome), detail=detail)
        for spec, outcome, detail in raw
    ]


def run_injections_parallel(
    workload_name: str,
    specs: Sequence[FaultSpec],
    workers: Optional[int] = None,
    **workload_kwargs,
) -> List[FaultInjectionResult]:
    """Convenience wrapper around :class:`CampaignRunner.run_injections`."""
    runner = CampaignRunner(
        workload_name, workload_kwargs, workers or _default_workers()
    )
    return runner.run_injections(specs)


def analyze_objects_parallel(
    workload_name: str,
    object_names: Sequence[str],
    config: Optional[AnalysisConfig] = None,
    workers: Optional[int] = None,
    **workload_kwargs,
) -> Dict[str, ObjectReport]:
    """Convenience wrapper around :class:`CampaignRunner.analyze_objects`."""
    runner = CampaignRunner(
        workload_name, workload_kwargs, workers or _default_workers()
    )
    return runner.analyze_objects(object_names, config)
