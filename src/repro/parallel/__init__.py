"""Parallel campaign execution.

The paper runs its aDVF calculations and fault-injection campaigns on a
256-core cluster; this package provides the laptop-scale equivalent: a
multiprocessing pool that fans out independent fault injections (or whole
per-object aDVF analyses) across local cores with deterministic work
splitting, so results are identical to the sequential path.

Public API
----------
:class:`~repro.parallel.campaign.CampaignRunner`,
:func:`~repro.parallel.campaign.run_injections_parallel`,
:func:`~repro.parallel.campaign.analyze_objects_parallel`,
:func:`~repro.parallel.partition.chunk_evenly`,
:func:`~repro.parallel.partition.interleave`.
"""

from repro.parallel.campaign import (
    CampaignChunkError,
    CampaignRunner,
    analyze_objects_parallel,
    run_injections_parallel,
)
from repro.parallel.partition import chunk_evenly, interleave

__all__ = [
    "CampaignChunkError",
    "CampaignRunner",
    "analyze_objects_parallel",
    "run_injections_parallel",
    "chunk_evenly",
    "interleave",
]
