"""Deterministic work partitioning helpers for parallel campaigns."""

from __future__ import annotations

from typing import List, Sequence, TypeVar

T = TypeVar("T")


def chunk_evenly(items: Sequence[T], chunks: int) -> List[List[T]]:
    """Split ``items`` into ``chunks`` contiguous pieces of near-equal size.

    The first ``len(items) % chunks`` pieces get one extra element, matching
    the usual block distribution of an MPI scatter.  Empty chunks are
    returned when there are more chunks than items so callers can map the
    result one-to-one onto workers.
    """
    if chunks <= 0:
        raise ValueError("chunks must be positive")
    n = len(items)
    base, extra = divmod(n, chunks)
    out: List[List[T]] = []
    start = 0
    for worker in range(chunks):
        size = base + (1 if worker < extra else 0)
        out.append(list(items[start : start + size]))
        start += size
    return out


def interleave(items: Sequence[T], chunks: int) -> List[List[T]]:
    """Round-robin (cyclic) distribution of ``items`` into ``chunks`` pieces.

    Useful when the cost of consecutive items is correlated (e.g. injections
    at neighbouring dynamic instructions) and a block distribution would load
    the workers unevenly.
    """
    if chunks <= 0:
        raise ValueError("chunks must be positive")
    out: List[List[T]] = [[] for _ in range(chunks)]
    for index, item in enumerate(items):
        out[index % chunks].append(item)
    return out
