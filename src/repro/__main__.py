"""Entry point for ``python -m repro`` (the campaign CLI)."""

import sys

from repro.campaigns.cli import main

if __name__ == "__main__":
    sys.exit(main())
