"""Algorithm-based fault tolerance helpers (§VI case study).

The ABFT-protected kernels themselves live with their workloads
(:mod:`repro.workloads.matmul`, :mod:`repro.workloads.particle_filter`);
this package provides the NumPy-level checksum encoder/decoder used by the
tests and examples to reason about ABFT independently of the IR pipeline.

Public API
----------
:func:`~repro.abft.checksums.encode_row_checksums`,
:func:`~repro.abft.checksums.encode_column_checksums`,
:func:`~repro.abft.checksums.locate_single_error`,
:func:`~repro.abft.checksums.correct_single_error`.
"""

from repro.abft.checksums import (
    correct_single_error,
    encode_column_checksums,
    encode_row_checksums,
    locate_single_error,
    verify_product,
)

__all__ = [
    "correct_single_error",
    "encode_column_checksums",
    "encode_row_checksums",
    "locate_single_error",
    "verify_product",
]
