"""Huang–Abraham checksum arithmetic for ABFT matrix multiplication.

``C = A × B`` satisfies, in exact arithmetic,

* row sums:    ``C · 1  = A · (B · 1)``
* column sums: ``1ᵀ · C = (1ᵀ · A) · B``

A single corrupted element ``C[i, j]`` violates exactly one row checksum and
one column checksum, which both locates it and gives the correction value.
These helpers implement the encode / verify / locate / correct steps on
NumPy arrays; the in-IR version lives in
:func:`repro.workloads.matmul.matmul_abft`.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


def encode_row_checksums(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Expected row sums of ``A @ B`` computed from the inputs."""
    return a @ b.sum(axis=1)


def encode_column_checksums(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Expected column sums of ``A @ B`` computed from the inputs."""
    return a.sum(axis=0) @ b


def verify_product(
    c: np.ndarray, row_checksums: np.ndarray, col_checksums: np.ndarray, tol: float = 1e-6
) -> bool:
    """Whether every row and column checksum of ``c`` matches within ``tol``."""
    row_ok = np.allclose(c.sum(axis=1), row_checksums, atol=tol, rtol=0.0)
    col_ok = np.allclose(c.sum(axis=0), col_checksums, atol=tol, rtol=0.0)
    return bool(row_ok and col_ok)


def locate_single_error(
    c: np.ndarray, row_checksums: np.ndarray, col_checksums: np.ndarray, tol: float = 1e-6
) -> Optional[Tuple[int, int, float]]:
    """Locate a single corrupted element of ``c``.

    Returns ``(row, col, delta)`` where ``delta`` is the amount by which the
    element exceeds its correct value, or ``None`` when no checksum (or more
    than one row/column) disagrees.
    """
    row_residual = c.sum(axis=1) - row_checksums
    col_residual = c.sum(axis=0) - col_checksums
    bad_rows = np.nonzero(np.abs(row_residual) > tol)[0]
    bad_cols = np.nonzero(np.abs(col_residual) > tol)[0]
    if len(bad_rows) != 1 or len(bad_cols) != 1:
        return None
    row, col = int(bad_rows[0]), int(bad_cols[0])
    return row, col, float(row_residual[row])


def correct_single_error(
    c: np.ndarray, row_checksums: np.ndarray, col_checksums: np.ndarray, tol: float = 1e-6
) -> Tuple[np.ndarray, bool]:
    """Correct a single corrupted element of ``c`` (copy-on-write).

    Returns ``(corrected matrix, whether a correction was applied)``.
    """
    location = locate_single_error(c, row_checksums, col_checksums, tol)
    if location is None:
        return c, False
    row, col, delta = location
    corrected = c.copy()
    corrected[row, col] -= delta
    return corrected, True
